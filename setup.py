"""Legacy setup shim.

Kept so ``pip install -e . --no-build-isolation`` works on machines without
the ``wheel`` package (PEP 660 editable installs require it); all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
