"""Discrete-event scenarios: BASE / SU / SU+O / SU+O+C iterations.

Each scenario simulates one steady-state training iteration on a
:class:`Fabric` and reports the paper's three-phase breakdown:

* **FW** — forward compute (plus parameter streaming in the congested
  multi-GPU topology);
* **BW + Grad Offload** — backward compute overlapped with gradient
  offloading to storage (dense, or Top-K-compressed for SmartComp);
* **Update + Opt upload/offload** — the storage-bound update phase, which
  dominates the baseline (Fig. 3a) and is what SmartUpdate moves onto the
  CSDs' internal bandwidth.

Modelling choices that map to the paper:

* The baseline's update is a depth-2 pipelined loop of
  RAID-read -> CPU AVX update -> RAID-write over model blocks (DeepSpeed's
  overlapped offload engine).
* Plain SU runs per-subgroup read -> FPGA update -> write with DMA-level
  double buffering but pays a per-tasklet buffer-allocation overhead
  (Fig. 5a); SU+O removes that overhead, writes parameters urgently,
  defers state write-backs, and overlaps the upstream master transfer
  (Fig. 5b).
* SU+O+C additionally shrinks the backward gradient offload to c% x 2M and
  inserts the FPGA decompressor into the per-subgroup pipeline (Fig. 6).
* The update phase cannot start before the *whole* gradient offload
  completes (loss-scale NaN/Inf scan + global-norm clipping, §IV-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import HardwareConfigError
from ..hw.topology import SystemSpec
from ..sim.core import Simulator
from ..sim.resources import PhaseClock, Semaphore
from .fabric import (CSD_BASE_OVERHEAD, Fabric, HANDLER_SUBGROUP_OVERHEAD,
                     NAIVE_SUBGROUP_OVERHEAD)
from .workload import Workload

METHODS = ("baseline", "su", "su_o", "su_o_c")

#: Execution schedules.  ``phased`` is the paper's strict
#: forward -> backward+offload -> update sequence; ``interleaved``
#: (Deep Optimizer States, PAPERS.md) starts each device's update
#: pipeline as soon as the gradient blocks it needs have landed, hiding
#: most of the update phase inside backward.
SCHEDULES = ("phased", "interleaved")

#: Extension methods beyond the paper's evaluation: "su_o_c_q" adds the
#: §VIII-B CSD-side int8 quantization of the upstream parameters on top
#: of SU+O+C, cutting the remaining upstream transfer ~4x.
EXTENSION_METHODS = ("su_o_c_q",)

#: Safety margin: fraction of FPGA DRAM usable for subgroup buffers.
DRAM_UTILIZATION = 0.9

#: Blocks per forward/backward pass (layer granularity of Fig. 1).
DEFAULT_NUM_BLOCKS = 16

#: Minimum subgroups per CSD shard: the handler double-buffers, so each
#: subgroup may use at most half the accelerator DRAM, and very small
#: shards are still split so the load/update/write-back pipeline has
#: stages to overlap.
MIN_SUBGROUPS_PER_DEVICE = 6


@dataclass(frozen=True)
class PhaseBreakdown:
    """Per-phase times of one simulated iteration (seconds)."""

    forward: float
    backward_grad: float
    update: float

    @property
    def total(self) -> float:
        return self.forward + self.backward_grad + self.update

    def speedup_over(self, other: "PhaseBreakdown") -> float:
        return other.total / self.total

    def fractions(self) -> Dict[str, float]:
        total = self.total
        return {
            "forward": self.forward / total,
            "backward_grad": self.backward_grad / total,
            "update": self.update / total,
        }


def subgroup_count(workload: Workload, system: SystemSpec) -> int:
    """Subgroups per CSD shard.

    D (elements per subgroup) is set by the FPGA DRAM capacity, halved for
    the handler's double buffering; small shards are still split into at
    least :data:`MIN_SUBGROUPS_PER_DEVICE` pieces so per-subgroup pipeline
    stages exist to overlap.
    """
    fpga = system.csds[0].fpga
    bytes_per_param = 2 * 4 * (2 + workload.states_per_param)
    d_elements = int(fpga.dram_bytes * DRAM_UTILIZATION / bytes_per_param)
    shard_elements = math.ceil(workload.num_params / system.num_csds)
    by_dram = math.ceil(shard_elements / d_elements)
    return max(MIN_SUBGROUPS_PER_DEVICE, by_dram)


@dataclass(frozen=True)
class ScenarioTrace:
    """Everything one simulated iteration leaves behind for export.

    ``fabric`` retains every channel's :class:`TransferRecord` list and
    ``phase_windows`` the closed (phase, start, end) intervals — together
    the full sim-time timeline the Chrome-trace exporter renders.
    """

    breakdown: PhaseBreakdown
    fabric: Fabric
    phase_windows: List[Tuple[str, float, float]]


def trace_scenario(system: SystemSpec, workload: Workload, method: str,
                   compression_ratio: float = 0.02,
                   num_blocks: int = DEFAULT_NUM_BLOCKS,
                   channel_scales: Optional[Mapping[str, float]] = None,
                   schedule: str = "phased",
                   ) -> ScenarioTrace:
    """Simulate one iteration and keep its full sim-time timeline.

    ``channel_scales`` multiplies named channels' bandwidths — the
    counterfactual hook the critical-path what-if validation uses to
    re-run an iteration with an intervention genuinely applied.
    ``schedule="interleaved"`` gates per-device update work on the
    gradient blocks it needs instead of the whole offload barrier; the
    ``update`` phase window then covers only the residual tail past the
    last gradient.
    """
    if method not in METHODS + EXTENSION_METHODS:
        raise HardwareConfigError(
            f"unknown method {method!r}; choose from "
            f"{METHODS + EXTENSION_METHODS}")
    if schedule not in SCHEDULES:
        raise HardwareConfigError(
            f"unknown schedule {schedule!r}; choose from {SCHEDULES}")
    sim = Simulator()
    fabric = Fabric(sim, system, channel_scales=channel_scales)
    clock = PhaseClock(sim)
    scenario = _Scenario(sim, fabric, clock, system, workload, method,
                         compression_ratio, num_blocks, schedule)
    sim.process(scenario.iteration(), name=f"iteration-{method}")
    sim.run()
    breakdown = PhaseBreakdown(
        forward=clock.totals.get("forward", 0.0),
        backward_grad=clock.totals.get("backward_grad", 0.0),
        update=clock.totals.get("update", 0.0),
    )
    return ScenarioTrace(breakdown=breakdown, fabric=fabric,
                         phase_windows=list(clock.windows))


def run_scenario(system: SystemSpec, workload: Workload, method: str,
                 compression_ratio: float = 0.02,
                 num_blocks: int = DEFAULT_NUM_BLOCKS,
                 schedule: str = "phased",
                 ):
    """Simulate one iteration; returns ``(breakdown, fabric)``.

    The fabric's channels retain their transfer records, so callers can
    run bottleneck/timeline analysis (`repro.perf.analysis`) on top.
    """
    trace = trace_scenario(system, workload, method,
                           compression_ratio=compression_ratio,
                           num_blocks=num_blocks, schedule=schedule)
    return trace.breakdown, trace.fabric


def simulate_iteration(system: SystemSpec, workload: Workload, method: str,
                       compression_ratio: float = 0.02,
                       num_blocks: int = DEFAULT_NUM_BLOCKS,
                       schedule: str = "phased",
                       ) -> PhaseBreakdown:
    """Simulate one iteration and return its phase breakdown."""
    breakdown, _fabric = run_scenario(
        system, workload, method, compression_ratio=compression_ratio,
        num_blocks=num_blocks, schedule=schedule)
    return breakdown


class _Scenario:
    """Process definitions for one simulated iteration."""

    def __init__(self, sim: Simulator, fabric: Fabric, clock: PhaseClock,
                 system: SystemSpec, workload: Workload, method: str,
                 compression_ratio: float, num_blocks: int,
                 schedule: str = "phased") -> None:
        self.sim = sim
        self.fabric = fabric
        self.clock = clock
        self.system = system
        self.workload = workload
        self.method = method
        self.compression_ratio = compression_ratio
        self.num_blocks = num_blocks
        self.schedule = schedule
        self.num_gpus = len(system.gpus)
        self.gpu = system.gpus[0]

    # ------------------------------------------------------------------
    # compute helpers
    # ------------------------------------------------------------------
    def _gpu_time(self, flops: float) -> float:
        """Per-GPU compute time (tensor parallelism divides the FLOPs)."""
        return self.gpu.compute_time(flops / self.num_gpus)

    def _congested_block_traffic(self, param_bytes: float,
                                 act_bytes: float):
        """Extra shared-link traffic per block in the congested topology:
        FP16 parameter streaming to the expansion-resident GPUs plus
        tensor-parallel activation exchange (§VIII-A)."""
        events = [self.fabric.link_down.transfer(param_bytes, tag="gpu-par")]
        if self.num_gpus > 1:
            tp_bytes = act_bytes * 2 * (self.num_gpus - 1) / self.num_gpus
            events.append(self.fabric.link_down.transfer(tp_bytes / 2,
                                                         tag="tp"))
            events.append(self.fabric.link_up.transfer(tp_bytes / 2,
                                                       tag="tp"))
        return self.sim.all_of(events)

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def iteration(self):
        yield from self.forward_phase()
        if self.schedule == "interleaved":
            yield from self.interleaved_phase()
        else:
            yield from self.backward_phase()
            yield from self.update_phase()

    def interleaved_phase(self):
        """Backward with the update pipeline gated per gradient block.

        Each block's offload fires a gate event; the update processes run
        concurrently with backward, each subgroup waiting only for the
        cumulative gradient fraction it covers.  The ``backward_grad``
        window ends when every gradient has landed (as in the phased
        schedule), so the ``update`` window is only the residual tail the
        overlap could not hide — phase windows stay disjoint and the
        attribution conservation invariant holds.
        """
        gates = [self.sim.event(f"block{index}-grads")
                 for index in range(self.num_blocks)]
        update = self.sim.process(self._gated_update(gates),
                                  name="interleaved-update")
        yield from self.backward_phase(gates=gates)
        self.clock.begin("update")
        yield update
        self.clock.end("update")

    def _gated_update(self, gates):
        if self.method == "baseline":
            yield from self._baseline_update(gates=gates)
        else:
            yield from self._smart_update(gates=gates)

    def forward_phase(self):
        self.clock.begin("forward")
        per_block = self._gpu_time(self.workload.forward_flops
                                   ) / self.num_blocks
        param_block = self.workload.fp16_param_bytes / self.num_blocks
        act_block = self.workload.activation_bytes / self.num_blocks
        for _block in range(self.num_blocks):
            if self.system.gpus_on_expansion:
                yield self._congested_block_traffic(param_block, act_block)
            yield self.sim.timeout(per_block)
        self.clock.end("forward")

    def backward_phase(self, gates=None):
        """Backward compute with eager gradient offload per block."""
        self.clock.begin("backward_grad")
        per_block = self._gpu_time(self.workload.backward_flops
                                   ) / self.num_blocks
        param_block = self.workload.fp16_param_bytes / self.num_blocks
        act_block = self.workload.activation_bytes / self.num_blocks
        if self.method in ("su_o_c", "su_o_c_q"):
            grad_bytes = self.workload.compressed_gradient_bytes(
                self.compression_ratio)
        else:
            grad_bytes = self.workload.gradient_bytes
        grad_block = grad_bytes / self.num_blocks

        offloads = []
        for block in range(self.num_blocks):
            if self.system.gpus_on_expansion:
                yield self._congested_block_traffic(param_block, act_block)
            yield self.sim.timeout(per_block)
            # The GPU -> pinned-buffer bounce copy serializes with the
            # stream; the storage write itself drains asynchronously.
            yield self.fabric.bounce.transfer(grad_block, tag="bounce")
            gate = gates[block] if gates is not None else None
            offloads.append(self.sim.process(
                self._offload_block(grad_block, gate=gate),
                name="grad-offload"))
        # In the phased schedule the update cannot start until every
        # gradient has landed (the loss-scale scan and global-norm
        # clipping need them all); the interleaved schedule resolves the
        # verdict up front, so the gates release per-block work early,
        # but the phase boundary still sits at the last landing.
        yield self.sim.all_of(offloads)
        self.clock.end("backward_grad")

    def _offload_transfer(self, nbytes: float):
        if self.method == "baseline":
            return self.fabric.raid_write(nbytes, tag="grad-offload")
        # Each CSD owns an equal slice of the flattened parameters.
        per_device = nbytes / self.fabric.num_devices
        return self.sim.all_of([
            self.fabric.host_to_device(index, per_device,
                                       tag="grad-offload")
            for index in range(self.fabric.num_devices)
        ])

    def _offload_block(self, nbytes: float, gate=None):
        yield self._offload_transfer(nbytes)
        if gate is not None:
            gate.succeed()

    def update_phase(self):
        self.clock.begin("update")
        if self.method == "baseline":
            yield from self._baseline_update()
        else:
            yield from self._smart_update()
        self.clock.end("update")

    # ------------------------------------------------------------------
    # baseline update: RAID read -> CPU AVX -> RAID write, depth-2 pipeline
    # ------------------------------------------------------------------
    def _baseline_update(self, gates=None):
        read_block = self.workload.update_read_bytes / self.num_blocks
        write_block = self.workload.update_write_bytes / self.num_blocks
        touched_block = self.workload.update_touched_bytes / self.num_blocks
        slots = Semaphore(self.sim, "update-buffers", capacity=2)

        def block_update():
            yield self.fabric.raid_read(read_block, tag="opt-upload")
            yield self.fabric.cpu.transfer(touched_block, tag="cpu-update")
            yield self.fabric.raid_write(write_block, tag="opt-offload")
            slots.release()

        blocks = []
        for block in range(self.num_blocks):
            if gates is not None:
                yield gates[block]
            yield slots.acquire()
            blocks.append(self.sim.process(block_update(),
                                           name="baseline-block"))
        yield self.sim.all_of(blocks)

    # ------------------------------------------------------------------
    # SmartUpdate family: per-CSD near-storage update
    # ------------------------------------------------------------------
    def _smart_update(self, gates=None):
        if gates is not None:
            # Interleaved: the fleet spins up once the first gradient
            # block has landed, not at the offload barrier.
            yield gates[0]
        # Host-side OpenCL/driver overhead for driving the CSD fleet.
        yield self.sim.timeout(CSD_BASE_OVERHEAD)
        devices = [
            self.sim.process(self._device_update(index, gates=gates),
                             name=f"csd{index}-update")
            for index in range(self.fabric.num_devices)
        ]
        yield self.sim.all_of(devices)

    def _gate_for_subgroup(self, sub: int, nsub: int) -> int:
        """Last gradient block subgroup ``sub`` of ``nsub`` depends on.

        Subgroup ``sub`` covers the flat-parameter fraction
        ``(sub, sub+1] / nsub``; its update may start once the gradient
        blocks covering that fraction have been offloaded.
        """
        block = -(-(sub + 1) * self.num_blocks // nsub) - 1
        return min(self.num_blocks - 1, max(0, block))

    def _device_update(self, index: int, gates=None):
        """One CSD's shard update across its subgroups."""
        workload = self.workload
        n = self.fabric.num_devices
        nsub = subgroup_count(workload, self.system)
        device = self.fabric.devices[index]
        optimized = self.method in ("su_o", "su_o_c", "su_o_c_q")
        compressed = self.method in ("su_o_c", "su_o_c_q")
        quantized_up = self.method == "su_o_c_q"

        # Per-subgroup byte volumes for this device's shard.
        state_read = workload.optimizer_state_bytes / n / nsub
        if compressed:
            grad_read = (workload.compressed_gradient_bytes(
                self.compression_ratio) / n / nsub)
            dense_grad = workload.gradient_bytes / n / nsub
        else:
            grad_read = workload.gradient_bytes / n / nsub
            dense_grad = 0.0
        touched = workload.update_touched_bytes / n / nsub
        param_write = workload.master_upstream_bytes / n / nsub
        state_write = (workload.update_write_bytes
                       - workload.master_upstream_bytes) / n / nsub
        upstream = workload.master_upstream_bytes / n / nsub
        if quantized_up:
            # §VIII-B: the CSD writes int8 masters (+~0.1% scales), and
            # the host reads only the compressed form.
            upstream /= 4.0
            # The quantizer streams the fp32 masters through the FPGA.
            touched += workload.master_upstream_bytes / n / nsub

        # DMA-level double buffering: two subgroups in flight.
        slots = Semaphore(self.sim, f"csd{index}-buffers", capacity=2)
        lazy_and_upstream = []

        p2p = self.fabric.p2p_efficiency

        def subgroup_task():
            if not optimized:
                # Naive tasklets pay per-subgroup buffer alloc/free.
                yield self.sim.timeout(NAIVE_SUBGROUP_OVERHEAD)
            yield device.internal_read.transfer(
                (state_read + grad_read) / p2p, tag="p2p-load")
            if compressed:
                yield device.fpga_decompressor.transfer(dense_grad,
                                                        tag="decompress")
            yield device.fpga_updater.transfer(touched, tag="update")
            if optimized:
                # Urgent: parameters first, then hand the buffer over;
                # states are written back lazily, upstream is overlapped.
                yield device.internal_write.transfer(param_write / p2p,
                                                     tag="urgent-params")
                lazy_and_upstream.append(self.sim.process(
                    self._lazy_writeback(index, state_write / p2p),
                    name="lazy-writeback"))
                lazy_and_upstream.append(self.sim.process(
                    self._upstream(index, upstream), name="upstream"))
            else:
                yield device.internal_write.transfer(
                    (param_write + state_write) / p2p, tag="writeback")
                lazy_and_upstream.append(self.sim.process(
                    self._upstream(index, upstream), name="upstream"))
            slots.release()

        tasks = []
        for sub in range(nsub):
            if gates is not None:
                # Interleaved: wait for the gradient blocks this
                # subgroup's slice of the shard depends on.
                yield gates[self._gate_for_subgroup(sub, nsub)]
            yield slots.acquire()
            # Host-side mediation per tasklet serializes on the device's
            # driver thread before the subgroup's transfers can start.
            yield self.sim.timeout(HANDLER_SUBGROUP_OVERHEAD)
            tasks.append(self.sim.process(subgroup_task(),
                                          name=f"csd{index}-subgroup"))
        yield self.sim.all_of(tasks)
        # The iteration is done when deferred write-backs and the upstream
        # parameter transfers have drained.
        yield self.sim.all_of(lazy_and_upstream)

    def _lazy_writeback(self, index: int, nbytes: float):
        yield self.fabric.devices[index].internal_write.transfer(
            nbytes, tag="lazy-states")

    def _upstream(self, index: int, nbytes: float):
        yield self.fabric.device_to_host(index, nbytes, tag="masters-up")


def simulate_methods(system: SystemSpec, workload: Workload,
                     compression_ratio: float = 0.02,
                     methods=METHODS) -> Dict[str, PhaseBreakdown]:
    """Run every requested method on the same system/workload."""
    return {
        method: simulate_iteration(system, workload, method,
                                   compression_ratio=compression_ratio)
        for method in methods
    }
