"""Simulation fabric: instantiate channels from a system topology.

One :class:`Fabric` owns every contended resource of a machine:

* ``link_up`` / ``link_down`` — the shared host interconnect (PCIe is full
  duplex, so each direction is its own channel).  Every storage<->host byte
  crosses one of these; this pair is what saturates in Fig. 3b and what
  SmartUpdate bypasses.
* per-device SSD read/write channels (external path) and internal P2P
  read/write channels (SSD<->FPGA through the device's private switch).
* per-device FPGA updater and decompressor engines (bytes/s pipelines).
* the host CPU's AVX update engine.

The baseline's software-RAID path additionally pays a filesystem/md-layer
efficiency factor; the CSD P2P path issues raw pread/pwrite against the
namespace and runs at full device speed (§VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from ..errors import HardwareConfigError
from ..hw.topology import SystemSpec
from ..sim.core import Event, Simulator
from ..sim.resources import Channel

#: Software RAID + filesystem overhead on the baseline's storage path.
RAID_EFFICIENCY = 0.97

#: Host-side software overhead per iteration for driving the CSDs
#: (OpenCL command queues, device synchronization) — the reason a single
#: CSD shows a slight slowdown in Fig. 11a.
CSD_BASE_OVERHEAD = 0.05

#: Extra per-subgroup overhead of the *naive* SmartUpdate implementation
#: (per-tasklet OpenCL buffer allocation/free and blocking transfers);
#: removed by the transfer handler's buffer pre-allocation (SU+O).
NAIVE_SUBGROUP_OVERHEAD = 0.04

#: Host mediation cost per subgroup for every SmartUpdate variant: the
#: host threads that drive each tasklet (pread/pwrite submission into the
#: P2P buffer, OpenCL kernel dispatch) serialize per device.
HANDLER_SUBGROUP_OVERHEAD = 0.02

#: Host bounce-buffer bandwidth for gradient offload (GPU -> pinned host
#: memory copy + submission), which serializes with backward compute.
BOUNCE_BANDWIDTH = 28e9

#: Efficiency of the CSD-internal P2P path relative to raw flash bandwidth
#: (chunked pread/pwrite system calls into the OpenCL P2P buffer plus XRT
#: bookkeeping cost a slice of the raw device rate).
P2P_EFFICIENCY = 0.85


@dataclass
class DeviceChannels:
    """Channels of one storage device / CSD.

    ``nand_read``/``nand_write`` model the SSD's flash bandwidth, which is
    shared between the external host path and the internal P2P path — the
    FPGA reading optimizer states contends with the host reading updated
    masters from the *same* NAND array.  The internal PCIe switch link is
    at least as fast as the flash, so it adds no separate constraint.
    """

    nand_read: Channel
    nand_write: Channel
    fpga_updater: Channel
    fpga_decompressor: Channel

    # Aliases for readability at call sites.
    @property
    def internal_read(self) -> Channel:
        return self.nand_read

    @property
    def internal_write(self) -> Channel:
        return self.nand_write


class Fabric:
    """All contended resources of one simulated machine."""

    def __init__(self, sim: Simulator, system: SystemSpec,
                 raid_efficiency: float = RAID_EFFICIENCY,
                 p2p_efficiency: float = P2P_EFFICIENCY,
                 channel_scales: Optional[Mapping[str, float]] = None
                 ) -> None:
        if not 0 < raid_efficiency <= 1:
            raise HardwareConfigError("raid efficiency must be in (0, 1]")
        if not 0 < p2p_efficiency <= 1:
            raise HardwareConfigError("p2p efficiency must be in (0, 1]")
        self.sim = sim
        self.system = system
        self.raid_efficiency = raid_efficiency
        self.p2p_efficiency = p2p_efficiency
        # Counterfactual bandwidth multipliers, keyed by channel name —
        # the hook the what-if self-validation uses to re-run a scenario
        # with one link genuinely faster or slower.  Command latency is
        # unaffected, matching the critpath replay semantics.
        scales = dict(channel_scales or {})
        for name, value in scales.items():
            if value <= 0:
                raise HardwareConfigError(
                    f"channel scale for {name!r} must be positive, "
                    f"got {value}")

        def scaled(name: str, bandwidth: float) -> float:
            return bandwidth * scales.pop(name, 1.0)

        link_bw = system.host_link.bandwidth
        link_lat = system.host_link.latency
        self.link_up = Channel(sim, "host-link-up",
                               scaled("host-link-up", link_bw),
                               latency=link_lat)
        self.link_down = Channel(sim, "host-link-down",
                                 scaled("host-link-down", link_bw),
                                 latency=link_lat)
        self.cpu = Channel(sim, "cpu-updater",
                           scaled("cpu-updater",
                                  system.cpu.update_bandwidth))
        self.bounce = Channel(sim, "host-bounce",
                              scaled("host-bounce", BOUNCE_BANDWIDTH))

        self.devices: List[DeviceChannels] = []
        for index, csd in enumerate(system.csds):
            ssd = csd.ssd
            fpga = csd.fpga
            self.devices.append(DeviceChannels(
                nand_read=Channel(sim, f"ssd{index}-read",
                                  scaled(f"ssd{index}-read",
                                         ssd.read_bandwidth),
                                  latency=ssd.latency),
                nand_write=Channel(sim, f"ssd{index}-write",
                                   scaled(f"ssd{index}-write",
                                          ssd.write_bandwidth),
                                   latency=ssd.latency),
                fpga_updater=Channel(sim, f"csd{index}-updater",
                                     scaled(f"csd{index}-updater",
                                            fpga.updater_bandwidth),
                                     latency=fpga.kernel_launch_latency),
                fpga_decompressor=Channel(
                    sim, f"csd{index}-decompressor",
                    scaled(f"csd{index}-decompressor",
                           fpga.decompressor_bandwidth),
                    latency=fpga.kernel_launch_latency),
            ))
        if scales:
            raise HardwareConfigError(
                f"channel_scales names no channel of this system: "
                f"{sorted(scales)}")

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    # ------------------------------------------------------------------
    # composite transfers
    # ------------------------------------------------------------------
    def raid_read(self, nbytes: float, tag: str = "raid-read") -> Event:
        """Striped read to the host: all members + the shared up-link.

        The md/fs layer costs :attr:`raid_efficiency` on the member side.
        Completion is when every leg finishes (store-and-forward pipelining
        is approximated by running the legs concurrently).
        """
        per_member = nbytes / self.num_devices / self.raid_efficiency
        legs = [device.nand_read.transfer(per_member, tag=tag)
                for device in self.devices]
        legs.append(self.link_up.transfer(nbytes, tag=tag))
        return self.sim.all_of(legs)

    def raid_write(self, nbytes: float, tag: str = "raid-write") -> Event:
        """Striped write from the host: shared down-link + all members."""
        per_member = nbytes / self.num_devices / self.raid_efficiency
        legs = [device.nand_write.transfer(per_member, tag=tag)
                for device in self.devices]
        legs.append(self.link_down.transfer(nbytes, tag=tag))
        return self.sim.all_of(legs)

    def host_to_device(self, index: int, nbytes: float,
                       tag: str = "h2d") -> Event:
        """Host -> one device's SSD (e.g. gradient offload to the owner
        CSD): shared down-link + that device's write channel."""
        device = self.devices[index]
        return self.sim.all_of([
            self.link_down.transfer(nbytes, tag=tag),
            device.nand_write.transfer(nbytes, tag=tag),
        ])

    def device_to_host(self, index: int, nbytes: float,
                       tag: str = "d2h") -> Event:
        """One device's SSD -> host (e.g. updated masters upstream)."""
        device = self.devices[index]
        return self.sim.all_of([
            device.nand_read.transfer(nbytes, tag=tag),
            self.link_up.transfer(nbytes, tag=tag),
        ])

    def all_channels(self) -> List[Channel]:
        """Every channel of the machine (for export and attribution)."""
        channels = [self.link_up, self.link_down, self.cpu, self.bounce]
        for device in self.devices:
            channels.extend([device.nand_read, device.nand_write,
                             device.fpga_updater,
                             device.fpga_decompressor])
        return channels
