"""Per-iteration workload quantities for the performance model.

Everything the discrete-event scenarios need about one training
configuration is a handful of byte/FLOP totals, all linear in the model's
parameter count — the reason the paper's speedups are nearly constant
across model sizes (§VII-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareConfigError
from ..nn.models import ModelSpec
from ..optim import make_optimizer


@dataclass(frozen=True)
class Workload:
    """Byte and FLOP totals of one training iteration."""

    model: ModelSpec
    batch_size: int
    optimizer: str
    #: FP32 words per parameter held in optimizer state (Adam: 3 -> 6M).
    states_per_param: int
    forward_flops: float
    backward_flops: float

    @property
    def num_params(self) -> int:
        return self.model.num_parameters

    @property
    def iteration_flops(self) -> float:
        """Total FLOPs of one iteration (forward + backward)."""
        return self.forward_flops + self.backward_flops

    # ------------------------------------------------------------------
    # traffic volumes (Table I terms, in bytes)
    # ------------------------------------------------------------------
    @property
    def fp16_param_bytes(self) -> int:
        """M: the FP16 working copy (streamed GPU<->host every pass)."""
        return 2 * self.num_params

    @property
    def gradient_bytes(self) -> int:
        """2M: FP32 gradients offloaded during backward."""
        return 4 * self.num_params

    @property
    def optimizer_state_bytes(self) -> int:
        """6M for Adam (master+momentum+variance), 4M for SGD/AdaGrad."""
        return 4 * self.states_per_param * self.num_params

    @property
    def update_read_bytes(self) -> int:
        """Storage reads of the update phase: optimizer states + gradients
        (8M for Adam)."""
        return self.optimizer_state_bytes + self.gradient_bytes

    @property
    def update_write_bytes(self) -> int:
        """Storage writes of the update phase: optimizer states (6M)."""
        return self.optimizer_state_bytes

    @property
    def master_upstream_bytes(self) -> int:
        """2M: updated FP32 master parameters sent upstream (SmartUpdate)."""
        return 4 * self.num_params

    @property
    def update_touched_bytes(self) -> int:
        """Bytes the update engine streams: reads + writes."""
        return self.update_read_bytes + self.update_write_bytes

    @property
    def activation_bytes(self) -> int:
        """Checkpointed activations per iteration (batch x seq x dim x 2B
        per layer); only matters for the congested multi-GPU topology."""
        return (2 * self.batch_size * self.model.seq_len
                * self.model.hidden_dim * self.model.num_layers)

    def compressed_gradient_bytes(self, volume_ratio: float) -> float:
        """SmartComp downstream volume: c% x 2M."""
        if not 0 < volume_ratio <= 2.0:
            raise HardwareConfigError(
                f"volume ratio must be in (0, 2], got {volume_ratio}")
        return volume_ratio * self.gradient_bytes


def make_workload(model: ModelSpec, batch_size: int = 4,
                  optimizer: str = "adam") -> Workload:
    """Build the workload for one (model, batch, optimizer) combination."""
    if batch_size < 1:
        raise HardwareConfigError("batch size must be >= 1")
    states = make_optimizer(optimizer).states_per_param
    return Workload(
        model=model,
        batch_size=batch_size,
        optimizer=optimizer,
        states_per_param=states,
        forward_flops=model.forward_flops(batch_size),
        backward_flops=model.backward_flops(batch_size),
    )
