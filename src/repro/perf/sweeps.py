"""Parameter-sweep helpers over the DES scenarios.

Thin, reusable loops behind the CLI's ``sweep`` subcommand and several
experiments: sweep one axis (device count, model size, compression
ratio), return structured rows, render as a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import HardwareConfigError
from ..hw.gpu import GPUSpec
from ..hw.topology import default_system
from ..nn.models import get_model
from .scenarios import simulate_iteration
from .workload import make_workload

AXES = ("devices", "model", "ratio")


@dataclass(frozen=True)
class SweepRow:
    """One sweep point: the axis value and both iteration times."""

    value: object
    baseline_time: float
    smart_time: float

    @property
    def speedup(self) -> float:
        return self.baseline_time / self.smart_time


def sweep_devices(model_name: str, counts: Sequence[int],
                  method: str = "su_o_c",
                  gpu: GPUSpec = None) -> List[SweepRow]:
    """Speedup vs device count (the Fig. 11 axis)."""
    workload = make_workload(get_model(model_name))
    rows = []
    for count in counts:
        system = default_system(num_csds=count, gpu=gpu)
        rows.append(SweepRow(
            value=count,
            baseline_time=simulate_iteration(system, workload,
                                             "baseline").total,
            smart_time=simulate_iteration(system, workload,
                                          method).total))
    return rows


def sweep_models(model_names: Sequence[str], num_devices: int = 10,
                 method: str = "su_o_c") -> List[SweepRow]:
    """Speedup vs model size (the Fig. 10 axis)."""
    system = default_system(num_csds=num_devices)
    rows = []
    for name in model_names:
        workload = make_workload(get_model(name))
        rows.append(SweepRow(
            value=name,
            baseline_time=simulate_iteration(system, workload,
                                             "baseline").total,
            smart_time=simulate_iteration(system, workload,
                                          method).total))
    return rows


def sweep_ratios(model_name: str, ratios: Sequence[float],
                 num_devices: int = 10) -> List[SweepRow]:
    """Speedup vs SmartComp volume ratio (the Fig. 16 axis)."""
    workload = make_workload(get_model(model_name))
    system = default_system(num_csds=num_devices)
    baseline = simulate_iteration(system, workload, "baseline").total
    rows = []
    for ratio in ratios:
        smart = simulate_iteration(system, workload, "su_o_c",
                                   compression_ratio=ratio).total
        rows.append(SweepRow(value=f"{ratio:.0%}",
                             baseline_time=baseline, smart_time=smart))
    return rows


def render_sweep(rows: Sequence[SweepRow], axis_label: str) -> str:
    """Fixed-width rendering of a sweep."""
    lines = [f"{axis_label:>12} {'BASE iter':>10} {'Smart iter':>11} "
             f"{'speedup':>8}"]
    for row in rows:
        lines.append(f"{str(row.value):>12} {row.baseline_time:>9.2f}s "
                     f"{row.smart_time:>10.2f}s {row.speedup:>7.2f}x")
    return "\n".join(lines)


def run_sweep(axis: str, **kwargs) -> List[SweepRow]:
    """Dispatch by axis name (``devices`` / ``model`` / ``ratio``)."""
    if axis == "devices":
        return sweep_devices(**kwargs)
    if axis == "model":
        return sweep_models(**kwargs)
    if axis == "ratio":
        return sweep_ratios(**kwargs)
    raise HardwareConfigError(f"unknown sweep axis {axis!r}; "
                              f"choose from {AXES}")
