"""Bottleneck analysis over simulated iterations.

Answers the "where does the time go" questions behind the paper's
narrative, per method:

* baseline — the shared host interconnect saturates (Fig. 3b);
* SmartUpdate — the bottleneck moves to the per-device NAND channels,
  which aggregate with device count (§IV-A);
* SmartComp — with gradients compressed, the remaining shared-channel
  load is the upstream parameter transfer (§VIII-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..hw.topology import SystemSpec
from ..sim.trace import (ChannelSummary, summarize_channels,
                         traffic_by_tag)
from ..telemetry.attrib import Attribution, attribute_channels
from ..telemetry.critpath import CritPathReport, DepGraph
from .scenarios import PhaseBreakdown, trace_scenario
from .workload import Workload


@dataclass(frozen=True)
class IterationAnalysis:
    """Breakdown plus channel-level attribution of one simulated run."""

    method: str
    breakdown: PhaseBreakdown
    channels: List[ChannelSummary]
    tag_bytes: Dict[str, float]
    #: Phase x resource decomposition (buckets tile the step exactly).
    attribution: Optional[Attribution] = None
    #: Critical path over the same channel records (CPM slack + the
    #: gating chain the what-if engine replays).
    critpath: Optional[CritPathReport] = None

    @property
    def bottleneck(self) -> ChannelSummary:
        return self.channels[0]

    def channel(self, name: str) -> ChannelSummary:
        for summary in self.channels:
            if summary.name == name:
                return summary
        raise KeyError(f"unknown channel {name!r}")

    def shared_link_bytes(self) -> float:
        """Bytes that crossed the host interconnect (both directions)."""
        up = self.channel("host-link-up")
        down = self.channel("host-link-down")
        return up.bytes_total + down.bytes_total

    def render(self, top: int = 6) -> str:
        lines = [f"method {self.method}: iteration "
                 f"{self.breakdown.total:.2f}s, bottleneck = "
                 f"{self.bottleneck.name} "
                 f"({self.bottleneck.busy_time:.2f}s busy)"]
        for summary in self.channels[:top]:
            lines.append(
                f"  {summary.name:<22} busy {summary.busy_time:6.2f}s  "
                f"util {summary.utilization:6.1%}  "
                f"{summary.bytes_total / 1e9:8.2f} GB")
        if self.attribution is not None:
            lines.append("  " + self.attribution.verdict().render())
        if self.critpath is not None and self.critpath.path:
            shares = sorted(self.critpath.resource_seconds().items(),
                            key=lambda kv: -kv[1])
            head = ", ".join(f"{name} {seconds:.2f}s"
                             for name, seconds in shares[:3])
            coverage = (self.critpath.path_seconds / self.breakdown.total
                        if self.breakdown.total > 0 else 0.0)
            lines.append(
                f"  critical path: {len(self.critpath.path)} hops, "
                f"{self.critpath.path_seconds:.2f}s busy + "
                f"{self.critpath.wait_seconds:.2f}s waits "
                f"({coverage:.0%} of step) — {head}")
        return "\n".join(lines)


def analyze_iteration(system: SystemSpec, workload: Workload, method: str,
                      compression_ratio: float = 0.02
                      ) -> IterationAnalysis:
    """Run one scenario and attribute time to channels."""
    trace = trace_scenario(
        system, workload, method, compression_ratio=compression_ratio)
    channels = trace.fabric.all_channels()
    graph = DepGraph.from_channels(channels, trace.phase_windows)
    return IterationAnalysis(
        method=method,
        breakdown=trace.breakdown,
        channels=summarize_channels(channels),
        tag_bytes=traffic_by_tag(channels),
        attribution=attribute_channels(trace.phase_windows, channels,
                                       horizon=trace.breakdown.total),
        critpath=graph.critical_path() if graph.nodes else None,
    )


def compare_bottlenecks(system: SystemSpec, workload: Workload,
                        methods=("baseline", "su", "su_o", "su_o_c")
                        ) -> Dict[str, IterationAnalysis]:
    """Bottleneck analysis for several methods on the same machine."""
    return {
        method: analyze_iteration(system, workload, method)
        for method in methods
    }
