"""Performance model: DES scenarios for every method and topology."""

from .cost import CostEfficiency, cost_efficiency
from .fabric import (CSD_BASE_OVERHEAD, DeviceChannels, Fabric,
                     NAIVE_SUBGROUP_OVERHEAD, RAID_EFFICIENCY)
from .scenarios import (METHODS, PhaseBreakdown, simulate_iteration,
                        simulate_methods, subgroup_count)
from .workload import Workload, make_workload

__all__ = [
    "CSD_BASE_OVERHEAD",
    "CostEfficiency",
    "DeviceChannels",
    "Fabric",
    "METHODS",
    "NAIVE_SUBGROUP_OVERHEAD",
    "PhaseBreakdown",
    "RAID_EFFICIENCY",
    "Workload",
    "cost_efficiency",
    "make_workload",
    "simulate_iteration",
    "simulate_methods",
    "subgroup_count",
]
