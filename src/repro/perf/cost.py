"""System cost-efficiency model (Fig. 15): GFLOPS per dollar.

The paper prices the platform at ~$45k (CPU, RAM, PCIe expansion), GPUs at
$2k (A5000) / $7k (A100), plain 4TB SSDs at $400 and SmartSSDs at $2,400
(6x the plain SSD).  Training throughput is the model's iteration FLOPs
divided by simulated iteration time; dividing by system cost gives the
figure's metric.  Smart-Infinity loses below ~4 CSDs (the 6x device premium
dominates) and wins beyond, with GFLOPS/$ still rising at 10 devices.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.topology import SystemSpec
from .scenarios import PhaseBreakdown
from .workload import Workload


@dataclass(frozen=True)
class CostEfficiency:
    """Throughput-per-dollar of one configuration."""

    method: str
    num_devices: int
    iteration_time: float
    iteration_flops: float
    system_cost_usd: float

    @property
    def gflops(self) -> float:
        """Sustained training throughput in GFLOP/s."""
        return self.iteration_flops / self.iteration_time / 1e9

    @property
    def gflops_per_dollar(self) -> float:
        return self.gflops / self.system_cost_usd


def cost_efficiency(system: SystemSpec, workload: Workload, method: str,
                    breakdown: PhaseBreakdown) -> CostEfficiency:
    """Fig. 15's metric for one simulated configuration.

    The baseline is priced with plain SSDs of the same capacity; every
    Smart-Infinity variant pays the SmartSSD premium.
    """
    as_plain = method == "baseline"
    return CostEfficiency(
        method=method,
        num_devices=system.num_csds,
        iteration_time=breakdown.total,
        iteration_flops=workload.iteration_flops,
        system_cost_usd=system.total_cost_usd(as_plain_ssds=as_plain),
    )
