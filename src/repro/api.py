"""The canonical public API surface: one factory, one config, one runner.

Historically each engine had its own constructor signature —
``BaselineOffloadEngine(..., num_ssds=...)``,
``SmartInfinityEngine(..., num_csds=...)``,
``HostOffloadEngine(..., host_memory_bytes=...)`` — and callers imported
three classes to switch between them.  :func:`create_engine` replaces all
of that with a mode string plus one :class:`~repro.runtime.engine.
TrainingConfig`: fleet geometry (``num_csds``, ``raid_members``,
``raid_chunk_bytes``, ``host_memory_bytes``) and the fault plan are
config fields, so the whole engine setup round-trips through a JSON
config file.

    from repro.api import create_engine

    engine = create_engine("smart", model, loss_fn, "/data/run0",
                           config=TrainingConfig(num_csds=4))

The old per-engine ctor kwargs completed their deprecation cycle and now
raise :class:`~repro.errors.TrainingError` with the exact
``create_engine`` migration in the message.

Beyond the factory, this module re-exports the rest of the supported
surface so one import site covers configuration (:class:`TrainingConfig`),
chaos (:class:`~repro.faults.FaultPlan`), health SLOs
(:class:`~repro.telemetry.health.Rule` /
:class:`~repro.telemetry.health.RulesEngine`), and replayable campaigns
(:class:`~repro.scenarios.Scenario` /
:class:`~repro.scenarios.ScenarioRunner`).  Anything in ``__all__`` here
(mirrored by ``repro/__init__``) follows the documented deprecation
policy (docs/API.md); everything else is internal and may change without
notice.
"""

from __future__ import annotations

from typing import Optional

from .errors import TrainingError
from .faults import FaultPlan
from .nn.modules import Module
from .runtime.engine import (BaselineOffloadEngine, LossFn,
                             MixedPrecisionTrainer, TrainingConfig)
from .runtime.host_offload import HostOffloadEngine
from .runtime.smart import SmartInfinityEngine
from .scenarios import Scenario, ScenarioRunner, load_scenario
from .telemetry.health import Rule, RulesEngine

#: Engine modes accepted by :func:`create_engine`.
ENGINE_MODES = ("baseline", "host_offload", "smart")

__all__ = [
    "ENGINE_MODES",
    "FaultPlan",
    "Rule",
    "RulesEngine",
    "Scenario",
    "ScenarioRunner",
    "TrainingConfig",
    "create_engine",
    "load_scenario",
]


def create_engine(mode: str, model: Module, loss_fn: LossFn,
                  storage_dir: Optional[str] = None,
                  config: Optional[TrainingConfig] = None,
                  ) -> MixedPrecisionTrainer:
    """Build a training engine from a mode string and one config.

    * ``"baseline"`` — ZeRO-Infinity-style: RAID0 over
      ``config.raid_members`` SSDs, CPU update (needs ``storage_dir``);
    * ``"host_offload"`` — ZeRO-Offload-style: states in host DRAM
      (``storage_dir`` unused);
    * ``"smart"`` — Smart-Infinity: ``config.num_csds`` SmartSSDs with
      near-storage FPGA update (needs ``storage_dir``).

    All three share the mixed-precision trainer interface
    (``train_step``, ``close``, checkpointing) and train bit-identically,
    so callers can switch modes without touching anything else.

    Shard-parallel engines additionally honour
    ``config.parallel_backend`` (``"thread"``, ``"process"`` or
    ``"auto"``): the process backend runs one worker process per CSD
    with optimizer shards in shared memory, scaling past the GIL while
    keeping the training output bit-identical to the thread pool.

    Two further knobs shape the step without changing a trained bit:
    ``config.schedule`` (``"phased"`` | ``"interleaved"`` — the latter
    overlaps per-block gradient offload + update with the rest of
    backprop via a bounded ready queue) and
    ``config.activation_offload`` (``"recompute"`` | ``"spill"`` |
    ``"auto"`` — spill boundary activations to storage with async
    prefetch instead of recomputing; ``auto`` spills exactly when the
    engine owns a ``storage_dir``).
    """
    if mode not in ENGINE_MODES:
        raise TrainingError(
            f"unknown engine mode {mode!r}; choose from {ENGINE_MODES}")
    config = config or TrainingConfig()
    if mode == "host_offload":
        return HostOffloadEngine(model, loss_fn, config=config)
    if storage_dir is None:
        raise TrainingError(f"engine mode {mode!r} needs a storage_dir")
    if mode == "baseline":
        return BaselineOffloadEngine(model, loss_fn, storage_dir,
                                     config=config)
    return SmartInfinityEngine(model, loss_fn, storage_dir, config=config)
