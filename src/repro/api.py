"""The supported public construction surface: one factory, three engines.

Historically each engine had its own constructor signature —
``BaselineOffloadEngine(..., num_ssds=...)``,
``SmartInfinityEngine(..., num_csds=...)``,
``HostOffloadEngine(..., host_memory_bytes=...)`` — and callers imported
three classes to switch between them.  :func:`create_engine` replaces all
of that with a mode string plus one :class:`~repro.runtime.engine.
TrainingConfig`: fleet geometry (``num_csds``, ``raid_members``,
``raid_chunk_bytes``, ``host_memory_bytes``) and the fault plan are
config fields, so the whole engine setup round-trips through a JSON
config file.

    from repro.api import create_engine

    engine = create_engine("smart", model, loss_fn, "/data/run0",
                           config=TrainingConfig(num_csds=4))

The old per-engine constructors keep working but emit
``DeprecationWarning``; new code (including this repo's CLI, bench
harness and experiments) goes through the factory.
"""

from __future__ import annotations

from typing import Optional

from .errors import TrainingError
from .nn.modules import Module
from .runtime.engine import (BaselineOffloadEngine, LossFn,
                             MixedPrecisionTrainer, TrainingConfig)
from .runtime.host_offload import HostOffloadEngine
from .runtime.smart import SmartInfinityEngine

#: Engine modes accepted by :func:`create_engine`.
ENGINE_MODES = ("baseline", "host_offload", "smart")


def create_engine(mode: str, model: Module, loss_fn: LossFn,
                  storage_dir: Optional[str] = None,
                  config: Optional[TrainingConfig] = None,
                  ) -> MixedPrecisionTrainer:
    """Build a training engine from a mode string and one config.

    * ``"baseline"`` — ZeRO-Infinity-style: RAID0 over
      ``config.raid_members`` SSDs, CPU update (needs ``storage_dir``);
    * ``"host_offload"`` — ZeRO-Offload-style: states in host DRAM
      (``storage_dir`` unused);
    * ``"smart"`` — Smart-Infinity: ``config.num_csds`` SmartSSDs with
      near-storage FPGA update (needs ``storage_dir``).

    All three share the mixed-precision trainer interface
    (``train_step``, ``close``, checkpointing) and train bit-identically,
    so callers can switch modes without touching anything else.

    Shard-parallel engines additionally honour
    ``config.parallel_backend`` (``"thread"``, ``"process"`` or
    ``"auto"``): the process backend runs one worker process per CSD
    with optimizer shards in shared memory, scaling past the GIL while
    keeping the training output bit-identical to the thread pool.
    """
    if mode not in ENGINE_MODES:
        raise TrainingError(
            f"unknown engine mode {mode!r}; choose from {ENGINE_MODES}")
    config = config or TrainingConfig()
    if mode == "host_offload":
        return HostOffloadEngine(model, loss_fn, config=config)
    if storage_dir is None:
        raise TrainingError(f"engine mode {mode!r} needs a storage_dir")
    if mode == "baseline":
        return BaselineOffloadEngine(model, loss_fn, storage_dir,
                                     config=config)
    return SmartInfinityEngine(model, loss_fn, storage_dir, config=config)
