"""Storage-offloaded training engines: shared base + the CPU baseline.

The baseline engine reproduces the ZeRO-Infinity dataflow of Fig. 1:

* FP16 working parameters in the "GPU" (the numpy module),
* FP32 optimizer states (master params, moments) on storage,
* gradients offloaded to storage during backward,
* block-wise CPU update: upload gradients + optimizer states, update with
  the host optimizer, offload the states back, refresh the FP16 copy.

Every byte crossing the host<->storage path is metered so the Table I
accounting can be asserted, and the engines share one mixed-precision
forward/backward implementation so baseline-vs-Smart-Infinity accuracy
comparisons differ *only* in where the update runs.
"""

from __future__ import annotations

import contextlib
import difflib
import json
import math
import os
import time
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..errors import TrainingError
from ..faults import FaultInjector, FaultPlan
from ..memory import ArenaStats, aggregate_arena_stats
from ..telemetry import flight
from ..telemetry.flight import FlightRecorder, IncidentDumper
from ..telemetry.health import (Alert, DEFAULT_SLO_RULES, RulesEngine,
                                StepHealthMonitor, parse_rules)
from ..nn.modules import Module
from ..nn.precision import (LossScaler, clip_gradients, has_overflow)
from ..optim import make_optimizer
from ..optim.base import scratch_buffers
from ..storage.blockdev import FileBlockDevice
from ..storage.raid0 import RAID0Volume
from ..storage.tensor_store import TensorStore
from .partition import FlatParameterSpace
from .stats import IterationTraffic, TrafficMeter

#: loss_fn(model, *batch) -> scalar Tensor
LossFn = Callable[..., "object"]

#: Version stamped into ``TrainingConfig.to_dict()`` output.  Bump it
#: when a field changes meaning (not when fields are merely added —
#: unknown-key rejection already catches those); loading a *newer*
#: version warns but proceeds, so configs stay forward-portable.
CONFIG_SCHEMA_VERSION = 1


@dataclass
class TrainingConfig:
    """Knobs shared by the baseline and Smart-Infinity engines."""

    optimizer: str = "adam"
    optimizer_kwargs: Dict = field(default_factory=dict)
    grad_clip: float = 1.0
    initial_loss_scale: float = 2.0 ** 16
    #: Elements per update subgroup (the paper's accelerator-DRAM-sized D).
    subgroup_elements: int = 1 << 16
    #: SmartComp volume ratio (None disables compression).
    compression_ratio: Optional[float] = None
    error_feedback: bool = True
    #: SU+O (optimized transfer handler) vs plain SU (naive loop).
    use_transfer_handler: bool = True
    #: BRAM chunk size of the functional FPGA kernels (S).
    kernel_chunk_elements: int = 16_384
    #: Model-compression extension (§VIII-B): the CSD quantizes updated
    #: masters to int8 before the upstream transfer, and the host
    #: dequantizes for the STE forward pass.
    quantized_upstream: bool = False
    #: Per-group size of the int8 quantization scales.
    quantization_group: int = 4096
    #: Magnitude-pruning sparsity applied to the FP16 working copy
    #: (None disables pruning; masters stay dense).
    pruning_sparsity: Optional[float] = None
    #: Worker threads fanning per-CSD offload/update work (Fig. 11's
    #: one-update-per-device concurrency).  None/0 = auto, i.e.
    #: ``min(num_csds, cpu_count)``; 1 forces the sequential loop;
    #: parallel execution is bit-identical to sequential (tested).
    parallel_csds: Optional[int] = None
    #: Execution backend for that fan-out: ``thread`` (shared-address-
    #: space pool, GIL-bound), ``process`` (per-CSD worker processes with
    #: shared-memory shard channels — true multi-core scaling), or
    #: ``auto`` (process exactly when >1 worker and >1 usable CPU).
    #: Both backends produce bit-identical training output (tested).
    parallel_backend: str = "thread"
    #: Fleet geometry (folded out of the old per-engine ctor kwargs so
    #: :func:`repro.api.create_engine` needs only a mode + config):
    #: number of SmartSSDs for the smart engine ...
    num_csds: int = 1
    #: ... RAID0 member count + stripe chunk for the baseline engine ...
    raid_members: int = 1
    raid_chunk_bytes: int = 1 << 20
    #: ... and the host-DRAM budget of the host-offload engine (None =
    #: unchecked).
    host_memory_bytes: Optional[int] = None
    #: Step schedule: ``phased`` (forward -> backward -> offload barrier
    #: -> update barrier) or ``interleaved`` (each block/device's
    #: offload+update chain is enqueued the moment its gradients exist,
    #: riding inside the backward/offload span — see
    #: :mod:`repro.runtime.interleave`).  Bit-identical results either
    #: way (tested, including under chaos).
    schedule: str = "phased"
    #: Boundary-activation handling for checkpointed training:
    #: ``recompute`` keeps boundaries in host memory (classic activation
    #: checkpointing), ``spill`` writes them to an SSD-backed spill
    #: device during forward and async-prefetches them ahead of backward
    #: (:mod:`repro.nn.offload`), ``auto`` lets the engine pick spill
    #: exactly when it owns a storage directory to spill to.
    activation_offload: str = "recompute"
    #: Fault-injection plan for the storage/CSD fleet (None = no faults).
    #: See :mod:`repro.faults` for the failure model.
    fault_plan: Optional[FaultPlan] = None
    #: Always-on flight recorder (:mod:`repro.telemetry.flight`): a ring
    #: of the last ``flight_capacity`` events per worker thread.
    flight_recorder: bool = True
    flight_capacity: int = 512
    #: Directory for automatic incident dumps (flightrec/v1 JSONL).
    #: None disables *file* dumps — alerts still fire and land in the
    #: ring — so library/test use never writes files unasked.
    flight_dump_dir: Optional[str] = None
    #: Most incident dump files this engine will write (distinct
    #: incident keys beyond the cap are dropped, not rotated — the
    #: *first* occurrences are the interesting ones).
    flight_dump_limit: int = 16
    #: When set, prune the dump directory down to the newest N
    #: ``flightrec-*.jsonl`` files after every write — bounding a
    #: long-lived directory across runs.  None keeps everything.
    flight_dump_retention: Optional[int] = None
    #: Declarative SLO/anomaly rules as raw dicts (the shape of
    #: ``examples/slo.json``); None applies
    #: :data:`repro.telemetry.health.DEFAULT_SLO_RULES`.
    slo_rules: Optional[List[Dict]] = None

    # ------------------------------------------------------------------
    # DeepSpeed-style config files (§VI: "enabled by simply specifying an
    # option"): the whole engine configuration round-trips through JSON.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Plain-dict form, suitable for ``json.dump``."""
        data = dict(self.__dict__)
        data["schema_version"] = CONFIG_SCHEMA_VERSION
        if self.fault_plan is not None:
            data["fault_plan"] = self.fault_plan.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "TrainingConfig":
        """Build a config from a dict, rejecting unknown keys.

        Unknown keys fail loudly with close-match suggestions, so a typo
        like ``compression_ration`` points at ``compression_ratio``
        instead of silently training with defaults.  A ``schema_version``
        newer than :data:`CONFIG_SCHEMA_VERSION` warns and proceeds
        best-effort (forward compatibility); same-or-older loads
        silently.
        """
        data = dict(data)
        version = data.pop("schema_version", CONFIG_SCHEMA_VERSION)
        if not isinstance(version, int) or isinstance(version, bool) \
                or version < 1:
            raise TrainingError(
                f"config schema_version must be a positive integer, "
                f"got {version!r}")
        if version > CONFIG_SCHEMA_VERSION:
            import warnings
            warnings.warn(
                f"config has schema_version {version}, newer than this "
                f"build's {CONFIG_SCHEMA_VERSION}; loading best-effort "
                "— unknown fields will be rejected, changed semantics "
                "will not be detected", FutureWarning, stacklevel=2)
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            hints = []
            for key in sorted(unknown):
                close = difflib.get_close_matches(key, known, n=1)
                hints.append(f"{key!r}" + (f" (did you mean {close[0]!r}?)"
                                           if close else ""))
            raise TrainingError(
                f"unknown config keys: {', '.join(hints)}; known keys: "
                f"{sorted(known)}")
        data = dict(data)
        plan = data.get("fault_plan")
        if isinstance(plan, dict):
            data["fault_plan"] = FaultPlan.from_dict(plan)
        return cls(**data)

    @classmethod
    def from_json_file(cls, path: str) -> "TrainingConfig":
        """Load a config from a JSON file (the DeepSpeed-config idiom)."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def to_json_file(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)


#: create_engine mode string per engine class, for migration hints.
_ENGINE_MODES_BY_CLASS = {
    "BaselineOffloadEngine": "baseline",
    "HostOffloadEngine": "host_offload",
    "SmartInfinityEngine": "smart",
}


def fold_deprecated_kwarg(config: TrainingConfig, kwarg: str, value,
                          field_name: str, engine: str) -> TrainingConfig:
    """Reject a removed constructor kwarg with a migration hint.

    The engines' fleet-geometry kwargs (``num_ssds``, ``num_csds``,
    ``host_memory_bytes``) moved into :class:`TrainingConfig` so the
    :func:`repro.api.create_engine` factory can build any engine from a
    mode string plus one config object.  The old signatures went through
    a DeprecationWarning cycle and are now hard errors: the message
    names the exact ``create_engine`` call to write instead.
    """
    if value is None:
        return config
    mode = _ENGINE_MODES_BY_CLASS.get(engine, "<mode>")
    raise TrainingError(
        f"{engine}({kwarg}=...) was removed; set "
        f"TrainingConfig(..., {field_name}={value!r}) and build the "
        f"engine via repro.api.create_engine({mode!r}, model, loss_fn, "
        f"storage_dir, config=config)")


def make_fault_injector(config: TrainingConfig) -> Optional["FaultInjector"]:
    """The engine-side fault injector, or None when no plan is set."""
    if config.fault_plan is None:
        return None
    return FaultInjector(config.fault_plan)


def fault_bypass(faults: Optional[FaultInjector]):
    """Context manager suspending injection (no-op without an injector).

    Engines wrap construction-time placement and demotion-time salvage
    reads in this: setup traffic and the emulated maintenance path are
    outside the fault domain.
    """
    if faults is None:
        return contextlib.nullcontext()
    return faults.maintenance()


@dataclass(frozen=True)
class StepResult:
    """Outcome of one training iteration."""

    step: int
    loss: float
    grad_norm: float
    overflow: bool
    traffic: IterationTraffic


class MixedPrecisionTrainer:
    """Shared forward/backward with FP16 working params and loss scaling."""

    def __init__(self, model: Module, loss_fn: LossFn,
                 config: TrainingConfig) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self.config = config
        self.space = FlatParameterSpace(model)
        self.scaler = LossScaler(scale=config.initial_loss_scale)
        self.optimizer = make_optimizer(config.optimizer,
                                        **config.optimizer_kwargs)
        self.step_count = 0
        self.loss_history: List[float] = []
        self._lr_schedule: Optional[Callable[[int], float]] = None

        # Execution schedule + activation handling (validated here so a
        # typo fails loudly on every engine).  The spill store is
        # installed by engines that own a storage directory, via
        # _init_activation_offload.
        from .interleave import resolve_schedule
        self.schedule = resolve_schedule(config)
        self.activation_offload = "recompute"
        self._spill = None

        # Step-health monitoring + SLO rules (repro.telemetry.health):
        # fed once per step by _run_step, evaluated immediately after.
        self.health = StepHealthMonitor()
        raw_rules = (config.slo_rules if config.slo_rules is not None
                     else list(DEFAULT_SLO_RULES))
        self.rules = RulesEngine(parse_rules(raw_rules))
        self.alerts: List[Alert] = []

        # The always-on flight recorder: this engine installs its own
        # and restores whatever was active before on close().
        self.flight: Optional[FlightRecorder] = None
        self._flight_previous: Optional[FlightRecorder] = None
        self._incidents: Optional[IncidentDumper] = None
        if config.flight_recorder:
            self.flight = FlightRecorder(
                capacity_per_worker=config.flight_capacity)
            self._flight_previous = flight.install(self.flight)
            if config.flight_dump_dir is not None:
                self._incidents = IncidentDumper(
                    self.flight, config.flight_dump_dir,
                    limit=config.flight_dump_limit,
                    retention=config.flight_dump_retention)
        self._fault_snapshot = self.fault_stats()
        self._arena_snapshot = aggregate_arena_stats()
        self._span_cursor = 0

    @property
    def num_params(self) -> int:
        return self.space.total_elements

    # ------------------------------------------------------------------
    # activation spill (SSD-backed boundary activations, repro.nn.offload)
    # ------------------------------------------------------------------
    def _init_activation_offload(self,
                                 storage_dir: Optional[str]) -> None:
        """Resolve the activation mode and build the spill store.

        Engines call this once they know whether they own a storage
        directory; ``auto`` resolves to spill exactly when they do.
        """
        from .interleave import make_spill_store, resolve_activation_offload
        self.activation_offload = resolve_activation_offload(
            self.config, storage_dir is not None)
        if self.activation_offload == "spill":
            self._spill = make_spill_store(self.config, storage_dir)

    def _activation_scope(self):
        """Context activating the spill store for checkpointed forwards."""
        from .interleave import activation_scope
        return activation_scope(self._spill)

    def _close_spill(self) -> None:
        if self._spill is not None:
            self._spill.close()
            self._spill = None

    def fault_stats(self) -> Dict[str, object]:
        """Cumulative fault/resilience accounting for this engine.

        Always returns the full shape (zeros without a fault plan) so
        reports and tests can read it unconditionally.
        """
        stats: Dict[str, object] = {
            "injected": {}, "retries": 0, "retries_exhausted": 0,
            "backoff_seconds": 0.0, "latency_seconds": 0.0, "dropouts": 0,
        }
        faults = getattr(self, "faults", None)
        if faults is not None:
            stats.update(faults.stats.snapshot())
        stats["demotions"] = len(getattr(self, "demotions", ()))
        stats["degraded_steps"] = int(getattr(self, "degraded_steps", 0))
        return stats

    def arena_stats(self) -> ArenaStats:
        """Process-wide scratch-arena accounting (see :mod:`repro.memory`).

        Arenas are per-worker-thread and shared by every engine in the
        process, so this is a process aggregate, not a per-engine ledger;
        its ``allocations`` counter going flat across steps is the
        zero-steady-state-allocation invariant.
        """
        return aggregate_arena_stats()

    # ------------------------------------------------------------------
    # step driver: wall-clock timing, health signals, incident capture
    # ------------------------------------------------------------------
    def _run_step(self, batches: Sequence[Sequence[np.ndarray]]
                  ) -> "StepResult":
        """Run one step via the engine's ``_step_impl`` under the
        health/flight envelope.

        Crashes (any exception escaping the step) are captured as an
        incident — alert event in the ring, then an automatic dump —
        *before* re-raising, so the flight recorder's last entries show
        what was in flight.  Successful steps feed the health monitor
        and evaluate the SLO rules.
        """
        begin = time.perf_counter()
        try:
            result = self._step_impl(batches)
        except BaseException as exc:
            self._record_incident(
                "engine_exception",
                key=f"engine_exception:{type(exc).__name__}",
                message=(f"unhandled {type(exc).__name__} escaped the "
                         f"train step: {exc}"),
                error=f"{type(exc).__name__}: {exc}")
            raise
        self._observe_step(result, time.perf_counter() - begin)
        return result

    def _record_incident(self, kind: str, key: str, message: str,
                         severity: str = "critical",
                         **attrs: object) -> Alert:
        """A synthetic (non-rule) alert: dropout, crash, retry budget.

        Records the alert into the flight ring first, then dumps — so
        the dump's tail contains both the triggering fault event and
        the alert itself.
        """
        alert = Alert(rule=kind, signal=kind, value=1.0,
                      severity=severity, message=message,
                      step=self.step_count, kind="incident")
        self.alerts.append(alert)
        flight.record_event("alert", kind, severity=severity,
                            message=message, step=self.step_count,
                            incident=key, **attrs)
        telemetry.counter("health_alerts_total", rule=kind,
                          severity=severity)
        if self._incidents is not None:
            self._incidents.dump_once(key, reason=kind,
                                      step=self.step_count)
        return alert

    def _observe_step(self, result: "StepResult", wall: float) -> None:
        """Feed one finished step into the health monitor + SLO rules."""
        faults = self.fault_stats()
        prev = self._fault_snapshot
        self._fault_snapshot = faults
        arena = aggregate_arena_stats()
        arena_prev = self._arena_snapshot
        self._arena_snapshot = arena
        checkouts_delta = arena.checkouts - arena_prev.checkouts
        alloc_delta = arena.allocations - arena_prev.allocations
        hit_rate = (1.0 - alloc_delta / checkouts_delta
                    if checkouts_delta else 1.0)
        signals: Dict[str, float] = {
            "steps_per_s": 1.0 / wall if wall > 0.0 else 0.0,
            "step_seconds": wall,
            "loss": result.loss,
            "loss_finite": 1.0 if math.isfinite(result.loss) else 0.0,
            "grad_norm": result.grad_norm,
            "overflow_step": 1.0 if result.overflow else 0.0,
            "retries_step": float(faults["retries"] - prev["retries"]),
            "backoff_s_step": float(faults["backoff_seconds"]
                                    - prev["backoff_seconds"]),
            "dropouts_step": float(faults["dropouts"] - prev["dropouts"]),
            "degraded_steps": float(faults["degraded_steps"]),
            "arena_hit_rate": hit_rate,
        }
        signals.update(self._utilization_signals())
        self.health.observe(**signals)
        flight.record_event(
            "step", "train_step", step=result.step, loss=result.loss,
            steps_per_s=signals["steps_per_s"],
            overflow=result.overflow)
        for alert in self.rules.evaluate(self.health, step=result.step):
            self.alerts.append(alert)
            flight.record_event("alert", alert.rule,
                                severity=alert.severity,
                                signal=alert.signal, value=alert.value,
                                message=alert.message, step=alert.step)
            telemetry.counter("health_alerts_total", rule=alert.rule,
                              severity=alert.severity)
            if self._incidents is not None:
                self._incidents.dump_once(f"rule:{alert.rule}",
                                          reason="slo-breach",
                                          rule=alert.rule,
                                          step=result.step)

    def _utilization_signals(self) -> Dict[str, float]:
        """Per-resource ``util:*`` signals from this step's spans.

        Only meaningful when a telemetry session is active: the spans
        recorded since the previous observation are one step's worth,
        and attributing them yields host-link / per-CSD utilization.
        """
        session = telemetry.active()
        if session is None:
            return {}
        spans = session.tracer.spans
        cursor = self._span_cursor
        fresh = spans[cursor:]
        self._span_cursor = cursor + len(fresh)
        if not fresh:
            return {}
        try:
            attribution = telemetry.attribute_spans(fresh)
        except Exception:
            # Health sampling must never kill training; a window that
            # does not attribute (no phase spans, odd nesting) is
            # simply skipped.
            return {}
        return {f"util:{name}": usage.utilization
                for name, usage in attribution.usage.items()}

    def health_summary(self) -> Dict[str, object]:
        """Signals, alerts, and flight-recorder state in one dict."""
        return {
            "signals": self.health.snapshot(),
            "alerts": [alert.to_dict() for alert in self.alerts],
            "flight": self.flight.stats() if self.flight else None,
            "dumps": self.flight_dumps(),
        }

    def flight_dumps(self) -> List[str]:
        """Paths of the automatic incident dumps written so far."""
        return self._incidents.paths if self._incidents is not None \
            else []

    def _teardown_flight(self) -> None:
        """Uninstall this engine's recorder (idempotent, close paths)."""
        if self.flight is not None:
            flight.replace(self.flight, self._flight_previous)
            self._flight_previous = None

    # ------------------------------------------------------------------
    # learning-rate scheduling
    # ------------------------------------------------------------------
    def set_lr_schedule(self, schedule: Callable[[int], float]) -> None:
        """Drive ``optimizer.lr`` from ``schedule(step)`` (1-based steps).

        Every engine applies the schedule identically, so scheduled runs
        keep the cross-engine bit-identity guarantees.
        """
        self._lr_schedule = schedule

    def _apply_lr_schedule(self) -> None:
        if self._lr_schedule is not None:
            self.optimizer.lr = float(self._lr_schedule(self.step_count))

    def forward_backward(self, batch: Sequence[np.ndarray]
                         ) -> Tuple[float, np.ndarray, float, bool]:
        """One scaled forward/backward pass.

        Returns ``(loss, flat_unscaled_grads, grad_norm, overflow)``; on
        overflow the gradients are unusable and the step must be skipped.
        Clipping is applied in place when no overflow occurred.
        """
        self.model.zero_grad()
        with self._activation_scope():
            loss = self.loss_fn(self.model, *batch)
            # Overflow in the scaled backward pass is the signal the loss
            # scaler exists to catch; silence numpy's warning for it.
            with np.errstate(over="ignore", invalid="ignore"):
                scaled = loss * float(self.scaler.scale)
                scaled.backward()
                flat_grads = self.space.gather_grads()
                flat_grads *= np.float32(1.0 / self.scaler.scale)
        overflow = has_overflow([flat_grads])
        norm = 0.0
        if not overflow:
            norm = clip_gradients([flat_grads], self.config.grad_clip)
        return float(loss.item()), flat_grads, norm, overflow

    def forward_backward_many(self, batches: Sequence[Sequence[np.ndarray]]
                              ) -> Tuple[float, np.ndarray, float, bool]:
        """Gradient accumulation over micro-batches.

        Runs forward/backward per micro-batch, averages the unscaled
        gradients, then applies the NaN/Inf scan and clipping once on the
        combined gradient — matching large-batch semantics.
        """
        if not batches:
            raise TrainingError("need at least one micro-batch")
        total_loss = 0.0
        combined: Optional[np.ndarray] = None
        overflow = False
        for batch in batches:
            self.model.zero_grad()
            with self._activation_scope():
                loss = self.loss_fn(self.model, *batch)
                with np.errstate(over="ignore", invalid="ignore"):
                    scaled = loss * float(self.scaler.scale)
                    scaled.backward()
                    flat = self.space.gather_grads()
                    flat *= np.float32(1.0 / self.scaler.scale)
            total_loss += float(loss.item())
            overflow = overflow or has_overflow([flat])
            combined = flat if combined is None else combined + flat
        combined *= np.float32(1.0 / len(batches))
        norm = 0.0
        if not overflow:
            norm = clip_gradients([combined], self.config.grad_clip)
        return total_loss / len(batches), combined, norm, overflow


class BaselineOffloadEngine(MixedPrecisionTrainer):
    """ZeRO-Infinity-style baseline: RAID0 storage + CPU update."""

    def __init__(self, model: Module, loss_fn: LossFn, storage_dir: str,
                 num_ssds: Optional[int] = None,
                 config: Optional[TrainingConfig] = None) -> None:
        config = fold_deprecated_kwarg(
            config or TrainingConfig(), "num_ssds", num_ssds,
            "raid_members", "BaselineOffloadEngine")
        super().__init__(model, loss_fn, config)
        num_ssds = config.raid_members
        if num_ssds < 1:
            raise TrainingError("need at least one SSD")
        # The baseline's update loop is inherently sequential, but the
        # knob is still validated here so a typo'd backend fails loudly
        # on every engine, not just the parallel ones.
        from .parallel import resolve_backend
        resolve_backend(config.parallel_backend, 1)
        os.makedirs(storage_dir, exist_ok=True)
        self.faults = make_fault_injector(config)
        self._closed = False
        self.volume: Optional[RAID0Volume] = None
        try:
            self._init_activation_offload(storage_dir)
        except BaseException:
            self._teardown_flight()
            raise

        # Open members one by one so a failure mid-construction can
        # release every device already opened (no leaked descriptors).
        members: List[FileBlockDevice] = []
        try:
            total = self.space.total_elements
            words = 2 + self.optimizer.states_per_param  # grads + states
            per_member = (4 * total * words // num_ssds) + (1 << 20)
            for i in range(num_ssds):
                site = (self.faults.site(i)
                        if self.faults is not None else None)
                members.append(FileBlockDevice(
                    os.path.join(storage_dir, f"ssd{i}.img"), per_member,
                    name=f"ssd{i}", fault_site=site))
            self.volume = RAID0Volume(members,
                                      chunk_bytes=config.raid_chunk_bytes)
            self.store = TensorStore(self.volume)
            self.meter = TrafficMeter()

            self._state_names = self.optimizer.state_names
            self.store.allocate("master_params", total)
            self.store.allocate("grads", total)
            for name in self._state_names:
                self.store.allocate(name, total)

            # Initial placement: masters = init weights, moments = zero;
            # the FP16 working copy is what the model computes with.
            # Placement is setup traffic, outside the fault domain.
            with fault_bypass(self.faults):
                masters = self.space.gather_params()
                self.store.write_array("master_params", masters)
                zero = np.zeros(total, dtype=np.float32)
                for name in self._state_names:
                    self.store.write_array(name, zero)
            self.space.install_fp16_params(masters)
        except BaseException:
            for member in members:
                member.close()
            self._closed = True
            self._teardown_flight()
            self._close_spill()
            raise

    # ------------------------------------------------------------------
    def train_step(self, *batch: np.ndarray) -> StepResult:
        """One full iteration: forward, backward+offload, CPU update."""
        return self._run_step([batch])

    def train_step_accumulated(
            self, batches: Sequence[Sequence[np.ndarray]]) -> StepResult:
        """One iteration with gradient accumulation over micro-batches."""
        return self._run_step([tuple(batch) for batch in batches])

    def _step_impl(self, batches: Sequence[Sequence[np.ndarray]]
                   ) -> StepResult:
        with telemetry.trace_span("iteration", engine="baseline",
                                  schedule=self.schedule) as span:
            self.meter.begin_iteration()
            with telemetry.trace_span("forward_backward"):
                if len(batches) == 1:
                    loss, flat_grads, norm, overflow = \
                        self.forward_backward(batches[0])
                else:
                    loss, flat_grads, norm, overflow = \
                        self.forward_backward_many(batches)

            if self.schedule == "interleaved":
                return self._finish_interleaved(span, loss, flat_grads,
                                                norm, overflow)

            # Gradient offload happens during backward, before the overflow
            # verdict is known (the real engine streams them out eagerly).
            with telemetry.trace_span("grad_offload"):
                with telemetry.trace_span("grad_offload.write",
                                          resource="host-link-down",
                                          nbytes=4 * flat_grads.size):
                    self.store.write_array("grads", flat_grads)
                self.meter.add_host_write(4 * flat_grads.size)

            proceed = self.scaler.update(overflow)
            if proceed:
                self.step_count += 1
                self._apply_lr_schedule()
                with telemetry.trace_span("update"):
                    self._cpu_update()
            traffic = self.meter.end_iteration()
            self.loss_history.append(loss)
            span.set(step=self.step_count, loss=loss, overflow=overflow,
                     host_reads=traffic.host_reads,
                     host_writes=traffic.host_writes)
        return StepResult(step=self.step_count, loss=loss, grad_norm=norm,
                          overflow=overflow, traffic=traffic)

    def _finish_interleaved(self, span, loss: float,
                            flat_grads: np.ndarray, norm: float,
                            overflow: bool) -> StepResult:
        """Interleaved tail of a step: per-block offload+update chains.

        The overflow verdict is known before any offload I/O starts (the
        scaler only reads the backward's NaN scan), so each block's
        gradient write can be chained immediately with that block's CPU
        update instead of waiting for the whole-array offload barrier.
        Per-block I/O ops hit the same offsets with the same bytes in
        the same relative order as the phased path, so results (and
        fault op-counting per device) are bit-identical.
        """
        proceed = self.scaler.update(overflow)
        if proceed:
            self.step_count += 1
            self._apply_lr_schedule()
        total = self.space.total_elements
        size = self.config.subgroup_elements
        names = self._state_names
        with telemetry.trace_span("interleaved_update", proceed=proceed):
            with scratch_buffers(min(size, total), 2 + len(names)) \
                    as blocks:
                for start in range(0, total, size):
                    count = min(size, total - start)
                    with telemetry.trace_span(
                            "grad_offload.block", start=start,
                            resource="host-link-down", nbytes=4 * count):
                        self.store.write_slice(
                            "grads", start, flat_grads[start:start + count])
                    self.meter.add_host_write(4 * count)
                    if proceed:
                        self._update_block(start, count, blocks)
        traffic = self.meter.end_iteration()
        self.loss_history.append(loss)
        span.set(step=self.step_count, loss=loss, overflow=overflow,
                 host_reads=traffic.host_reads,
                 host_writes=traffic.host_writes)
        return StepResult(step=self.step_count, loss=loss, grad_norm=norm,
                          overflow=overflow, traffic=traffic)

    def _cpu_update(self) -> None:
        """Block-wise upload -> AVX update -> offload (Fig. 4a).

        Every block reuses one set of arena scratch buffers: the store
        reads land directly in them (:meth:`TensorStore.read_slice_into`),
        the fused optimizer updates them in place, and the same views are
        written back — zero per-block ndarray allocation at steady state.
        """
        total = self.space.total_elements
        size = self.config.subgroup_elements
        names = self._state_names
        with scratch_buffers(min(size, total), 2 + len(names)) as blocks:
            for start in range(0, total, size):
                count = min(size, total - start)
                self._update_block(start, count, blocks)

    def _update_block(self, start: int, count: int, blocks) -> None:
        """One block's upload -> update -> offload against the scratch
        buffers (shared by the phased and interleaved schedules)."""
        names = self._state_names
        with telemetry.trace_span("cpu_update.block", start=start,
                                  elements=count,
                                  resource="host-cpu"):
            grads = self.store.read_slice_into(
                "grads", start, count, blocks[0])
            masters = self.store.read_slice_into(
                "master_params", start, count, blocks[1])
            state = {
                name: self.store.read_slice_into(
                    name, start, count, block)
                for name, block in zip(names, blocks[2:])
            }
            self.meter.add_host_read(4 * count * (2 + len(names)))

            self.optimizer.step(masters, grads, state, self.step_count)

            self.store.write_slice("master_params", start, masters)
            for name in names:
                self.store.write_slice(name, start, state[name])
            self.meter.add_host_write(4 * count * (1 + len(names)))

            # Refresh the FP16 working copy from the updated masters.
            self.space.install_fp16_slice(start, masters)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._teardown_flight()
        self._close_spill()
        if self.volume is not None:
            self.volume.close()

    def __enter__(self) -> "BaselineOffloadEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
