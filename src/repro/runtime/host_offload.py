"""Host-memory offloaded training (the ZeRO-Offload substrate, §II).

Before storage offloading, the intermediate point in the memory hierarchy
is host DRAM: FP32 optimizer states live in pinned host memory and the
CPU executes the update, with no storage involved.  The paper builds on
this lineage ([90], [98]); this engine implements it as the third member
of the engine family, sharing the same mixed-precision forward/backward,
so all three can be compared on identical footing:

* :class:`HostOffloadEngine` — states in host DRAM, CPU update, zero
  storage traffic (but the whole model must fit in host memory);
* :class:`~repro.runtime.engine.BaselineOffloadEngine` — states on
  RAID0 storage, CPU update (ZeRO-Infinity);
* :class:`~repro.runtime.smart.SmartInfinityEngine` — states on CSDs,
  near-storage FPGA update.

Training through this engine is bit-identical to both of the others (the
update arithmetic is the same flat element-wise step), which the tests
assert — the whole engine family computes one trajectory.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import telemetry
from ..errors import TrainingError
from ..memory import SEGMENT_ALIGN, SharedMemoryArena, size_class
from ..nn.modules import Module
from ..telemetry import flight
from .engine import (LossFn, MixedPrecisionTrainer, StepResult,
                     TrainingConfig)
from .interleave import InterleavedScheduler
from .parallel import (CSDWorkerPool, ProcessCSDWorkerPool,
                       resolve_backend, resolve_workers)
from .stats import TrafficMeter


class HostOffloadEngine(MixedPrecisionTrainer):
    """ZeRO-Offload-style training: optimizer states in host memory."""

    def __init__(self, model: Module, loss_fn: LossFn,
                 config: Optional[TrainingConfig] = None,
                 host_memory_bytes: Optional[int] = None) -> None:
        from .engine import fold_deprecated_kwarg
        config = fold_deprecated_kwarg(
            config or TrainingConfig(), "host_memory_bytes",
            host_memory_bytes, "host_memory_bytes", "HostOffloadEngine")
        super().__init__(model, loss_fn, config)
        self._closed = False
        host_memory_bytes = config.host_memory_bytes
        total = self.space.total_elements
        states_bytes = 4 * total * self.optimizer.states_per_param
        if host_memory_bytes is not None and states_bytes > \
                host_memory_bytes:
            self._teardown_flight()
            raise TrainingError(
                f"optimizer states need {states_bytes} B but host memory "
                f"is {host_memory_bytes} B — this is exactly the wall "
                "storage-offloaded training exists to break")
        self.meter = TrafficMeter()
        # No storage directory here, so activation_offload=auto resolves
        # to recompute (and explicit spill is rejected loudly).
        try:
            self._init_activation_offload(None)
        except BaseException:
            self._teardown_flight()
            raise
        # Update blocks are the shard analogue here: disjoint flat
        # slices of host-resident state, so they fan out over the same
        # worker pool the CSD engine uses.
        num_blocks = -(-total // config.subgroup_elements)
        self.workers = resolve_workers(config.parallel_csds, num_blocks)
        self.backend = resolve_backend(config.parallel_backend,
                                       self.workers)
        self._interleave: Optional[InterleavedScheduler] = None
        self._arena: Optional[SharedMemoryArena] = None
        self._layout: Optional[dict] = None
        self._grads_shm: Optional[np.ndarray] = None
        if self.backend == "process":
            # Masters, moments and the per-step gradient vector live in
            # one shared-memory arena, so worker processes update their
            # blocks in place; the pipe carries only (start, stop, step,
            # lr) and the constant layout descriptor.
            names = self.optimizer.state_names
            rows = 3 + len(names)  # masters + grads + states
            capacity = rows * (4 * size_class(total) + 2 * SEGMENT_ALIGN)
            self._arena = SharedMemoryArena(capacity, name="host-shards")
            self._masters = self._arena.acquire(total)
            np.copyto(self._masters, self.space.gather_params())
            init = self.optimizer.init_state(total)
            self._state = {}
            for name in names:
                view = self._arena.acquire(total)
                np.copyto(view, init[name])
                self._state[name] = view
            self._grads_shm = self._arena.acquire(total)
            regions = {"masters": self._masters, "grads": self._grads_shm,
                       **{f"state:{name}": view
                          for name, view in self._state.items()}}
            self._layout = {
                "segment": self._arena.segment.descriptor(),
                "optimizer": config.optimizer,
                "optimizer_kwargs": dict(config.optimizer_kwargs),
                "regions": {
                    name: (self._arena.offset_of(view), int(view.size),
                           view.dtype.str)
                    for name, view in regions.items()},
            }
            self._pool = ProcessCSDWorkerPool(self.workers,
                                              name_prefix="host-proc")
        else:
            self._masters = self.space.gather_params()
            self._state = self.optimizer.init_state(total)
            self._pool = CSDWorkerPool(self.workers,
                                       name_prefix="host-worker")
            if self.schedule == "interleaved":
                self._interleave = InterleavedScheduler(self._pool)
        self.space.install_fp16_params(self._masters)

    def train_step(self, *batch: np.ndarray) -> StepResult:
        """One iteration: fw/bw on the GPU, CPU update in host memory."""
        return self._run_step([batch])

    def train_step_accumulated(self, batches) -> StepResult:
        """One iteration with gradient accumulation over micro-batches."""
        return self._run_step([tuple(batch) for batch in batches])

    def _step_impl(self, batches) -> StepResult:
        with telemetry.trace_span("iteration", engine="host") as span:
            self.meter.begin_iteration()
            with telemetry.trace_span("forward_backward"):
                if len(batches) == 1:
                    loss, flat_grads, norm, overflow = \
                        self.forward_backward(batches[0])
                else:
                    loss, flat_grads, norm, overflow = \
                        self.forward_backward_many(batches)
            proceed = self.scaler.update(overflow)
            if proceed:
                self.step_count += 1
                self._apply_lr_schedule()
                # There is no offload phase to hide the update inside
                # here; the interleaved schedule routes the blocks
                # through the ready-queue scheduler (submission-ordered
                # with bounded in-flight window) under its own phase
                # span, keeping the two schedules attributable apart.
                span_name = ("interleaved_update"
                             if self.schedule == "interleaved"
                             else "update")
                with telemetry.trace_span(span_name):
                    with telemetry.trace_span("host_update",
                                              resource="host-cpu"):
                        self._cpu_update(flat_grads)
            traffic = self.meter.end_iteration()
            self.loss_history.append(loss)
            span.set(step=self.step_count, loss=loss, overflow=overflow)
        return StepResult(step=self.step_count, loss=loss, grad_norm=norm,
                          overflow=overflow, traffic=traffic)

    def _cpu_update(self, flat_grads: np.ndarray) -> None:
        """Block-wise CPU update over the host-resident states.

        Blocks touch disjoint slices of the masters/state/gradient
        vectors and install disjoint flat ranges (serialized by the
        parameter space's writer lock), so they run concurrently on the
        worker pool — bit-identically to the sequential loop, since the
        update is element-wise.

        The fused optimizer stages its temporaries in each worker
        thread's private arena (:func:`repro.memory.thread_arena`), so a
        steady-state update pass allocates no ndarrays at all.
        """
        total = self.space.total_elements
        size = self.config.subgroup_elements
        if self._arena is not None:
            self._cpu_update_process(flat_grads, total, size)
            return

        def update_block(start: int) -> None:
            stop = min(start + size, total)
            chunk_state = {name: buf[start:stop]
                           for name, buf in self._state.items()}
            self.optimizer.step(self._masters[start:stop],
                                flat_grads[start:stop], chunk_state,
                                self.step_count)
            self.space.install_fp16_slice(start,
                                          self._masters[start:stop])

        if self._interleave is not None:
            self._interleave.run(update_block, range(0, total, size))
        else:
            self._pool.map_ordered(update_block, range(0, total, size))

    def _cpu_update_process(self, flat_grads: np.ndarray, total: int,
                            size: int) -> None:
        """Process-backend update: blocks mutate shared memory in place.

        The gradient vector is published through the arena once, each
        worker process updates its disjoint ``[start, stop)`` slices of
        the shared masters/states, and the parent refreshes the FP16
        working copy once at the end — bit-identical to the per-block
        installs, since only the final masters matter.
        """
        from .procworker import _host_update_task, ingest_response

        np.copyto(self._grads_shm, flat_grads)
        spans_on = telemetry.enabled()
        flight_on = flight.active_recorder() is not None
        tasks = [{
            "start": start, "stop": min(start + size, total),
            "step": self.step_count, "lr": float(self.optimizer.lr),
            "layout": self._layout, "spans": spans_on,
            "flight": flight_on,
        } for start in range(0, total, size)]
        for resp in self._pool.map_ordered(_host_update_task, tasks):
            ingest_response(resp)
        self.space.install_fp16_params(self._masters)

    def state_arrays(self) -> Sequence[np.ndarray]:
        """The host-resident optimizer state (for inspection/tests)."""
        return [self._masters] + [self._state[name]
                                  for name in self.optimizer.state_names]

    def close(self) -> None:
        """Release the worker pool (no storage to close). Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._teardown_flight()
        self._pool.close()
        if self._arena is not None:
            self._arena.close()

    def __enter__(self) -> "HostOffloadEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
