"""Interconnect traffic accounting and Table I verification helpers.

The paper's Table I states per-iteration traffic through the shared system
interconnect, in units of M (the FP16 model size, 2 bytes/parameter):

==============  =================  ==================
method          SSD read           SSD write
==============  =================  ==================
ZeRO-Inf        6M (opt) + 2M (g)  6M (opt) + 2M (g)
SmartUpdate     2M (params up)     2M (gradients)
SmartComp(c%)   2M (params up)     c% x 2M (gradients)
==============  =================  ==================

The functional engines meter every byte they move across the host path, and
the tests check those meters against these closed forms exactly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import TrainingError


@dataclass
class IterationTraffic:
    """Host-interconnect bytes of one training iteration."""

    host_reads: int = 0
    host_writes: int = 0
    internal_reads: int = 0
    internal_writes: int = 0

    @property
    def host_total(self) -> int:
        return self.host_reads + self.host_writes

    @property
    def internal_total(self) -> int:
        return self.internal_reads + self.internal_writes


@dataclass
class TrafficMeter:
    """Accumulates traffic per iteration across all devices.

    Thread-safe: the engines fan per-CSD offload/update work across a
    worker pool, so ``add_*`` may fire concurrently from several threads.
    A lock serializes the read-modify-write of each counter; because
    byte-count addition is commutative, parallel execution meters exactly
    the same totals as the sequential loop (asserted in tests).
    ``begin_iteration``/``end_iteration`` stay main-thread calls that
    delimit the fan-out, never overlapping it.
    """

    iterations: List[IterationTraffic] = field(default_factory=list)
    _current: IterationTraffic = field(default_factory=IterationTraffic)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def begin_iteration(self) -> None:
        with self._lock:
            self._current = IterationTraffic()

    def end_iteration(self) -> IterationTraffic:
        with self._lock:
            self.iterations.append(self._current)
            return self._current

    @property
    def current(self) -> IterationTraffic:
        return self._current

    def add_host_read(self, nbytes: int) -> None:
        with self._lock:
            self._current.host_reads += nbytes

    def add_host_write(self, nbytes: int) -> None:
        with self._lock:
            self._current.host_writes += nbytes

    def add_internal_read(self, nbytes: int) -> None:
        with self._lock:
            self._current.internal_reads += nbytes

    def add_internal_write(self, nbytes: int) -> None:
        with self._lock:
            self._current.internal_writes += nbytes


def expected_traffic(num_params: int, method: str,
                     states_per_param: int = 3,
                     compression_ratio: float = 0.02,
                     shard_sizes: Optional[List[int]] = None
                     ) -> Dict[str, int]:
    """Closed-form Table I traffic in bytes per iteration.

    ``states_per_param`` is 3 for Adam (master, momentum, variance -> 6M in
    the paper's M units) and 2 for SGD-momentum/AdaGrad (4M).  ``method``
    is one of ``baseline`` / ``smartupdate`` / ``smartcomp``.  For
    SmartComp, compression runs per CSD shard, so pass ``shard_sizes`` to
    get the exact kept-element arithmetic the engine performs.
    """
    opt = 4 * states_per_param * num_params  # 6M for Adam
    grads = 4 * num_params                   # 2M (fp32 gradients)
    masters_up = 4 * num_params              # 2M (fp32 masters upstream)
    if method == "baseline":
        return {"host_reads": opt + grads, "host_writes": opt + grads}
    if method == "smartupdate":
        return {"host_reads": masters_up, "host_writes": grads}
    if method == "smartcomp":
        from ..compression.topk import keep_count
        sizes = shard_sizes or [num_params]
        kept = sum(keep_count(size, compression_ratio) for size in sizes)
        return {"host_reads": masters_up, "host_writes": 8 * kept}
    raise TrainingError(f"unknown method {method!r}")
