"""Checkpointing for the offload engines.

Fine-tuning jobs (the paper's §VII-J use case) need durable state: the
FP32 masters, the optimizer moments, the loss-scaler state and the step
counter.  A checkpoint taken from any engine restores into any other —
the engines share one flat state layout — so a run can start on the
baseline and resume under Smart-Infinity, bit-identically (tested).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import TrainingError

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def _gather_state(engine) -> Dict[str, np.ndarray]:
    """Flat masters + moments from any engine, by duck typing.

    Checkpoint I/O is maintenance traffic (outside the fault domain), and
    a demoted device's shard is gathered from its host-resident copy —
    checkpointing keeps working after graceful degradation, which is
    exactly when a checkpoint matters most.
    """
    state_names = engine.optimizer.state_names
    if hasattr(engine, "gather_state_arrays"):  # SmartInfinityEngine
        # The engine owns its shard layout (thread-mode device stores or
        # process-mode shared-memory channels), so the gather lives
        # there; both backends produce the same flat arrays.
        return engine.gather_state_arrays()
    if hasattr(engine, "store"):            # BaselineOffloadEngine
        out = {"master_params": engine.store.read_array("master_params")}
        for name in state_names:
            out[name] = engine.store.read_array(name)
        return out
    if hasattr(engine, "_masters"):         # HostOffloadEngine
        out = {"master_params": engine._masters.copy()}
        for name in state_names:
            out[name] = engine._state[name].copy()
        return out
    raise TrainingError(f"cannot checkpoint engine {type(engine)!r}")


def _scatter_state(engine, arrays: Dict[str, np.ndarray]) -> None:
    """Write flat masters + moments back into an engine's storage."""
    state_names = engine.optimizer.state_names
    if hasattr(engine, "scatter_state_arrays"):  # SmartInfinityEngine
        engine.scatter_state_arrays(arrays)
        return
    if hasattr(engine, "store"):
        engine.store.write_array("master_params",
                                 arrays["master_params"])
        for name in state_names:
            engine.store.write_array(name, arrays[name])
        return
    if hasattr(engine, "_masters"):
        engine._masters[:] = arrays["master_params"]
        for name in state_names:
            engine._state[name][:] = arrays[name]
        return
    raise TrainingError(f"cannot restore engine {type(engine)!r}")


def save_checkpoint(engine, path: str) -> None:
    """Persist an engine's full training state to ``path`` (.npz)."""
    arrays = _gather_state(engine)
    np.savez(
        path,
        format_version=FORMAT_VERSION,
        step_count=engine.step_count,
        loss_scale=engine.scaler.scale,
        skipped_steps=engine.scaler.skipped_steps,
        optimizer=engine.config.optimizer,
        num_params=engine.num_params,
        **arrays,
    )


def load_checkpoint(engine, path: str) -> None:
    """Restore an engine from a checkpoint written by any engine.

    Validates the optimizer family and parameter count, restores masters,
    moments, scaler and step counter, and refreshes the FP16 working copy
    so the next forward uses the restored weights.
    """
    with np.load(path, allow_pickle=False) as data:
        if int(data["format_version"]) != FORMAT_VERSION:
            raise TrainingError(
                f"unsupported checkpoint version "
                f"{int(data['format_version'])}")
        if str(data["optimizer"]) != engine.config.optimizer:
            raise TrainingError(
                f"checkpoint is for optimizer {data['optimizer']!r}, "
                f"engine uses {engine.config.optimizer!r}")
        if int(data["num_params"]) != engine.num_params:
            raise TrainingError(
                f"checkpoint has {int(data['num_params'])} parameters, "
                f"engine has {engine.num_params}")
        arrays = {"master_params": data["master_params"]}
        for name in engine.optimizer.state_names:
            if name not in data:
                raise TrainingError(f"checkpoint missing state {name!r}")
            arrays[name] = data[name]
        if "ef_residual" in data:
            arrays["ef_residual"] = data["ef_residual"]
        _scatter_state(engine, arrays)
        engine.step_count = int(data["step_count"])
        engine.scaler.scale = float(data["loss_scale"])
        engine.scaler.skipped_steps = int(data["skipped_steps"])
    working = arrays["master_params"].copy()
    mask = getattr(engine, "pruning_mask", None)
    if mask is not None:
        mask.apply(working)
    engine.space.install_fp16_params(working)
