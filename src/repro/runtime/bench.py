"""Wall-clock benchmark harness: sequential vs thread-pooled multi-CSD.

The DES (``repro.perf``) predicts Fig. 11's near-linear multi-CSD
scaling; this harness measures whether the *functional* engines move the
same direction in real wall-clock time.  It trains the same workload
through :class:`~repro.runtime.smart.SmartInfinityEngine` at several CSD
counts, sequential (``workers=1``) vs thread-pooled
(``workers=num_csds``), and records steps/s, traffic, and a parameter
checksum (parallel must be bit-identical to sequential — the benchmark
re-verifies what the property tests assert).

It also quantifies the SmartComp compressed-stream cache: the stream is
read over the internal path once per device per update pass, where the
pre-cache engine re-read the whole O(kept) stream for every subgroup.

Results land in ``BENCH_parallel.json`` (see ``python -m repro bench``).
Interpretation note: thread-pooling CPU-bound numpy work only beats the
sequential loop when the host has cores to run it on; the report embeds
``cpu_count``/``usable_cpus`` so a 1-core container's numbers are not
mistaken for a scaling refutation.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..api import create_engine
from ..compression.topk import keep_count
from ..faults import FaultPlan
from ..memory import aggregate_arena_stats
from ..nn import SequenceClassifier, bert_config
from ..telemetry.critpath import DepGraph, condense
from .engine import TrainingConfig
from .parallel import resolve_backend, usable_cpus

#: Schema marker so downstream tooling can detect format changes.
SCHEMA = "smart-infinity/bench-parallel/v1"


@dataclass(frozen=True)
class BenchWorkload:
    """One benchmark configuration (model + step counts)."""

    dim: int
    num_layers: int
    vocab_size: int
    seq_len: int
    batch: int
    subgroup_elements: int
    kernel_chunk_elements: int
    steps: int
    warmup_steps: int = 1

    def make_model(self, seed: int = 0) -> SequenceClassifier:
        return SequenceClassifier(
            bert_config(vocab_size=self.vocab_size, dim=self.dim,
                        num_layers=self.num_layers, num_heads=2,
                        max_seq_len=self.seq_len),
            num_classes=2, seed=seed)

    def make_batch(self, seed: int = 0):
        rng = np.random.default_rng(seed)
        tokens = rng.integers(0, self.vocab_size,
                              size=(self.batch, self.seq_len))
        labels = rng.integers(0, 2, size=self.batch)
        return tokens, labels


#: Small enough for a CI smoke step / the tier-1 CLI test.
QUICK_WORKLOAD = BenchWorkload(
    dim=32, num_layers=1, vocab_size=64, seq_len=16, batch=2,
    subgroup_elements=4096, kernel_chunk_elements=4096, steps=2)

#: Update-dominated: a small forward pass driving ~1M parameters of
#: optimizer work, so the per-CSD fan-out is what the clock sees.
FULL_WORKLOAD = BenchWorkload(
    dim=160, num_layers=2, vocab_size=4096, seq_len=32, batch=2,
    subgroup_elements=1 << 16, kernel_chunk_elements=1 << 14, steps=4)


@dataclass
class BenchRun:
    """Measured outcome of one (num_csds, workers) configuration."""

    num_csds: int
    workers: int
    #: Execution backend the run used (``thread`` or ``process``) —
    #: sequential references always run ``thread`` so a process-backend
    #: comparison is apples (fan-out) to oranges (same-thread loop).
    backend: str
    steps: int
    wall_seconds: float
    steps_per_second: float
    host_read_bytes: int
    host_write_bytes: int
    internal_read_bytes: int
    internal_write_bytes: int
    param_checksum: str
    faults: Optional[Dict[str, object]] = None
    #: Condensed step-health view (alert count + key EWMA signals), or
    #: ``None`` when the flight recorder/health monitor was disabled.
    health: Optional[Dict[str, object]] = None
    #: Condensed critical path of one *untimed* probe step traced after
    #: the timed loop (wall-clock spans -> dependency DAG), or ``None``
    #: when the probe produced no resource spans.  Probing outside the
    #: timed region keeps the regression gate's numbers untouched.
    critpath: Optional[Dict[str, object]] = None
    #: Execution schedule the run used (``phased`` or ``interleaved``).
    #: Recorded per run so the bench history never folds an interleaved
    #: run into a phased median baseline (they are different pipelines).
    schedule: str = "phased"
    #: Activation policy (``recompute``/``spill``/``auto``) — same
    #: fingerprint rationale as :attr:`schedule`.
    activation_offload: str = "recompute"


def _loss_fn(model, tokens, labels):
    return model.loss(tokens, labels)


def _checksum(params: np.ndarray) -> str:
    """Stable digest of the trained parameters (bit-identity witness)."""
    import hashlib
    return hashlib.sha256(params.tobytes()).hexdigest()[:16]


def _condense_health(summary: Dict[str, object]) -> Dict[str, object]:
    """Boil an engine health summary down to the bench-report essentials."""
    signals = summary["signals"]
    keep = ("steps_per_s", "loss", "arena_hit_rate", "retries_step",
            "dropouts_step")
    return {
        "alerts": len(summary["alerts"]),
        "alert_rules": sorted({a["rule"] for a in summary["alerts"]}),
        "signals": {name: round(signals[name]["ewma"], 6)
                    for name in keep if name in signals},
        "flight": summary.get("flight"),
    }


def _run_one(workload: BenchWorkload, num_csds: int, workers: int,
             fault_plan: Optional[FaultPlan] = None,
             flight: bool = True, backend: str = "thread",
             slo_rules: Optional[List[Dict]] = None,
             schedule: str = "phased",
             activation_offload: str = "recompute") -> BenchRun:
    config = TrainingConfig(
        optimizer="adam", optimizer_kwargs={"lr": 1e-3},
        subgroup_elements=workload.subgroup_elements,
        kernel_chunk_elements=workload.kernel_chunk_elements,
        parallel_csds=workers, num_csds=num_csds,
        parallel_backend=backend,
        schedule=schedule, activation_offload=activation_offload,
        fault_plan=fault_plan, flight_recorder=flight,
        slo_rules=slo_rules)
    resolved_backend = resolve_backend(backend, workers)
    tokens, labels = workload.make_batch()
    with tempfile.TemporaryDirectory(prefix="bench-csd") as workdir:
        with create_engine("smart", workload.make_model(), _loss_fn,
                           workdir, config=config) as engine:
            for _ in range(workload.warmup_steps):
                engine.train_step(tokens, labels)
            begin = time.perf_counter()
            for _ in range(workload.steps):
                engine.train_step(tokens, labels)
            wall = time.perf_counter() - begin
            timed = engine.meter.iterations[-workload.steps:]
            # One extra untimed step under a telemetry session gives the
            # wall-clock spans the critical-path probe chains.  Both the
            # sequential and the pooled run take it, so the bit-identity
            # checksum comparison below stays step-for-step aligned.
            with telemetry.session() as probe:
                engine.train_step(tokens, labels)
            graph = DepGraph.from_spans(probe.tracer.spans)
            critpath = (condense(graph.critical_path())
                        if graph.nodes else None)
            params = engine.space.gather_params()
            fault_stats = engine.fault_stats() if fault_plan else None
            health = _condense_health(engine.health_summary())
    return BenchRun(
        num_csds=num_csds, workers=workers, backend=resolved_backend,
        steps=workload.steps,
        wall_seconds=wall,
        steps_per_second=workload.steps / wall if wall > 0 else 0.0,
        host_read_bytes=sum(t.host_reads for t in timed),
        host_write_bytes=sum(t.host_writes for t in timed),
        internal_read_bytes=sum(t.internal_reads for t in timed),
        internal_write_bytes=sum(t.internal_writes for t in timed),
        param_checksum=_checksum(params),
        faults=fault_stats,
        health=health,
        critpath=critpath,
        schedule=schedule,
        activation_offload=activation_offload)


def _measure_smartcomp_cache(workload: BenchWorkload,
                             num_csds: int = 2,
                             ratio: float = 0.02) -> Dict[str, object]:
    """Per-iteration internal reads for SmartComp, vs the pre-cache cost.

    The cached engine reads each device's compressed stream once per
    update pass; before the cache, every subgroup re-read the full
    stream, costing ``subgroups x 8 x kept`` bytes instead of
    ``8 x kept``.  Both figures are reported so the saving is explicit.
    """
    config = TrainingConfig(
        optimizer="adam", optimizer_kwargs={"lr": 1e-3},
        subgroup_elements=workload.subgroup_elements,
        kernel_chunk_elements=workload.kernel_chunk_elements,
        compression_ratio=ratio, parallel_csds=1, num_csds=num_csds)
    tokens, labels = workload.make_batch()
    with tempfile.TemporaryDirectory(prefix="bench-comp") as workdir:
        with create_engine("smart", workload.make_model(), _loss_fn,
                           workdir, config=config) as engine:
            engine.train_step(tokens, labels)
            traffic = engine.meter.iterations[-1]
            extra_without_cache = 0
            for shard in engine.shards:
                kept = keep_count(shard.count, ratio)
                max_sub = min(config.subgroup_elements, shard.count)
                subgroups = -(-shard.count // max_sub)
                extra_without_cache += (subgroups - 1) * 8 * kept
    measured = traffic.internal_reads
    legacy = measured + extra_without_cache
    return {
        "num_csds": num_csds,
        "volume_ratio": ratio,
        "internal_read_bytes_per_iter": measured,
        "legacy_internal_read_bytes_per_iter": legacy,
        "saved_bytes_per_iter": extra_without_cache,
        "reduction_factor": legacy / measured if measured else 1.0,
    }


def run_parallel_bench(quick: bool = False,
                       out_path: Optional[str] = None,
                       csd_counts: Sequence[int] = (1, 2, 4),
                       steps: Optional[int] = None,
                       fault_plan: Optional[FaultPlan] = None,
                       flight: bool = True,
                       backend: str = "thread",
                       workers: Optional[int] = None,
                       slo_rules: Optional[List[Dict]] = None,
                       schedule: str = "phased",
                       activation_offload: str = "recompute",
                       ) -> Dict[str, object]:
    """Run the full benchmark matrix and (optionally) write the report.

    For each CSD count the sequential configuration (``workers=1``,
    always thread-backed) runs first, then — for counts above one — the
    pooled configuration with one worker per CSD on ``backend``
    (``thread``, ``process`` or ``auto``), or with ``workers`` workers
    when given.  Bit-identity between the two is checked here, not just
    in the test suite, so a published JSON is self-vouching.  Under a
    ``fault_plan`` the check still holds: fault streams are keyed per
    device, not per thread or process, so chaos is schedule-independent.
    ``slo_rules`` replaces the default SLO rule set on every run.

    ``schedule`` selects the phased or interleaved execution pipeline
    and ``activation_offload`` the boundary-activation policy; both are
    applied to every run in the matrix (sequential references included)
    and stamped into the report's environment fingerprint so the bench
    history never compares an interleaved trajectory against a phased
    baseline.
    """
    workload = QUICK_WORKLOAD if quick else FULL_WORKLOAD
    if steps is not None:
        if steps < 1:
            raise ValueError("steps must be positive")
        workload = BenchWorkload(**{**asdict(workload), "steps": steps})

    arena_before = aggregate_arena_stats()
    runs: List[BenchRun] = []
    speedups: Dict[str, Dict[str, float]] = {}
    for num_csds in csd_counts:
        sequential = _run_one(workload, num_csds, workers=1,
                              fault_plan=fault_plan, flight=flight,
                              slo_rules=slo_rules, schedule=schedule,
                              activation_offload=activation_offload)
        runs.append(sequential)
        if num_csds == 1:
            continue
        parallel = _run_one(workload, num_csds,
                            workers=workers or num_csds,
                            fault_plan=fault_plan, flight=flight,
                            backend=backend, slo_rules=slo_rules,
                            schedule=schedule,
                            activation_offload=activation_offload)
        runs.append(parallel)
        if parallel.param_checksum != sequential.param_checksum:
            raise AssertionError(
                f"parallel execution diverged from sequential at "
                f"{num_csds} CSDs: {parallel.param_checksum} != "
                f"{sequential.param_checksum}")
        speedups[str(num_csds)] = {
            "sequential_steps_per_s": sequential.steps_per_second,
            "parallel_steps_per_s": parallel.steps_per_second,
            "speedup": (parallel.steps_per_second
                        / sequential.steps_per_second
                        if sequential.steps_per_second else 0.0),
        }

    report: Dict[str, object] = {
        "schema": SCHEMA,
        "quick": quick,
        "flight_recorder": flight,
        "backend": resolve_backend(backend, max(csd_counts)),
        "environment": {
            "cpu_count": os.cpu_count() or 1,
            "usable_cpus": usable_cpus(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "schedule": schedule,
            "activation_offload": activation_offload,
        },
        "workload": asdict(workload),
        "runs": [asdict(run) for run in runs],
        "speedups": speedups,
        "smartcomp_cache": _measure_smartcomp_cache(workload),
        "arena": _arena_delta(arena_before),
    }
    if fault_plan is not None:
        report["fault_plan"] = fault_plan.to_dict()
    if out_path is not None:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    return report


def _arena_delta(before) -> Dict[str, object]:
    """Scratch-arena accounting over the benchmark (zero-copy witness).

    ``allocations`` counts cold-path ndarray allocations during the whole
    matrix; with warm buffer pools it stays a small fixed number per
    engine rather than growing with steps, and the hit rate shows how
    many checkouts the freelists served.
    """
    after = aggregate_arena_stats()
    checkouts = after.checkouts - before.checkouts
    allocations = after.allocations - before.allocations
    return {
        "checkouts": checkouts,
        "allocations": allocations,
        "hit_rate": (1.0 - allocations / checkouts) if checkouts else 1.0,
        "high_water_bytes": after.high_water_bytes,
    }


def render_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a benchmark report."""
    lines = []
    env = report["environment"]
    schedule = env.get("schedule", "phased")
    act = env.get("activation_offload", "recompute")
    pipeline = "" if schedule == "phased" and act == "recompute" else \
        f", {schedule} schedule/{act} activations"
    lines.append(f"wall-clock parallel bench "
                 f"({'quick' if report['quick'] else 'full'} workload, "
                 f"{report.get('backend', 'thread')} backend, "
                 f"{env['usable_cpus']} usable cpu(s){pipeline})")
    lines.append(f"{'csds':>5} {'workers':>8} {'backend':>8} "
                 f"{'steps/s':>10} {'wall s':>9}")
    for run in report["runs"]:
        lines.append(f"{run['num_csds']:>5} {run['workers']:>8} "
                     f"{run.get('backend', 'thread'):>8} "
                     f"{run['steps_per_second']:>10.2f} "
                     f"{run['wall_seconds']:>9.3f}")
    for csds, entry in sorted(report["speedups"].items()):
        lines.append(f"  {csds} CSDs: parallel vs sequential "
                     f"{entry['speedup']:.2f}x")
    cache = report["smartcomp_cache"]
    lines.append(
        f"  SmartComp stream cache: "
        f"{cache['internal_read_bytes_per_iter']} B/iter internal reads "
        f"vs {cache['legacy_internal_read_bytes_per_iter']} B/iter "
        f"uncached ({cache['reduction_factor']:.2f}x fewer)")
    arena = report.get("arena")
    if arena is not None:
        lines.append(
            f"  scratch arena: {arena['checkouts']} checkouts, "
            f"{arena['allocations']} allocations "
            f"({100.0 * arena['hit_rate']:.1f}% pooled), "
            f"high-water {arena['high_water_bytes']} B")
    healths = [run["health"] for run in report["runs"]
               if run.get("health")]
    if healths:
        alerts = sum(entry["alerts"] for entry in healths)
        rules = sorted({rule for entry in healths
                        for rule in entry["alert_rules"]})
        suffix = f" ({', '.join(rules)})" if rules else ""
        lines.append(
            f"  health: {alerts} alert(s) across "
            f"{len(healths)} run(s){suffix}, flight recorder "
            f"{'on' if report.get('flight_recorder', True) else 'off'}")
    probed = [run for run in report["runs"] if run.get("critpath")]
    if probed:
        run = probed[-1]
        cp = run["critpath"]
        top_res = ", ".join(f"{name} {seconds:.3f}s" for name, seconds
                            in list(cp["top_resources"].items())[:3])
        lines.append(
            f"  critical path ({run['num_csds']} CSDs x "
            f"{run['workers']} worker(s) probe): {cp['path_hops']} hops, "
            f"{cp['path_fraction']:.0%} of {cp['step_seconds']:.3f}s "
            f"step on path — {top_res}")
    if report.get("fault_plan") is not None:
        injected = sum(sum(run["faults"]["injected"].values())
                       for run in report["runs"] if run.get("faults"))
        retries = sum(run["faults"]["retries"]
                      for run in report["runs"] if run.get("faults"))
        lines.append(f"  chaos: {injected} faults injected, "
                     f"{retries} retries (checksums still bit-identical)")
    return "\n".join(lines)
