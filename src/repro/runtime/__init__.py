"""Storage-offloaded training runtime: baseline and Smart-Infinity engines."""

from .checkpoint import load_checkpoint, save_checkpoint
from .engine import (BaselineOffloadEngine, CONFIG_SCHEMA_VERSION, LossFn,
                     MixedPrecisionTrainer, StepResult, TrainingConfig)
from .host_offload import HostOffloadEngine
from .parallel import (CSDWorkerPool, ProcessCSDWorkerPool,
                       resolve_backend, resolve_workers, usable_cpus)
from .partition import (FlatParameterSpace, ParamSlot, Shard,
                        distribute_shards)
from .smart import SmartInfinityEngine
from .stats import IterationTraffic, TrafficMeter, expected_traffic

__all__ = [
    "BaselineOffloadEngine",
    "CONFIG_SCHEMA_VERSION",
    "CSDWorkerPool",
    "HostOffloadEngine",
    "load_checkpoint",
    "save_checkpoint",
    "FlatParameterSpace",
    "IterationTraffic",
    "LossFn",
    "MixedPrecisionTrainer",
    "ParamSlot",
    "ProcessCSDWorkerPool",
    "Shard",
    "SmartInfinityEngine",
    "StepResult",
    "TrafficMeter",
    "TrainingConfig",
    "distribute_shards",
    "expected_traffic",
    "resolve_backend",
    "resolve_workers",
    "usable_cpus",
]
