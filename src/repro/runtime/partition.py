"""Flat parameter space and CSD workload distribution (§IV-D).

Smart-Infinity flattens the whole model into one contiguous parameter
address space and distributes equal contiguous shards to the CSDs.  Because
optimizer updates are element-wise, the distribution is agnostic to model
architecture — no layer/head/hidden-dim knowledge is needed — which is the
property this module preserves and the tests assert.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import PartitionError
from ..nn.modules import Module
from ..nn.precision import to_fp16


@dataclass(frozen=True)
class ParamSlot:
    """One parameter tensor's placement in the flat space."""

    name: str
    offset: int
    size: int
    shape: Tuple[int, ...]

    @property
    def end(self) -> int:
        return self.offset + self.size


class FlatParameterSpace:
    """Bijection between a module's parameters and one flat float32 vector.

    The flat order is the module's deterministic ``named_parameters``
    order; offsets are contiguous with no padding, so every element of the
    flat vector maps to exactly one model parameter element.

    Writers are funneled through one lock: concurrent per-CSD update
    workers install their updated subgroups into *disjoint* flat ranges,
    but a range can straddle a parameter tensor whose storage both
    writers touch, and :meth:`scatter_slice` re-binds ``param.data`` —
    the lock makes each install atomic so no writer can observe (or
    clobber) a half-installed neighbour.  Reads (`gather_*`) happen only
    between fan-outs, on the coordinating thread.
    """

    def __init__(self, module: Module) -> None:
        self.module = module
        self._write_lock = threading.Lock()
        self.slots: List[ParamSlot] = []
        offset = 0
        for name, param in module.named_parameters():
            slot = ParamSlot(name=name, offset=offset, size=param.size,
                             shape=param.data.shape)
            self.slots.append(slot)
            offset += param.size
        if offset == 0:
            raise PartitionError("module has no parameters")
        self.total_elements = offset
        self._by_name: Dict[str, ParamSlot] = {
            slot.name: slot for slot in self.slots}

    def slot(self, name: str) -> ParamSlot:
        try:
            return self._by_name[name]
        except KeyError:
            raise PartitionError(f"unknown parameter {name!r}")

    # ------------------------------------------------------------------
    # gather / scatter
    # ------------------------------------------------------------------
    def gather_params(self) -> np.ndarray:
        """Current module parameters as one flat float32 vector."""
        flat = np.empty(self.total_elements, dtype=np.float32)
        for slot, (_name, param) in zip(self.slots,
                                        self.module.named_parameters()):
            flat[slot.offset:slot.end] = param.data.reshape(-1)
        return flat

    def scatter_params(self, flat: np.ndarray) -> None:
        """Write a flat vector back into the module's parameters."""
        self._check_flat(flat)
        with self._write_lock:
            for slot, (_name, param) in zip(self.slots,
                                            self.module.named_parameters()):
                param.data = flat[slot.offset:slot.end].reshape(
                    slot.shape).astype(np.float32)

    def scatter_slice(self, start: int, values: np.ndarray) -> None:
        """Write ``values`` into flat range [start, start+len) of the module.

        Used by the runtime to install updated parameters subgroup by
        subgroup as their urgent write-backs complete, without waiting for
        the whole model.
        """
        end = start + values.size
        if start < 0 or end > self.total_elements:
            raise PartitionError(
                f"slice [{start}, {end}) outside flat space of "
                f"{self.total_elements}")
        with self._write_lock:
            for slot, (_name, param) in zip(self.slots,
                                            self.module.named_parameters()):
                lo = max(start, slot.offset)
                hi = min(end, slot.end)
                if lo >= hi:
                    continue
                flat_view = param.data.reshape(-1)
                flat_view[lo - slot.offset:hi - slot.offset] = (
                    values[lo - start:hi - start])
                param.data = flat_view.reshape(slot.shape)

    def gather_grads(self) -> np.ndarray:
        """Accumulated gradients as one flat float32 vector (zeros where a
        parameter received no gradient)."""
        flat = np.zeros(self.total_elements, dtype=np.float32)
        for slot, (_name, param) in zip(self.slots,
                                        self.module.named_parameters()):
            if param.grad is not None:
                flat[slot.offset:slot.end] = param.grad.reshape(-1)
        return flat

    def install_fp16_params(self, masters: np.ndarray) -> None:
        """Install the FP16 working copy derived from FP32 masters.

        Mixed-precision semantics: the module computes forward/backward on
        parameters quantized through FP16, while ``masters`` stay FP32 in
        the optimizer state.
        """
        self._check_flat(masters)
        working = to_fp16(masters).astype(np.float32)
        self.scatter_params(working)

    def install_fp16_slice(self, start: int, masters: np.ndarray) -> None:
        """FP16-quantize and install one flat slice of master parameters."""
        working = to_fp16(masters).astype(np.float32)
        self.scatter_slice(start, working)

    def _check_flat(self, flat: np.ndarray) -> None:
        if flat.ndim != 1 or flat.size != self.total_elements:
            raise PartitionError(
                f"flat vector must have {self.total_elements} elements, "
                f"got shape {flat.shape}")


@dataclass(frozen=True)
class Shard:
    """A contiguous flat range owned by one CSD."""

    device_id: int
    start: int
    count: int

    @property
    def end(self) -> int:
        return self.start + self.count


def distribute_shards(total_elements: int, num_devices: int) -> List[Shard]:
    """Equally distribute the flat space over ``num_devices`` CSDs.

    Shards are contiguous and cover every element exactly once; sizes
    differ by at most one element.  Architecture information is never
    consulted — only the flat length (§IV-D).
    """
    if num_devices < 1:
        raise PartitionError("need at least one device")
    if total_elements < num_devices:
        raise PartitionError(
            f"cannot distribute {total_elements} elements over "
            f"{num_devices} devices")
    base, remainder = divmod(total_elements, num_devices)
    shards = []
    start = 0
    for device_id in range(num_devices):
        count = base + (1 if device_id < remainder else 0)
        shards.append(Shard(device_id=device_id, start=start, count=count))
        start += count
    return shards
