"""Bench trajectory: append wall-clock results, detect regressions.

``python -m repro bench --compare`` turns single benchmark reports
(:func:`~repro.runtime.bench.run_parallel_bench`) into a *history* —
one JSON document under ``benchmarks/results/`` accumulating an entry
per run — and gates on throughput: if the current run's steps/s falls
more than a threshold below the baseline for any configuration, the
comparison fails with a readable delta report.

Wall-clock numbers are only comparable on like hardware, so baselines
are matched on an environment fingerprint (cpu_count, usable_cpus) plus
the workload shape and the quick/full flag.  A run on a machine with no
matching history records a new baseline and passes — CI machines build
their own trajectory without poisoning a laptop's.

The baseline per configuration is the **median** of the last
:data:`BASELINE_WINDOW` matching entries, so one anomalously fast run
does not turn every later run into a "regression".
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Schema marker of the history document.
HISTORY_SCHEMA = "smart-infinity/bench-history/v1"

#: How many recent matching entries feed the per-config median baseline.
BASELINE_WINDOW = 5

#: Default relative throughput drop that fails the gate (20%).
DEFAULT_THRESHOLD = 0.2

#: Workload fields that define "the same benchmark" across runs.
_WORKLOAD_SHAPE_KEYS = ("dim", "num_layers", "vocab_size", "seq_len",
                        "batch", "subgroup_elements",
                        "kernel_chunk_elements", "steps")


def _config_key(run: Dict[str, object]) -> str:
    """``csds x workers``, suffixed ``@backend`` off the thread default.

    Thread and process runs of the same geometry are different
    benchmarks (one is GIL-bound, one is not), so they must never share
    a baseline; runs predating the backend field are thread runs.  The
    same goes for the execution pipeline: an interleaved run
    (``+interleaved``) or a spilled-activation run (``~spill``) must
    never feed a phased/recompute median — runs predating those fields
    are phased/recompute runs.
    """
    key = f"{run['num_csds']}x{run['workers']}"
    backend = run.get("backend", "thread")
    if backend != "thread":
        key += f"@{backend}"
    schedule = run.get("schedule", "phased")
    if schedule != "phased":
        key += f"+{schedule}"
    activation = run.get("activation_offload", "recompute")
    if activation != "recompute":
        key += f"~{activation}"
    return key


def entry_from_report(report: Dict[str, object],
                      timestamp: Optional[float] = None
                      ) -> Dict[str, object]:
    """One history entry distilled from a full bench report."""
    workload = report.get("workload", {})
    return {
        "timestamp": time.time() if timestamp is None else timestamp,
        "quick": bool(report.get("quick", False)),
        "environment": dict(report.get("environment", {})),
        "workload": {key: workload.get(key)
                     for key in _WORKLOAD_SHAPE_KEYS},
        "configs": {
            _config_key(run): run["steps_per_second"]
            for run in report.get("runs", [])
        },
    }


def load_history(path: str) -> Dict[str, object]:
    """Load (or initialize) a history document.

    A legacy single-report file (PR 2's ``BENCH_parallel.json`` format,
    recognizable by its top-level ``runs`` list) is migrated in place
    into a one-entry history, so existing committed results seed the
    trajectory instead of being clobbered.  Entries carrying the old
    ``timestamp: 0.0`` placeholder (the epoch, i.e. obviously wrong) are
    re-stamped from the history file's mtime — the best available bound
    on when that run actually happened.
    """
    if not os.path.exists(path):
        return {"schema": HISTORY_SCHEMA, "entries": []}
    with open(path) as handle:
        document = json.load(handle)
    if "entries" in document:
        _repair_timestamps(document, path)
        return document
    if "runs" in document:  # legacy single report
        return {"schema": HISTORY_SCHEMA,
                "entries": [entry_from_report(
                    document, timestamp=os.path.getmtime(path))]}
    return {"schema": HISTORY_SCHEMA, "entries": []}


def _repair_timestamps(history: Dict[str, object], path: str) -> None:
    """Stamp placeholder (missing/zero) entry timestamps from ``path``."""
    for entry in history.get("entries", []):
        if not entry.get("timestamp"):
            entry["timestamp"] = os.path.getmtime(path)


def append_entry(history: Dict[str, object],
                 entry: Dict[str, object]) -> None:
    history.setdefault("entries", []).append(entry)
    history["schema"] = HISTORY_SCHEMA


def save_history(path: str, history: Dict[str, object]) -> str:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _matches(entry: Dict[str, object],
             candidate: Dict[str, object]) -> bool:
    """Same benchmark on like hardware: quick flag, workload shape,
    and environment fingerprint (core counts, active schedule and
    activation mode) must all agree."""
    if bool(candidate.get("quick")) != bool(entry.get("quick")):
        return False
    if candidate.get("workload") != entry.get("workload"):
        return False
    env, ref = candidate.get("environment", {}), entry.get(
        "environment", {})
    return (env.get("cpu_count") == ref.get("cpu_count")
            and env.get("usable_cpus") == ref.get("usable_cpus")
            and env.get("schedule", "phased")
            == ref.get("schedule", "phased")
            and env.get("activation_offload", "recompute")
            == ref.get("activation_offload", "recompute"))


@dataclass
class ConfigDelta:
    """Baseline-vs-current throughput for one (csds x workers) config."""

    config: str
    baseline: float
    current: float

    @property
    def delta(self) -> float:
        if self.baseline <= 0:
            return 0.0
        return (self.current - self.baseline) / self.baseline


@dataclass
class Comparison:
    """Outcome of gating one bench entry against the history."""

    baseline_entries: int
    threshold: float
    deltas: List[ConfigDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[ConfigDelta]:
        return [d for d in self.deltas if d.delta < -self.threshold]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        if self.baseline_entries == 0:
            return ("bench compare: no matching baseline in history "
                    "(different machine/workload) — recording a new "
                    "baseline, gate passes")
        lines = [f"bench compare vs median of last "
                 f"{self.baseline_entries} matching run(s), "
                 f"threshold -{self.threshold:.0%}:"]
        lines.append(f"  {'config':>8} {'baseline':>12} {'current':>12} "
                     f"{'delta':>8}")
        for d in sorted(self.deltas, key=lambda d: d.config):
            flag = "  REGRESSION" if d.delta < -self.threshold else ""
            lines.append(f"  {d.config:>8} {d.baseline:>10.2f}/s "
                         f"{d.current:>10.2f}/s {d.delta:>+8.1%}{flag}")
        if self.regressions:
            worst = min(self.regressions, key=lambda d: d.delta)
            lines.append(
                f"  FAIL: {len(self.regressions)} config(s) regressed "
                f"beyond {self.threshold:.0%} (worst: {worst.config} at "
                f"{worst.delta:+.1%})")
        else:
            lines.append("  OK: no configuration regressed beyond the "
                         "threshold")
        return "\n".join(lines)


def compare_to_history(entry: Dict[str, object],
                       history: Dict[str, object],
                       threshold: float = DEFAULT_THRESHOLD
                       ) -> Comparison:
    """Gate ``entry`` against the matching tail of ``history``.

    Call *before* appending the entry, or the run compares against
    itself.  Configurations without a baseline (new CSD counts) pass.
    """
    matching = [candidate for candidate in history.get("entries", [])
                if _matches(entry, candidate)]
    window = matching[-BASELINE_WINDOW:]
    comparison = Comparison(baseline_entries=len(window),
                            threshold=threshold)
    if not window:
        return comparison
    for config, current in sorted(entry.get("configs", {}).items()):
        samples = [candidate["configs"][config] for candidate in window
                   if config in candidate.get("configs", {})]
        if not samples:
            continue
        comparison.deltas.append(ConfigDelta(
            config=config, baseline=statistics.median(samples),
            current=float(current)))
    return comparison
