"""Thread-pooled fan-out across independent CSDs (the Fig. 11 structure).

The paper's multi-CSD scaling argument is that each SmartSSD updates its
shard over its *own* internal path — the per-device work shares nothing
but the host-side glue.  The functional engines have the same property:

* every CSD owns a disjoint flat shard, a private backing file, private
  FPGA-DRAM buffers, a private transfer handler and error-feedback
  residual — no two devices ever touch the same bytes;
* the only cross-device state is the :class:`~repro.runtime.partition.
  FlatParameterSpace` (upstream installs land in disjoint flat ranges,
  serialized by its writer lock), the
  :class:`~repro.runtime.stats.TrafficMeter` (lock-protected counters),
  and telemetry (thread-safe by construction).

Because the update arithmetic is element-wise over disjoint ranges, the
execution order across devices is irrelevant: fanning the per-device
passes over a thread pool is *bit-identical* to the sequential loop
(property-tested), while wall-clock improves wherever the interpreter
can overlap work — numpy ufuncs and ``os.pread``/``os.pwrite`` all
release the GIL, so per-device file I/O and SIMD update math from
different devices genuinely run concurrently on multi-core hosts.

``workers=1`` degenerates to an inline loop on the calling thread — no
pool, no thread hop — so the sequential engine is still exactly the old
code path.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

import numpy as np

from ..errors import TrainingError, WorkerCrashError

T = TypeVar("T")
R = TypeVar("R")

#: Execution backends for the per-CSD fan-out.
BACKENDS = ("thread", "process", "auto")


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count`` reports the machine; cgroup/affinity limits (CI
    runners, containers, taskset) can pin the process to fewer cores.
    Worker resolution and the bench environment fingerprint both use
    this, so "4 workers" never silently means "4 workers on 1 core".
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_workers(requested: Optional[int], num_tasks: int) -> int:
    """Resolve a ``parallel_csds`` knob into a concrete worker count.

    ``None`` or ``0`` means *auto*: ``min(num_tasks, usable_cpus)``, the
    paper's one-worker-per-CSD placement capped by the CPUs the process
    can actually use.  An explicit positive count is honoured (capped at
    ``num_tasks`` — extra workers could never have work) even beyond the
    CPU count, so tests can force pooled execution on small machines.
    """
    if num_tasks < 1:
        raise TrainingError("need at least one task to schedule")
    if requested is None or requested == 0:
        return max(1, min(num_tasks, usable_cpus()))
    if requested < 0:
        raise TrainingError(
            f"worker count must be positive (or 0/None for auto), "
            f"got {requested}")
    return min(requested, num_tasks)


def resolve_backend(requested: str, workers: int) -> str:
    """Resolve a ``parallel_backend`` knob to ``thread`` or ``process``.

    ``auto`` picks ``process`` exactly when it could help: more than one
    worker *and* more than one usable CPU.  On a single core (or for a
    sequential run) processes only add IPC overhead, so auto falls back
    to the thread path.
    """
    if requested not in BACKENDS:
        raise TrainingError(
            f"unknown parallel backend {requested!r}; expected one of "
            f"{', '.join(BACKENDS)}")
    if requested == "auto":
        if workers > 1 and usable_cpus() > 1:
            return "process"
        return "thread"
    return requested


def _check_payload(obj: object, direction: str) -> None:
    """Reject ndarrays anywhere in a pipe payload.

    The process pool's task protocol ships descriptors and scalars only;
    tensor bytes move through shared-memory segments.  Pickling an
    ndarray over the pipe would silently reintroduce the per-step copy
    the whole backend exists to remove, so it is an error, not a slow
    path.
    """
    stack = [obj]
    while stack:
        item = stack.pop()
        if isinstance(item, np.ndarray):
            raise TrainingError(
                f"ndarray in worker-pool {direction}: tensors must move "
                f"via shared memory, not the task pipe")
        if isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)


class CSDWorkerPool:
    """Persistent thread pool executing one task per device, in order.

    The pool is created once per engine and reused every iteration (the
    paper's per-CSD workers are likewise persistent).  Worker threads are
    named ``csd-worker_N`` so telemetry spans recorded inside a task carry
    a recognisable thread identity in Chrome traces.
    """

    def __init__(self, workers: int,
                 name_prefix: str = "csd-worker") -> None:
        if workers < 1:
            raise TrainingError(f"need at least one worker, got {workers}")
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None
        if workers > 1:
            self._pool = ThreadPoolExecutor(max_workers=workers,
                                            thread_name_prefix=name_prefix)
        self._closed = False

    @property
    def is_parallel(self) -> bool:
        return self._pool is not None

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Submit one task; returns a Future.

        The ready-queue scheduler (:mod:`repro.runtime.interleave`) uses
        this to enqueue per-block chains as gradients become available.
        With one worker the task runs inline on the calling thread and
        the returned Future is already completed — the interleaved
        schedule degenerates to the sequential loop exactly.
        """
        if self._closed:
            raise TrainingError("worker pool is closed")
        if self._pool is None:
            future: Future = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - via Future
                future.set_exception(exc)
            return future
        return self._pool.submit(fn, *args)

    def map_ordered(self, fn: Callable[[T], R],
                    items: Iterable[T]) -> List[R]:
        """Run ``fn`` over ``items``; results in submission order.

        With one worker (or one item) this is an inline loop on the
        calling thread.  On error, every submitted task is still awaited
        — per-device work must never be abandoned mid-write — and the
        first exception is re-raised.
        """
        if self._closed:
            raise TrainingError("worker pool is closed")
        work = list(items)
        if self._pool is None or len(work) <= 1:
            return [fn(item) for item in work]
        futures = [self._pool.submit(fn, item) for item in work]
        results: List[R] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def close(self) -> None:
        if self._closed:
            return
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self._closed = True

    def __enter__(self) -> "CSDWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# process-backed pool
# ----------------------------------------------------------------------

def _mp_context():
    """The multiprocessing start-method context for worker processes.

    ``fork`` when available (fast, inherits the module graph); honours
    ``REPRO_MP_START`` for experiments.  All task functions are
    module-level and all payloads picklable, so ``spawn`` works too.
    """
    method = os.environ.get("REPRO_MP_START")
    if method is None:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(method)


def _process_worker_main(conn, name: str) -> None:
    """Child-process task loop: recv ``(fn, item)``, send tagged result.

    Runs until a ``None`` sentinel or pipe EOF.  Exceptions are shipped
    back tagged ``"error"`` (falling back to a string rendering when the
    exception itself does not pickle), so a failing task never kills the
    worker — the pool stays reusable.
    """
    import threading
    threading.current_thread().name = name
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        except BaseException as exc:  # noqa: BLE001 - bad task message
            # The message arrived but would not unpickle (e.g. a task fn
            # the child cannot resolve).  Answer with the error so the
            # parent's recv accounting stays aligned, and keep serving.
            conn.send(("error", TrainingError(
                f"worker could not decode task: "
                f"{type(exc).__name__}: {exc}")))
            continue
        if msg is None:
            break
        fn, item = msg
        try:
            conn.send(("ok", fn(item)))
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            try:
                conn.send(("error", exc))
            except Exception:
                conn.send(("error", TrainingError(
                    f"{type(exc).__name__}: {exc}")))
    conn.close()


class ProcessCSDWorkerPool:
    """Persistent per-CSD worker *processes* — the GIL-free fan-out.

    Same ``map_ordered`` contract as :class:`CSDWorkerPool`, but each
    worker is a long-lived OS process with its own interpreter, so numpy
    update kernels and top-k compression from different devices run
    genuinely concurrently.  Differences that matter to callers:

    * **sticky routing** — item ``j`` always runs on worker ``j % workers``,
      so per-device state built by an init task (device files, handlers,
      error-feedback residuals) stays with the process that owns it;
    * **descriptor-only pipes** — payloads are checked on both send and
      receive: an ndarray anywhere raises :class:`TrainingError` (tensor
      bytes must travel through shared-memory segments);
    * **crash surfacing** — a worker that dies mid-task raises
      :class:`~repro.errors.WorkerCrashError` (a ``FaultError``) instead
      of hanging the parent on a silent pipe.

    Task exceptions are shipped back and re-raised; the pool remains
    usable afterwards.  ``close`` is idempotent and joins the workers.
    """

    def __init__(self, workers: int,
                 name_prefix: str = "csd-proc") -> None:
        if workers < 1:
            raise TrainingError(f"need at least one worker, got {workers}")
        self.workers = workers
        self._closed = False
        self._procs = []
        self._conns = []
        ctx = _mp_context()
        try:
            for index in range(workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                name = f"{name_prefix}_{index}"
                proc = ctx.Process(
                    target=_process_worker_main, args=(child_conn, name),
                    name=name, daemon=True)
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except BaseException:
            self.close()
            raise

    @property
    def is_parallel(self) -> bool:
        return True

    def map_ordered(self, fn: Callable[[T], R],
                    items: Iterable[T]) -> List[R]:
        """Run ``fn`` over ``items`` on the workers; results in order.

        ``fn`` must be a module-level (picklable) callable.  Every
        submitted task is awaited even on error, then the first task
        exception is re-raised; a dead worker raises
        :class:`WorkerCrashError` immediately.
        """
        if self._closed:
            raise TrainingError("worker pool is closed")
        work = list(items)
        if not work:
            return []
        for position, item in enumerate(work):
            worker = position % self.workers
            _check_payload(item, "task payload")
            try:
                self._conns[worker].send((fn, item))
            except (BrokenPipeError, OSError) as exc:
                raise self._crash(worker) from exc
        results: List[Optional[R]] = [None] * len(work)
        first_error: Optional[BaseException] = None
        for position in range(len(work)):
            worker = position % self.workers
            try:
                tag, payload = self._conns[worker].recv()
            except (EOFError, OSError) as exc:
                raise self._crash(worker) from exc
            if tag == "error":
                if first_error is None:
                    first_error = payload
            else:
                _check_payload(payload, "task result")
                results[position] = payload
        if first_error is not None:
            raise first_error
        return results

    def _crash(self, worker: int) -> WorkerCrashError:
        proc = self._procs[worker]
        proc.join(timeout=1.0)
        code = proc.exitcode
        return WorkerCrashError(
            f"worker process {proc.name!r} died "
            f"(exit code {code}) with tasks outstanding", worker=worker)

    def close(self) -> None:
        """Send stop sentinels, join, and reap the workers. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "ProcessCSDWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
