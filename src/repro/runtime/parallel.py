"""Thread-pooled fan-out across independent CSDs (the Fig. 11 structure).

The paper's multi-CSD scaling argument is that each SmartSSD updates its
shard over its *own* internal path — the per-device work shares nothing
but the host-side glue.  The functional engines have the same property:

* every CSD owns a disjoint flat shard, a private backing file, private
  FPGA-DRAM buffers, a private transfer handler and error-feedback
  residual — no two devices ever touch the same bytes;
* the only cross-device state is the :class:`~repro.runtime.partition.
  FlatParameterSpace` (upstream installs land in disjoint flat ranges,
  serialized by its writer lock), the
  :class:`~repro.runtime.stats.TrafficMeter` (lock-protected counters),
  and telemetry (thread-safe by construction).

Because the update arithmetic is element-wise over disjoint ranges, the
execution order across devices is irrelevant: fanning the per-device
passes over a thread pool is *bit-identical* to the sequential loop
(property-tested), while wall-clock improves wherever the interpreter
can overlap work — numpy ufuncs and ``os.pread``/``os.pwrite`` all
release the GIL, so per-device file I/O and SIMD update math from
different devices genuinely run concurrently on multi-core hosts.

``workers=1`` degenerates to an inline loop on the calling thread — no
pool, no thread hop — so the sequential engine is still exactly the old
code path.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

from ..errors import TrainingError

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(requested: Optional[int], num_tasks: int) -> int:
    """Resolve a ``parallel_csds`` knob into a concrete worker count.

    ``None`` or ``0`` means *auto*: ``min(num_tasks, cpu_count)``, the
    paper's one-worker-per-CSD placement capped by the host's cores.  An
    explicit positive count is honoured (capped at ``num_tasks`` — extra
    workers could never have work) even beyond ``cpu_count``, so tests
    can force thread-pooled execution on small machines.
    """
    if num_tasks < 1:
        raise TrainingError("need at least one task to schedule")
    if requested is None or requested == 0:
        return max(1, min(num_tasks, os.cpu_count() or 1))
    if requested < 0:
        raise TrainingError(
            f"worker count must be positive (or 0/None for auto), "
            f"got {requested}")
    return min(requested, num_tasks)


class CSDWorkerPool:
    """Persistent thread pool executing one task per device, in order.

    The pool is created once per engine and reused every iteration (the
    paper's per-CSD workers are likewise persistent).  Worker threads are
    named ``csd-worker_N`` so telemetry spans recorded inside a task carry
    a recognisable thread identity in Chrome traces.
    """

    def __init__(self, workers: int,
                 name_prefix: str = "csd-worker") -> None:
        if workers < 1:
            raise TrainingError(f"need at least one worker, got {workers}")
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None
        if workers > 1:
            self._pool = ThreadPoolExecutor(max_workers=workers,
                                            thread_name_prefix=name_prefix)
        self._closed = False

    @property
    def is_parallel(self) -> bool:
        return self._pool is not None

    def map_ordered(self, fn: Callable[[T], R],
                    items: Iterable[T]) -> List[R]:
        """Run ``fn`` over ``items``; results in submission order.

        With one worker (or one item) this is an inline loop on the
        calling thread.  On error, every submitted task is still awaited
        — per-device work must never be abandoned mid-write — and the
        first exception is re-raised.
        """
        if self._closed:
            raise TrainingError("worker pool is closed")
        work = list(items)
        if self._pool is None or len(work) <= 1:
            return [fn(item) for item in work]
        futures = [self._pool.submit(fn, item) for item in work]
        results: List[R] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def close(self) -> None:
        if self._closed:
            return
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self._closed = True

    def __enter__(self) -> "CSDWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
