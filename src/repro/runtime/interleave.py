"""Interleaved optimizer pipeline: block-granular ready-queue scheduling.

The phased step runs ``forward -> backward -> offload barrier -> update
barrier``: every device's gradients must land on storage before *any*
device may start updating.  The paper's overlap argument (and the Deep
Optimizer States follow-up in PAPERS.md) is that per-shard work is
independent, so a shard whose gradients are ready can begin its
offload+update chain immediately while other shards are still
offloading — the update phase rides inside the backward/offload span
instead of serializing after it.

This module is the host-side machinery for that schedule:

* :func:`resolve_schedule` / :func:`resolve_activation_offload` turn the
  :class:`~repro.runtime.engine.TrainingConfig` knobs into validated
  concrete modes;
* :class:`InterleavedScheduler` is the ready-queue: work is submitted
  per block/device the moment its inputs exist, a bounded in-flight
  window applies backpressure on the shared host link (submitting past
  the window blocks the producer), and :meth:`InterleavedScheduler.drain`
  awaits completion in submission order so error handling and telemetry
  match the phased barrier exactly;
* :func:`make_spill_store` builds the SSD-backed activation spill
  device (:mod:`repro.nn.offload`) for engines that own a storage
  directory.

Bit-identity: interleaving never reorders the operations *of one
shard* — each shard still runs offload-then-update on a single worker
chain — and shards touch disjoint state, so the trained model is
bit-identical to the phased schedule (property-tested, including under
chaos: fault streams are seeded per device id and each device sees the
same I/O op sequence in both schedules).
"""

from __future__ import annotations

import contextlib
import threading
from concurrent.futures import Future
from typing import Callable, Iterable, List, Optional, TypeVar

from ..errors import TrainingError

T = TypeVar("T")
R = TypeVar("R")

#: Execution schedules for the optimizer pipeline.
SCHEDULES = ("phased", "interleaved")

#: Boundary-activation handling during checkpointed training.
ACTIVATION_MODES = ("recompute", "spill", "auto")


def resolve_schedule(config) -> str:
    """Validate ``config.schedule`` and return the concrete schedule."""
    schedule = getattr(config, "schedule", "phased")
    if schedule not in SCHEDULES:
        raise TrainingError(
            f"unknown schedule {schedule!r}; expected one of "
            f"{', '.join(SCHEDULES)}")
    return schedule


def resolve_activation_offload(config, has_spill_device: bool = True) -> str:
    """Resolve ``config.activation_offload`` to ``recompute`` or ``spill``.

    ``auto`` is the planner hook: spill wins whenever the engine owns a
    storage device to spill to (the emulated SSD write+read of one
    boundary is cheaper than holding it in host DRAM, which is the
    resource storage-offloaded training is short of); engines without
    storage fall back to recompute.  An *explicit* ``spill`` on a
    storage-less engine is a configuration error, not a silent fallback.
    """
    mode = getattr(config, "activation_offload", "recompute")
    if mode not in ACTIVATION_MODES:
        raise TrainingError(
            f"unknown activation_offload mode {mode!r}; expected one of "
            f"{', '.join(ACTIVATION_MODES)}")
    if mode == "auto":
        return "spill" if has_spill_device else "recompute"
    if mode == "spill" and not has_spill_device:
        raise TrainingError(
            "activation_offload='spill' needs a storage-backed engine "
            "(baseline or smart); the host-offload engine has no spill "
            "device — use 'auto' to fall back to recompute")
    return mode


def make_spill_store(config, storage_dir: Optional[str]):
    """The engine's activation spill store, or None when not spilling.

    Returns an :class:`~repro.nn.offload.ActivationSpillStore` exactly
    when the resolved mode is ``spill`` and the engine owns a storage
    directory; the caller installs it as the trainer's ``_spill`` and
    closes it on teardown.
    """
    if storage_dir is None:
        return None
    if resolve_activation_offload(config, True) != "spill":
        return None
    if getattr(config, "activation_offload", "recompute") == "auto" \
            and resolve_activation_offload(config, True) != "spill":
        return None  # pragma: no cover - defensive, auto resolves above
    from ..nn.offload import ActivationSpillStore
    return ActivationSpillStore(storage_dir)


class InterleavedScheduler:
    """Ready-queue scheduler with a bounded in-flight window.

    Wraps a worker pool (:class:`~repro.runtime.parallel.CSDWorkerPool`
    duck type: ``submit(fn, *args) -> Future``).  ``submit`` enqueues one
    block's offload+update chain the moment its gradients exist;
    at most ``window`` chains are in flight at once — the producer
    blocks on the shared-link backpressure semaphore until a slot frees.
    ``drain`` awaits every chain in submission order and re-raises the
    first failure only after all submitted work has finished (per-device
    work must never be abandoned mid-write, same contract as
    ``map_ordered``).

    With a sequential pool (``workers=1``) submission executes inline on
    the calling thread, so the interleaved schedule degenerates to
    exactly the phased per-device loop — bit-identity for free.
    """

    def __init__(self, pool, window: Optional[int] = None) -> None:
        self.pool = pool
        workers = max(1, int(getattr(pool, "workers", 1)))
        if window is None:
            # Two chains per worker: one running, one queued behind it —
            # enough to hide scheduling gaps without unbounded queueing
            # on the shared host link.
            window = 2 * workers
        if window < 1:
            raise TrainingError(
                f"in-flight window must be positive, got {window}")
        self.window = window
        self._backpressure = threading.BoundedSemaphore(window)
        self._pending: List[Future] = []

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Enqueue one chain; blocks while the window is full."""
        self._backpressure.acquire()
        try:
            future = self.pool.submit(fn, *args)
        except BaseException:
            self._backpressure.release()
            raise
        future.add_done_callback(lambda _f: self._backpressure.release())
        self._pending.append(future)
        return future

    def drain(self) -> List:
        """Await all submitted chains in order; re-raise the first error
        only after every chain has finished."""
        pending, self._pending = self._pending, []
        results: List = []
        first_error: Optional[BaseException] = None
        for future in pending:
            try:
                results.append(future.result())
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def run(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Submit ``fn`` per item as the items arrive, then drain."""
        if self._pending:
            raise TrainingError(
                "scheduler already has in-flight work; drain() first")
        try:
            for item in items:
                self.submit(fn, item)
        except BaseException:
            # Await the chains already submitted before propagating the
            # submission failure — never abandon in-flight work.
            try:
                self.drain()
            except BaseException:
                pass
            raise
        return self.drain()


def activation_scope(spill_store):
    """Context activating a spill store for checkpointed forwards.

    ``None`` yields a no-op context, so trainers can wrap every
    forward/backward unconditionally.
    """
    if spill_store is None:
        return contextlib.nullcontext()
    from ..nn.offload import activation_spill_scope
    return activation_spill_scope(spill_store)


__all__ = [
    "ACTIVATION_MODES",
    "InterleavedScheduler",
    "SCHEDULES",
    "activation_scope",
    "make_spill_store",
    "resolve_activation_offload",
    "resolve_schedule",
]
