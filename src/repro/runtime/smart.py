"""The Smart-Infinity engine: SmartUpdate + SmartComp over functional CSDs.

Dataflow per iteration (Figs. 4b and 6):

1. forward/backward in mixed precision (shared with the baseline);
2. gradients are offloaded to their *owner CSD* — dense for SmartUpdate,
   Top-K compressed (optionally with error feedback) for SmartComp; this is
   the only downstream host traffic (2M or c% x 2M);
3. each CSD updates its shard near storage: optimizer states move only over
   the device-internal P2P path, the FPGA kernel applies the update, and
   the transfer handler overlaps lazy state write-backs;
4. as each subgroup's urgent parameter write-back lands, the host reads the
   updated FP32 masters upstream (2M total) and refreshes the FP16 working
   copy — the only upstream host traffic.

SmartUpdate runs the *same* optimizer arithmetic as the baseline, so with
compression disabled the trained model is bit-identical to the baseline's
(asserted in tests), which is the paper's Table IV "SU+O == Baseline" row.

Steps 2 and 3 fan out across the CSDs on a persistent worker pool
(:mod:`repro.runtime.parallel`): each device's offload/update pass runs
on its own thread, the concurrency structure behind the paper's
near-linear Fig. 11 scaling.  Because shards are disjoint and every
device owns private storage and buffers, parallel execution is
bit-identical to the sequential loop, and the only shared writers — the
flat parameter space and the traffic meter — are lock-protected.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import telemetry
from ..compression.error_feedback import ErrorFeedback, compress_with_feedback
from ..compression.topk import CompressedGradient, keep_count
from ..csd.device import SmartSSDDevice
from ..csd.handler import (Subgroup, TransferHandler, naive_update_pass,
                           plan_subgroups)
from ..csd.kernels import DecompressorKernel, UpdaterKernel
from ..errors import DeviceFailedError, RetryExhaustedError, TrainingError
from ..memory import thread_arena
from ..modelcomp.pruning import PruningMask, magnitude_mask
from ..modelcomp.quantization import QuantizerKernel, dequantize_int8, \
    QuantizedTensor
from ..nn.modules import Module
from ..optim.base import scratch_buffers
from .engine import (LossFn, MixedPrecisionTrainer, StepResult,
                     TrainingConfig, fault_bypass, fold_deprecated_kwarg,
                     make_fault_injector)
from .interleave import InterleavedScheduler
from .parallel import CSDWorkerPool, resolve_backend, resolve_workers
from .partition import Shard, distribute_shards
from .stats import TrafficMeter


# ----------------------------------------------------------------------
# per-shard building blocks
# ----------------------------------------------------------------------
# Module-level on purpose: the process backend's shard workers
# (:mod:`repro.runtime.procworker`) run these same functions inside
# child processes, so thread mode and process mode are bit-identical by
# construction — there is one implementation of the device layout, the
# dense-gradient reconstruction, the in-flight recovery arithmetic and
# the compressed-stream grad loader, not two.

def build_shard_device(storage_dir: str, shard: Shard,
                       config: TrainingConfig,
                       state_names: Sequence[str],
                       states_per_param: int,
                       site=None) -> SmartSSDDevice:
    """Create and lay out one shard's SmartSSD (file, regions, DRAM)."""
    words = 2 + states_per_param
    capacity = 4 * shard.count * words + shard.count + (2 << 20)
    device = SmartSSDDevice(
        os.path.join(storage_dir, f"csd{shard.device_id}.img"),
        capacity, device_id=shard.device_id, fault_site=site)
    device.store.allocate("master_params", shard.count)
    for name in state_names:
        device.store.allocate(name, shard.count)
    if config.compression_ratio is None:
        device.store.allocate("grads", shard.count)
    else:
        kept = keep_count(shard.count, config.compression_ratio)
        device.store.allocate("comp_indices", kept, dtype=np.int32)
        device.store.allocate("comp_values", kept, dtype=np.float32)
    if config.quantized_upstream:
        # §VIII-B: int8 masters + per-group scales, laid out so each
        # subgroup owns a fixed stripe of the scales region.
        max_sub = min(config.subgroup_elements, shard.count)
        groups_per_sub = -(-max_sub // config.quantization_group)
        num_subs = -(-shard.count // max_sub)
        device.store.allocate("masters_q", shard.count, dtype=np.int8)
        device.store.allocate("masters_scales",
                              num_subs * groups_per_sub,
                              dtype=np.float32)
    return device


def dense_shard_grads(compressed: Optional[CompressedGradient],
                      shard_grads: np.ndarray) -> np.ndarray:
    """The gradient vector the shard's update kernel would consume."""
    if compressed is None:
        return shard_grads
    grads = np.zeros(shard_grads.size, dtype=np.float32)
    grads[compressed.indices] = compressed.values
    return grads


def recover_in_flight(optimizer, state_names: Sequence[str],
                      subgroup_elements: int, masters: np.ndarray,
                      states: Dict[str, np.ndarray], grads: np.ndarray,
                      step_count: int, committed_params: Set[int],
                      committed_states: Set[Tuple[str, int]]) -> None:
    """Finish a mid-pass-interrupted update exactly, on the host.

    Per subgroup, the salvaged device data is in one of two shapes (the
    urgent parameter write-back always precedes the lazy state
    write-backs):

    * params uncommitted — everything is pre-update: recompute the whole
      subgroup from (pre-params, grads, pre-states);
    * params committed — masters are post-update; recompute only the
      state slices whose write-back never landed.  This is exact because
      every optimizer here has param-independent state transitions
      (momentum/variance/accumulator depend only on that state and the
      gradient), so the post-state is reproducible without the
      pre-params we no longer have.
    """
    shard_count = masters.size
    max_sub = min(subgroup_elements, shard_count)
    for subgroup in plan_subgroups(shard_count, max_sub):
        sl = slice(subgroup.start, subgroup.start + subgroup.count)
        params_done = subgroup.start in committed_params
        if params_done and all(
                (name, subgroup.start) in committed_states
                for name in state_names):
            continue
        with scratch_buffers(subgroup.count,
                             1 + len(state_names)) as blocks:
            scratch_params = blocks[0]
            np.copyto(scratch_params, masters[sl])
            scratch_state = {}
            for name, block in zip(state_names, blocks[1:]):
                np.copyto(block, states[name][sl])
                scratch_state[name] = block
            optimizer.step(scratch_params, grads[sl], scratch_state,
                           step_count)
            if not params_done:
                masters[sl] = scratch_params
                for name in state_names:
                    states[name][sl] = scratch_state[name]
            else:
                for name in state_names:
                    if (name, subgroup.start) not in committed_states:
                        states[name][sl] = scratch_state[name]


def make_grad_loader(device: SmartSSDDevice,
                     decompressor: Optional[DecompressorKernel],
                     compressed: Optional[CompressedGradient],
                     subgroups: Sequence[Subgroup]
                     ) -> Tuple[Callable[[Subgroup, np.ndarray],
                                         np.ndarray],
                                Callable[[], None]]:
    """Build the per-subgroup gradient loader for one update pass.

    SmartUpdate reads dense gradients over P2P; SmartComp reads the
    compressed stream over P2P and runs the FPGA decompressor to fill
    the gradient buffer for the subgroup's index range (§V-B).

    The compressed stream is read over the internal path *once per
    update pass* directly into arena-staged blocks cached in "FPGA DRAM"
    for the pass — it is read-only while the pass runs — with one
    precomputed ``searchsorted`` over the subgroup boundaries.  The
    per-subgroup closure then just slices and rebases indices in place,
    instead of re-reading the whole O(kept) stream for every subgroup
    (which made internal-read traffic O(subgroups x kept)).

    Returns ``(loader, release)``; the caller must invoke ``release`` on
    the same worker thread once the pass ends to return the staged
    stream blocks to the arena.
    """
    if compressed is None:
        def load_dense(subgroup: Subgroup,
                       buffer: np.ndarray) -> np.ndarray:
            return device.p2p_read_into("grads", subgroup.start, buffer,
                                        subgroup.count)
        return load_dense, lambda: None

    arena = thread_arena()
    kept = device.store.region("comp_indices").num_elements
    staged = [arena.acquire(kept, dtype=np.int32),
              arena.acquire(kept, dtype=np.float32),
              arena.acquire(kept, dtype=np.int32)]
    idx_stage, val_stage, local_stage = staged

    def release() -> None:
        for block in staged:
            arena.release(block)

    try:
        indices = device.p2p_read_into("comp_indices", 0, idx_stage, kept)
        values = device.p2p_read_into("comp_values", 0, val_stage, kept)
    except BaseException:
        release()
        raise
    # Subgroups tile [0, shard.count) in order, so one sorted lookup of
    # every boundary yields each subgroup's [lo, hi) stream slice.
    edges = np.fromiter(
        (subgroup.start for subgroup in subgroups),
        dtype=np.int64, count=len(subgroups))
    edges = np.append(edges,
                      subgroups[-1].start + subgroups[-1].count)
    bounds = np.searchsorted(indices, edges, side="left")

    def load_compressed(subgroup: Subgroup,
                        buffer: np.ndarray) -> np.ndarray:
        # The decompressor selects the cached entries belonging to this
        # subgroup, rebases them to subgroup-local positions in the
        # staging block, and scatters into the gradient buffer.
        lo = int(bounds[subgroup.index])
        hi = int(bounds[subgroup.index + 1])
        local_view = local_stage[:hi - lo]
        np.subtract(indices[lo:hi], np.int32(subgroup.start),
                    out=local_view)
        local = CompressedGradient(
            indices=local_view,
            values=values[lo:hi],
            original_size=subgroup.count)
        return decompressor.run(local, buffer)

    return load_compressed, release


class SmartInfinityEngine(MixedPrecisionTrainer):
    """Near-storage training engine over multiple functional SmartSSDs."""

    def __init__(self, model: Module, loss_fn: LossFn, storage_dir: str,
                 num_csds: Optional[int] = None,
                 config: Optional[TrainingConfig] = None) -> None:
        config = fold_deprecated_kwarg(
            config or TrainingConfig(), "num_csds", num_csds, "num_csds",
            "SmartInfinityEngine")
        super().__init__(model, loss_fn, config)
        num_csds = config.num_csds
        if num_csds < 1:
            raise TrainingError("need at least one CSD")
        os.makedirs(storage_dir, exist_ok=True)
        self.faults = make_fault_injector(config)
        self._closed = False

        # Graceful-degradation bookkeeping: a demoted device's shard
        # lives host-side in _host_shards (masters + optimizer states)
        # and is updated by the CPU path from then on.
        self.demotions: List[Tuple[int, str]] = []
        self.degraded_steps = 0
        self._host_shards: Dict[int, Dict[str, np.ndarray]] = {}

        self.shards: List[Shard] = distribute_shards(
            self.space.total_elements, num_csds)
        self.devices: List[SmartSSDDevice] = []
        self.handlers: List[Optional[TransferHandler]] = []
        self.kernels: List[UpdaterKernel] = []
        self.decompressors: List[DecompressorKernel] = []
        self.feedback: List[Optional[ErrorFeedback]] = []
        self._pool: Optional[CSDWorkerPool] = None
        self._proc = None
        try:
            self.meter = TrafficMeter()
            self._state_names = self.optimizer.state_names
            # Per-device work is independent (disjoint shards, private
            # files, private handlers), so offload and update fan out
            # over a persistent worker pool; workers=1 is exactly the old
            # sequential loop.  The backend knob picks the pool flavour:
            # threads (GIL-bound but cheap) or per-CSD worker processes
            # with shared-memory shard channels.
            self.workers = resolve_workers(config.parallel_csds, num_csds)
            self.backend = resolve_backend(config.parallel_backend,
                                           self.workers)
            self._init_activation_offload(storage_dir)
            # Ready-queue scheduler for schedule=interleaved on the
            # thread backend (the process backend interleaves through a
            # fused per-shard task instead — see _step_impl_process).
            self._interleave: Optional[InterleavedScheduler] = None

            masters = self.space.gather_params()
            # §VIII-B extensions: pruning mask over the flat space, and
            # the per-device CSD quantizer kernels for the upstream
            # transfer.  Quantizers are pure arithmetic (no device
            # handle), and the host-side demotion path needs them in
            # both backends.
            self.pruning_mask: Optional[PruningMask] = None
            if config.pruning_sparsity is not None:
                self.pruning_mask = magnitude_mask(masters,
                                                   config.pruning_sparsity)
            self.quantizers: List[Optional[QuantizerKernel]] = []
            for shard in self.shards:
                if config.quantized_upstream:
                    group = config.quantization_group
                    chunk = max(group,
                                (config.kernel_chunk_elements // group)
                                * group)
                    self.quantizers.append(QuantizerKernel(
                        group_size=group, chunk_elements=chunk))
                else:
                    self.quantizers.append(None)

            if self.backend == "process":
                # Devices, handlers and residuals live inside the child
                # processes; the parent keeps only the coordinator (shm
                # shard channels + the process pool) and the host-side
                # demotion bookkeeping.
                from .procworker import ProcessShardCoordinator
                self._proc = ProcessShardCoordinator(
                    storage_dir, self.shards, config, self._state_names,
                    self.optimizer.states_per_param, masters,
                    self.workers)
            else:
                self._pool = CSDWorkerPool(self.workers)
                if self.schedule == "interleaved":
                    self._interleave = InterleavedScheduler(self._pool)
                for shard in self.shards:
                    device = self._build_device(storage_dir, shard)
                    self.devices.append(device)
                    # Initial state placement (setup traffic, not metered
                    # and outside the fault domain).
                    with fault_bypass(self.faults):
                        shard_masters = masters[shard.start:shard.end]
                        device.store.write_array("master_params",
                                                 shard_masters)
                        zero = np.zeros(shard.count, dtype=np.float32)
                        for name in self._state_names:
                            device.store.write_array(name, zero)

                    kernel = UpdaterKernel(
                        self.optimizer,
                        chunk_elements=config.kernel_chunk_elements)
                    self.kernels.append(kernel)
                    self.decompressors.append(DecompressorKernel(
                        chunk_elements=config.kernel_chunk_elements))

                    max_sub = min(config.subgroup_elements, shard.count)
                    if config.use_transfer_handler:
                        self.handlers.append(TransferHandler(
                            device, self._state_names, max_sub))
                    else:
                        self.handlers.append(None)

                    if config.compression_ratio is not None \
                            and config.error_feedback:
                        self.feedback.append(ErrorFeedback(shard.count))
                    else:
                        self.feedback.append(None)

            working = masters.copy()
            if self.pruning_mask is not None:
                self.pruning_mask.apply(working)
            self.space.install_fp16_params(working)
        except BaseException:
            # A failed __init__ must release every device and thread
            # already acquired — the caller never gets a handle to close.
            self._release(abandon=True)
            raise

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------
    def _build_device(self, storage_dir: str,
                      shard: Shard) -> SmartSSDDevice:
        site = (self.faults.site(shard.device_id)
                if self.faults is not None else None)
        return build_shard_device(storage_dir, shard, self.config,
                                  self._state_names,
                                  self.optimizer.states_per_param, site)

    @property
    def num_csds(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_step(self, *batch: np.ndarray) -> StepResult:
        """One full iteration across all CSDs."""
        return self._run_step([batch])

    def train_step_accumulated(self, batches) -> StepResult:
        """One iteration with gradient accumulation over micro-batches."""
        return self._run_step([tuple(batch) for batch in batches])

    def _step_impl(self, batches) -> StepResult:
        if self._proc is not None:
            return self._step_impl_process(batches)
        with telemetry.trace_span("iteration", engine="smart",
                                  num_csds=self.num_csds) as span:
            self.meter.begin_iteration()
            snapshots = [
                (dev.internal_traffic.bytes_read,
                 dev.internal_traffic.bytes_written)
                for dev in self.devices]
            with telemetry.trace_span("forward_backward"):
                if len(batches) == 1:
                    loss, flat_grads, norm, overflow = \
                        self.forward_backward(batches[0])
                else:
                    loss, flat_grads, norm, overflow = \
                        self.forward_backward_many(batches)

            if self.schedule == "interleaved":
                # The overflow verdict only needs the backward's NaN
                # scan, so it is computed *before* any offload I/O;
                # each device's offload+update chain is then enqueued
                # immediately — the update phase rides inside the
                # offload span instead of serializing after a barrier.
                # Per-device op order is unchanged, so results and
                # fault streams are bit-identical to phased.
                proceed = self.scaler.update(overflow)
                if proceed:
                    self.step_count += 1
                    self._apply_lr_schedule()

                def device_chain(index: int) -> None:
                    compressed = self._offload_device(index, flat_grads)
                    if proceed:
                        self._update_device_guarded(index, compressed,
                                                    flat_grads)

                with telemetry.trace_span("interleaved_update",
                                          workers=self.workers,
                                          proceed=proceed):
                    self._interleave.run(device_chain,
                                         range(self.num_csds))
            else:
                with telemetry.trace_span("grad_offload"):
                    compressed_per_device = \
                        self._offload_gradients(flat_grads)

                proceed = self.scaler.update(overflow)
                if proceed:
                    self.step_count += 1
                    self._apply_lr_schedule()
                    with telemetry.trace_span("update",
                                              workers=self.workers):
                        self._pool.map_ordered(
                            lambda index: self._update_device_guarded(
                                index, compressed_per_device[index],
                                flat_grads),
                            range(self.num_csds))

            for device, (reads, writes) in zip(self.devices, snapshots):
                self.meter.add_internal_read(
                    device.internal_traffic.bytes_read - reads)
                self.meter.add_internal_write(
                    device.internal_traffic.bytes_written - writes)
            traffic = self.meter.end_iteration()
            self.loss_history.append(loss)
            span.set(step=self.step_count, loss=loss, overflow=overflow,
                     host_reads=traffic.host_reads,
                     host_writes=traffic.host_writes,
                     internal_reads=traffic.internal_reads,
                     internal_writes=traffic.internal_writes)
        return StepResult(step=self.step_count, loss=loss, grad_norm=norm,
                          overflow=overflow, traffic=traffic)

    # ------------------------------------------------------------------
    # process backend: shared-memory shard channels + worker processes
    # ------------------------------------------------------------------
    def _step_impl_process(self, batches) -> StepResult:
        """One iteration with per-CSD worker *processes*.

        Same phase structure as the thread path — offload, scaler
        verdict, update — but the per-device work happens in persistent
        child processes: gradients go down and updated masters come back
        through shared-memory shard channels, and the task pipe carries
        only descriptors and scalars.  Demotions detected by a child are
        salvaged through the channel and absorbed here, so the host-CPU
        degradation path (and the resulting trajectory) is identical to
        thread mode.
        """
        proc = self._proc
        with telemetry.trace_span("iteration", engine="smart",
                                  num_csds=self.num_csds,
                                  backend="process") as span:
            self.meter.begin_iteration()
            with telemetry.trace_span("forward_backward"):
                if len(batches) == 1:
                    loss, flat_grads, norm, overflow = \
                        self.forward_backward(batches[0])
                else:
                    loss, flat_grads, norm, overflow = \
                        self.forward_backward_many(batches)

            if self.schedule == "interleaved":
                # Fused per-shard step task: each child runs its
                # offload+update back-to-back, so shard chains overlap
                # freely across processes with no offload barrier.  The
                # scaler verdict is computed first (it only reads the
                # backward's NaN scan), exactly as on the thread path.
                proceed = self.scaler.update(overflow)
                if proceed:
                    self.step_count += 1
                    self._apply_lr_schedule()
                with telemetry.trace_span("interleaved_update",
                                          workers=self.workers,
                                          proceed=proceed):
                    recovered = set()
                    for resp in proc.step(flat_grads, self.step_count,
                                          self.optimizer.lr, proceed):
                        self.meter.add_host_write(int(resp["host_write"]))
                        self.meter.add_host_read(int(resp["host_read"]))
                        self._absorb_child_traffic(resp)
                        if resp.get("demoted_now"):
                            self._absorb_demotion(resp)
                            if resp.get("recovered"):
                                recovered.add(int(resp["index"]))
                    if proceed:
                        for index in range(self.num_csds):
                            if index in recovered:
                                continue
                            if index in self._host_shards:
                                self._host_update_shard(
                                    index, proc.compressed_view(index),
                                    flat_grads)
                            else:
                                self._install_upstream_shard(index)
            else:
                with telemetry.trace_span("grad_offload"):
                    for resp in proc.offload(flat_grads):
                        self.meter.add_host_write(int(resp["host_write"]))
                        self._absorb_child_traffic(resp)
                        if resp.get("demoted_now"):
                            self._absorb_demotion(resp)

                proceed = self.scaler.update(overflow)
                if proceed:
                    self.step_count += 1
                    self._apply_lr_schedule()
                    with telemetry.trace_span("update",
                                              workers=self.workers):
                        recovered = set()
                        for resp in proc.update(self.step_count,
                                                self.optimizer.lr):
                            self.meter.add_host_read(
                                int(resp["host_read"]))
                            self._absorb_child_traffic(resp)
                            if resp.get("demoted_now"):
                                # The child already salvaged and replayed
                                # the in-flight pass; absorbing installs
                                # the recovered FP16 too.
                                self._absorb_demotion(resp)
                                recovered.add(int(resp["index"]))
                        for index in range(self.num_csds):
                            if index in recovered:
                                continue
                            if index in self._host_shards:
                                self._host_update_shard(
                                    index, proc.compressed_view(index),
                                    flat_grads)
                            else:
                                self._install_upstream_shard(index)

            traffic = self.meter.end_iteration()
            self.loss_history.append(loss)
            span.set(step=self.step_count, loss=loss, overflow=overflow,
                     host_reads=traffic.host_reads,
                     host_writes=traffic.host_writes,
                     internal_reads=traffic.internal_reads,
                     internal_writes=traffic.internal_writes)
        return StepResult(step=self.step_count, loss=loss, grad_norm=norm,
                          overflow=overflow, traffic=traffic)

    def _absorb_child_traffic(self, resp: Dict[str, object]) -> None:
        """Fold a child task's device-internal byte deltas into the meter."""
        self.meter.add_internal_read(int(resp.get("internal_read", 0)))
        self.meter.add_internal_write(int(resp.get("internal_write", 0)))

    def _absorb_demotion(self, resp: Dict[str, object]) -> None:
        """Adopt a child-reported demotion into the host-side bookkeeping.

        The child has already marked its device dead, salvaged masters +
        states (exactly replaying any in-flight subgroup work) and
        published them through the shard channel; the parent copies them
        into ``_host_shards``, refreshes the FP16 working copy when an
        update was recovered, and raises the same incident the thread
        path would.
        """
        index = int(resp["index"])
        shard = self.shards[index]
        cause = str(resp.get("cause", "worker fault"))
        cause_type = str(resp.get("cause_type", "FaultError"))
        masters, states = self._proc.salvage_arrays(index)
        self._host_shards[index] = {"master_params": masters, **states}
        if resp.get("recovered"):
            max_sub = min(self.config.subgroup_elements, shard.count)
            for subgroup in plan_subgroups(shard.count, max_sub):
                sl = slice(subgroup.start,
                           subgroup.start + subgroup.count)
                self._install_host_subgroup(index, subgroup, masters[sl])
        self.demotions.append((index, cause))
        telemetry.counter("faults_demotions_total", device=index)
        kind = ("retry_exhausted" if resp.get("retry_exhausted")
                else "device_dropout")
        self._record_incident(
            kind, key=f"{kind}:device{index}",
            message=(f"device {index} demoted to host-CPU path "
                     f"({cause_type}: {cause})"),
            device=index, cause=cause_type)

    def _install_upstream_shard(self, index: int) -> None:
        """Install one healthy shard's updated masters from its channel.

        The child wrote final (already dequantized, for §VIII-B runs)
        FP32 masters into the channel's upstream region subgroup by
        subgroup; by end of step only the final values matter, so one
        whole-shard install is bit-identical to the thread path's
        per-subgroup installs.
        """
        shard = self.shards[index]
        values = self._proc.upstream_view(index)
        if self.pruning_mask is not None:
            values = values.copy()
            self.pruning_mask.slice(shard.start, shard.count).apply(values)
        self.space.install_fp16_slice(shard.start, values)

    def fault_stats(self) -> Dict[str, object]:
        """Cumulative fault accounting, merged across worker processes."""
        stats = super().fault_stats()
        if getattr(self, "_proc", None) is not None:
            self._proc.merge_fault_stats(stats)
        return stats

    # ------------------------------------------------------------------
    # checkpoint hooks (both backends)
    # ------------------------------------------------------------------
    def gather_state_arrays(self) -> Dict[str, np.ndarray]:
        """Flat masters + moments (+ EF residuals) for checkpointing.

        Maintenance traffic, outside the fault domain; demoted shards
        are gathered from their host-resident copies, so checkpointing
        keeps working after graceful degradation — exactly when a
        checkpoint matters most.
        """
        if self._proc is not None:
            return self._proc.gather_state(self._host_shards)
        arrays: Dict[str, List[np.ndarray]] = {
            "master_params": [], **{n: [] for n in self._state_names}}
        with fault_bypass(self.faults):
            for index, device in enumerate(self.devices):
                source = self._host_shards.get(index)
                if source is None:
                    source = {name: device.store.read_array(name)
                              for name in ("master_params",
                                           *self._state_names)}
                arrays["master_params"].append(source["master_params"])
                for name in self._state_names:
                    arrays[name].append(source[name])
        out = {name: np.concatenate(parts)
               for name, parts in arrays.items()}
        # SmartComp's error-feedback residuals are training state too:
        # without them a resumed compressed run diverges.
        if any(fb is not None for fb in self.feedback):
            out["ef_residual"] = np.concatenate(
                [feedback.residual for feedback in self.feedback])
        return out

    def scatter_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Write flat masters + moments back into shard storage."""
        if self._proc is not None:
            self._proc.scatter_state(arrays, self._host_shards)
            return
        with fault_bypass(self.faults):
            for index, (device, shard) in enumerate(
                    zip(self.devices, self.shards)):
                view = slice(shard.start, shard.end)
                target = self._host_shards.get(index)
                if target is not None:
                    target["master_params"][:] = \
                        arrays["master_params"][view]
                    for name in self._state_names:
                        target[name][:] = arrays[name][view]
                else:
                    device.store.write_array("master_params",
                                             arrays["master_params"][view])
                    for name in self._state_names:
                        device.store.write_array(name, arrays[name][view])
                feedback = self.feedback[index]
                if feedback is not None and "ef_residual" in arrays:
                    feedback.residual[:] = arrays["ef_residual"][view]

    def _offload_gradients(self, flat_grads: np.ndarray
                           ) -> List[Optional[CompressedGradient]]:
        """Backward-phase offload: write each shard's gradients to its
        owner CSD (dense, or GPU-compressed for SmartComp).

        Fans out across the worker pool: per-shard Top-K selection
        (``argpartition``) and the device write touch only that shard's
        slice, error-feedback residual and backing file, so the devices'
        offloads are independent.

        Resilience: compression (which mutates the error-feedback
        residual) happens exactly once, *before* any device I/O, so a
        device failure during the write can reuse the already-computed
        stream instead of recompressing — double-applying the residual
        would break bit-identity.  A demoted device gets no I/O at all;
        its compressed stream still feeds the host-CPU update path.
        """
        return self._pool.map_ordered(
            lambda index: self._offload_device(index, flat_grads),
            range(self.num_csds))

    def _offload_device(self, index: int, flat_grads: np.ndarray
                        ) -> Optional[CompressedGradient]:
        """Offload one shard's gradients to its owner CSD (see
        :meth:`_offload_gradients` for the resilience contract)."""
        ratio = self.config.compression_ratio
        device = self.devices[index]
        shard = self.shards[index]
        with telemetry.trace_span(
                "offload_device", device=index,
                resource="host-link-down",
                worker=threading.current_thread().name):
            shard_grads = flat_grads[shard.start:shard.end]
            compressed = None
            if ratio is not None:
                # The |g| magnitude pass stages in this worker
                # thread's arena instead of a fresh shard-sized
                # temporary per iteration.
                with thread_arena().checkout(shard.count) as scratch:
                    compressed = compress_with_feedback(
                        shard_grads, self.feedback[index], ratio,
                        abs_scratch=scratch)
            if index in self._host_shards:
                return compressed
            try:
                if compressed is None:
                    device.host_write("grads", shard_grads)
                    self.meter.add_host_write(4 * shard.count)
                else:
                    device.host_write("comp_indices",
                                      compressed.indices)
                    device.host_write("comp_values", compressed.values)
                    self.meter.add_host_write(compressed.nbytes)
            except (DeviceFailedError, RetryExhaustedError) as exc:
                # No update was in flight, so the device holds a
                # consistent post-previous-step shard: demote now and
                # let the update phase run this step host-side.
                self._demote_device(index, exc)
            return compressed

    def _update_device_guarded(self, index: int,
                               compressed: Optional[CompressedGradient],
                               flat_grads: np.ndarray) -> None:
        """Route one shard's update: near-storage, or host-CPU if demoted.

        A permanent device failure (or an exhausted retry budget — the
        next rung of the degradation ladder) during the near-storage pass
        triggers demotion with exact recovery, so the step's result is
        bit-identical to a fault-free run.
        """
        if index in self._host_shards:
            self._host_update_shard(index, compressed, flat_grads)
            return
        committed_params: Set[int] = set()
        committed_states: Set[Tuple[str, int]] = set()
        try:
            self._update_device(index, compressed, committed_params,
                                committed_states)
        except (DeviceFailedError, RetryExhaustedError) as exc:
            self._demote_device(
                index, exc,
                in_flight=(compressed, flat_grads, committed_params,
                           committed_states))

    def _update_device(self, index: int,
                       compressed: Optional[CompressedGradient],
                       committed_params: Set[int],
                       committed_states: Set[Tuple[str, int]]) -> None:
        """Near-storage update of one device's shard (Fig. 4b / Fig. 6b).

        ``committed_params``/``committed_states`` collect which subgroup
        slices durably reached the SSD, so a mid-pass device failure can
        be recovered exactly (see :meth:`_recover_in_flight`).
        """
        device = self.devices[index]
        shard = self.shards[index]
        handler = self.handlers[index]
        kernel = self.kernels[index]
        max_sub = min(self.config.subgroup_elements, shard.count)
        subgroups = plan_subgroups(shard.count, max_sub)

        load_grads, release_grads = self._make_grad_loader(
            index, compressed, subgroups)

        def on_params_written(subgroup: Subgroup) -> None:
            # The urgent write-back just landed: record the commit before
            # the upstream transfer, which may itself hit a fault.
            committed_params.add(subgroup.start)
            with telemetry.trace_span("upstream_subgroup", device=index,
                                      subgroup=subgroup.index,
                                      resource="host-link-up"):
                self._upstream_subgroup(index, subgroup)

        def on_state_written(name: str, subgroup: Subgroup) -> None:
            committed_states.add((name, subgroup.start))

        with telemetry.trace_span("device_update", device=index,
                                  subgroups=len(subgroups),
                                  worker=threading.current_thread().name):
            try:
                if handler is not None:
                    handler.run_update_pass(subgroups, kernel,
                                            self.step_count, load_grads,
                                            on_params_written)
                else:
                    naive_update_pass(device, subgroups, kernel,
                                      self.step_count, self._state_names,
                                      load_grads, on_params_written,
                                      on_state_written)
            finally:
                release_grads()

    # ------------------------------------------------------------------
    # graceful degradation (demotion to the host-CPU update path)
    # ------------------------------------------------------------------
    def _dense_shard_grads(self, index: int,
                           compressed: Optional[CompressedGradient],
                           flat_grads: np.ndarray) -> np.ndarray:
        """The gradient vector the device's kernel would have consumed."""
        shard = self.shards[index]
        return dense_shard_grads(compressed,
                                 flat_grads[shard.start:shard.end])

    def _demote_device(self, index: int, cause: BaseException,
                       in_flight=None) -> None:
        """Permanently move one device's shard to the host-CPU path.

        Salvages the shard's masters and optimizer states off the failed
        device's NVMe namespace (the emulated maintenance path — reads
        bypass the fault domain), recovers any half-finished update pass
        exactly, and from then on the shard updates like the paper's
        baseline.  Training output stays bit-identical throughout.
        """
        device = self.devices[index]
        shard = self.shards[index]
        handler = self.handlers[index]
        with telemetry.trace_span("engine.demote", device=index,
                                  cause=type(cause).__name__):
            if self.faults is not None:
                # An exhausted retry budget demotes too: mark the device
                # dead so any straggling I/O fails fast instead of
                # burning more backoff time.
                self.faults.fail_device(index, reason=str(cause))
            committed_states: Set[Tuple[str, int]] = set()
            if handler is not None:
                # Join the lazy write-back worker; its commit log is
                # final only after the join.
                handler.abandon()
                committed_states |= handler.state_commits
            with fault_bypass(self.faults):
                masters = device.store.read_array("master_params")
                states = {name: device.store.read_array(name)
                          for name in self._state_names}
            if in_flight is not None:
                compressed, flat_grads, committed_params, naive_states = \
                    in_flight
                committed_states |= naive_states
                self._recover_in_flight(index, masters, states, compressed,
                                        flat_grads, committed_params,
                                        committed_states)
            self._host_shards[index] = {"master_params": masters, **states}
            if in_flight is not None:
                # Refresh the FP16 working copy for the whole shard: some
                # subgroups never upstreamed, and recovery may have
                # changed masters for partially-written ones.  Re-install
                # is idempotent for the rest.
                max_sub = min(self.config.subgroup_elements, shard.count)
                for subgroup in plan_subgroups(shard.count, max_sub):
                    sl = slice(subgroup.start,
                               subgroup.start + subgroup.count)
                    self._install_host_subgroup(index, subgroup,
                                                masters[sl])
            self.demotions.append((index, str(cause)))
            telemetry.counter("faults_demotions_total", device=index)
            device.close()
        # Incident capture happens after the demotion span closes so the
        # flight dump's tail reads: fault event -> demotion span -> alert.
        kind = ("retry_exhausted"
                if isinstance(cause, RetryExhaustedError)
                else "device_dropout")
        self._record_incident(
            kind, key=f"{kind}:device{index}",
            message=(f"device {index} demoted to host-CPU path "
                     f"({type(cause).__name__}: {cause})"),
            device=index, cause=type(cause).__name__)

    def _recover_in_flight(self, index: int, masters: np.ndarray,
                           states: Dict[str, np.ndarray],
                           compressed: Optional[CompressedGradient],
                           flat_grads: np.ndarray,
                           committed_params: Set[int],
                           committed_states: Set[Tuple[str, int]]) -> None:
        """Finish a mid-pass-interrupted update exactly, on the host.

        See :func:`recover_in_flight` for the exactness argument.
        """
        grads = self._dense_shard_grads(index, compressed, flat_grads)
        recover_in_flight(self.optimizer, self._state_names,
                          self.config.subgroup_elements, masters, states,
                          grads, self.step_count, committed_params,
                          committed_states)

    def _host_update_shard(self, index: int,
                           compressed: Optional[CompressedGradient],
                           flat_grads: np.ndarray) -> None:
        """One degraded step: update a demoted shard on the host CPU.

        The paper's baseline dataflow (Fig. 4a) applied to just this
        shard, against host-resident state — same element-wise
        arithmetic, so the trajectory stays bit-identical to the
        fault-free run.
        """
        shard = self.shards[index]
        host = self._host_shards[index]
        masters = host["master_params"]
        grads = self._dense_shard_grads(index, compressed, flat_grads)
        max_sub = min(self.config.subgroup_elements, shard.count)
        subgroups = plan_subgroups(shard.count, max_sub)
        with telemetry.trace_span("device_update.degraded", device=index,
                                  subgroups=len(subgroups),
                                  resource="host-cpu",
                                  worker=threading.current_thread().name):
            for subgroup in subgroups:
                sl = slice(subgroup.start,
                           subgroup.start + subgroup.count)
                state = {name: host[name][sl]
                         for name in self._state_names}
                self.optimizer.step(masters[sl], grads[sl], state,
                                    self.step_count)
                self._install_host_subgroup(index, subgroup, masters[sl])
        self.degraded_steps += 1
        telemetry.counter("faults_degraded_steps_total", device=index)

    def _install_host_subgroup(self, index: int, subgroup: Subgroup,
                               masters_slice: np.ndarray) -> None:
        """Host-side twin of :meth:`_upstream_subgroup`'s install step.

        Emulates the quantize -> dequantize upstream round-trip (exact:
        the device path stores int8 values and float32 scales verbatim)
        and the pruning mask, then refreshes the FP16 working copy.
        """
        shard = self.shards[index]
        quantizer = self.quantizers[index]
        global_start = shard.start + subgroup.start
        if quantizer is None:
            values = masters_slice
            if self.pruning_mask is not None:
                values = values.copy()
        else:
            values = dequantize_int8(quantizer.run(masters_slice))
        if self.pruning_mask is not None:
            self.pruning_mask.slice(global_start, subgroup.count).apply(
                values)
        self.space.install_fp16_slice(global_start, values)

    def _upstream_subgroup(self, index: int, subgroup: Subgroup) -> None:
        """Upstream one subgroup's updated parameters to the host.

        Plain flow (Fig. 4b step 4): the host reads the FP32 masters (2M
        total) and refreshes the FP16 working copy immediately, so the
        next forward can start early.

        Quantized flow (§VIII-B): the CSD quantizes the masters (still
        resident in FPGA DRAM after the update) to int8 + per-group
        scales, writes them over the internal path, and the host reads
        only the compressed form — ~4x less upstream traffic — then
        dequantizes for the straight-through-estimator forward pass.
        """
        device = self.devices[index]
        shard = self.shards[index]
        quantizer = self.quantizers[index]
        global_start = shard.start + subgroup.start

        if quantizer is None:
            # Read straight into an arena block; the FP16 install copies
            # out of it, so the scratch is released before returning.
            with thread_arena().checkout(subgroup.count) as scratch:
                values = device.host_read_into("master_params", scratch,
                                               subgroup.start,
                                               subgroup.count)
                self.meter.add_host_read(4 * subgroup.count)
                if self.pruning_mask is not None:
                    self.pruning_mask.slice(
                        global_start, subgroup.count).apply(values)
                self.space.install_fp16_slice(global_start, values)
            return
        else:
            # Quantize on the CSD.  The masters are already in FPGA DRAM
            # after the urgent write-back, so no extra P2P read is needed;
            # we fetch them through the store un-metered to emulate that.
            with thread_arena().checkout(subgroup.count) as scratch:
                masters = device.store.read_slice_into(
                    "master_params", subgroup.start, subgroup.count,
                    scratch)
                quantized = quantizer.run(masters)
            config = self.config
            max_sub = min(config.subgroup_elements, shard.count)
            groups_per_sub = -(-max_sub // config.quantization_group)
            scale_offset = subgroup.index * groups_per_sub
            device.p2p_write("masters_q", subgroup.start, quantized.values)
            device.p2p_write("masters_scales", scale_offset,
                             quantized.scales)
            # Host reads the compressed form only.
            q_values = device.host_read("masters_q", subgroup.start,
                                        subgroup.count)
            scales = device.host_read("masters_scales", scale_offset,
                                      quantized.scales.size)
            self.meter.add_host_read(subgroup.count + 4 * scales.size)
            values = dequantize_int8(QuantizedTensor(
                values=q_values.astype(np.int8), scales=scales,
                group_size=config.quantization_group,
                original_size=subgroup.count))

        if self.pruning_mask is not None:
            self.pruning_mask.slice(global_start, subgroup.count).apply(
                values)
        self.space.install_fp16_slice(global_start, values)

    def _make_grad_loader(self, index: int,
                          compressed: Optional[CompressedGradient],
                          subgroups: Sequence[Subgroup]
                          ) -> Tuple[Callable[[Subgroup, np.ndarray],
                                              np.ndarray],
                                     Callable[[], None]]:
        """Per-subgroup gradient loader (see :func:`make_grad_loader`)."""
        return make_grad_loader(self.devices[index],
                                self.decompressors[index], compressed,
                                subgroups)

    # ------------------------------------------------------------------
    def _release(self, abandon: bool = False) -> None:
        """Release pool, handlers and devices (safe on partial state)."""
        self._teardown_flight()
        self._close_spill()
        if getattr(self, "_proc", None) is not None:
            self._proc.close(abandon=abandon)
        if self._pool is not None:
            self._pool.close()
        for handler in self.handlers:
            if handler is not None:
                if abandon:
                    handler.abandon()
                else:
                    handler.close()
        for device in self.devices:
            device.close()

    def close(self) -> None:
        """Release every device/thread. Idempotent; demoted devices (and
        their abandoned handlers) are already closed and are skipped."""
        if self._closed:
            return
        self._closed = True
        self._release()

    def __enter__(self) -> "SmartInfinityEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
