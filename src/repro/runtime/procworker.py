"""Process-backed CSD shard workers over shared-memory channels.

The thread pool in :mod:`repro.runtime.parallel` gives the Fig. 11
fan-out its structure, but CPython's GIL caps how much of the per-device
work (Top-K ``argpartition``, optimizer ufuncs, int8 quantization) truly
overlaps.  This module moves each CSD's state machine into a persistent
worker *process*:

* every shard gets a :class:`ShardChannel` — a set of fixed regions
  (gradients down, updated masters up, optimizer-state rows, the
  compressed stream, the error-feedback residual) checked out of one
  :class:`~repro.memory.SharedMemoryArena`, so both sides address the
  same physical pages through ndarray views;
* the task pipe carries **descriptors and scalars only** — region
  offsets at init, ``(step_count, lr)`` per update, byte counts and
  fault snapshots back.  :func:`repro.runtime.parallel._check_payload`
  enforces that no ndarray ever crosses the pipe;
* the child owns everything device-shaped: the emulated SmartSSD and its
  backing file, the transfer handler and its lazy-writeback thread, the
  updater/decompressor/quantizer kernels, the error-feedback residual,
  and its *own* :class:`~repro.faults.FaultInjector` built from the same
  plan — fault streams are seeded per device id, so the injected
  sequence is identical to thread mode and chaos runs stay bit-exact;
* telemetry hops the boundary by forwarding: each task response drains
  the child's span tracer and flight recorder (absolute timestamps,
  rebased on ingest), so parent dumps interleave child fault events with
  host-side alerts in one ordered timeline.

The per-shard arithmetic itself is not duplicated: the child calls the
same module-level helpers (:func:`~repro.runtime.smart.build_shard_device`,
:func:`~repro.runtime.smart.recover_in_flight`, ...) the thread engine
uses, which is what makes ``backend=process`` bit-identical to
``backend=thread`` by construction.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import telemetry
from ..compression.error_feedback import ErrorFeedback, compress_with_feedback
from ..compression.topk import CompressedGradient, keep_count
from ..csd.handler import (Subgroup, TransferHandler, naive_update_pass,
                           plan_subgroups)
from ..csd.kernels import DecompressorKernel, UpdaterKernel
from ..errors import DeviceFailedError, RetryExhaustedError, TrainingError
from ..memory import (SEGMENT_ALIGN, SharedMemoryArena, SharedSegment,
                      size_class, thread_arena)
from ..modelcomp.quantization import QuantizerKernel, QuantizedTensor, \
    dequantize_int8
from ..optim import make_optimizer
from ..telemetry import flight
from ..telemetry.flight import DEFAULT_CAPACITY, FlightRecorder
from .parallel import ProcessCSDWorkerPool
from .partition import Shard


# ----------------------------------------------------------------------
# the shard channel: one shard's shared-memory regions
# ----------------------------------------------------------------------

class ShardChannel:
    """One CSD shard's fixed shared-memory regions.

    All tensor traffic between parent and child flows through these
    views; the pipe only ever names them.  Regions double up across
    phases — ``upstream`` carries the initial masters down at init, the
    updated masters up each step, and the salvaged masters after a
    demotion — which keeps the footprint at a handful of shard-sized
    rows per device.
    """

    def __init__(self, arena: SharedMemoryArena, shard: Shard, config,
                 state_names: Sequence[str]) -> None:
        count = shard.count
        self.grads = arena.acquire(count, np.float32)
        self.upstream = arena.acquire(count, np.float32)
        self.states = {name: arena.acquire(count, np.float32)
                       for name in state_names}
        self.comp_indices: Optional[np.ndarray] = None
        self.comp_values: Optional[np.ndarray] = None
        self.residual: Optional[np.ndarray] = None
        if config.compression_ratio is not None:
            kept = keep_count(count, config.compression_ratio)
            self.comp_indices = arena.acquire(kept, np.int32)
            self.comp_values = arena.acquire(kept, np.float32)
            if config.error_feedback:
                self.residual = arena.acquire(count, np.float32)

    def _regions(self) -> Dict[str, Optional[np.ndarray]]:
        named: Dict[str, Optional[np.ndarray]] = {
            "grads": self.grads, "upstream": self.upstream,
            "comp_indices": self.comp_indices,
            "comp_values": self.comp_values, "residual": self.residual,
        }
        for name, view in self.states.items():
            named[f"state:{name}"] = view
        return named

    def describe(self, arena: SharedMemoryArena) -> Dict[str, Tuple]:
        """Picklable ``name -> (offset, count, dtype)`` region table."""
        return {name: (arena.offset_of(view), int(view.size),
                       view.dtype.str)
                for name, view in self._regions().items()
                if view is not None}


def _channel_capacity(shards: Sequence[Shard], config,
                      num_states: int) -> int:
    """Segment bytes needed for every shard's channel, with slack for
    the arena's power-of-two size classes and per-block alignment."""
    total = 0
    for shard in shards:
        rows = [(shard.count, 4), (shard.count, 4)]  # grads + upstream
        rows += [(shard.count, 4)] * num_states
        if config.compression_ratio is not None:
            kept = keep_count(shard.count, config.compression_ratio)
            rows += [(kept, 4), (kept, 4)]
            if config.error_feedback:
                rows.append((shard.count, 4))
        for elements, itemsize in rows:
            total += size_class(elements) * itemsize + 2 * SEGMENT_ALIGN
    return total


# ----------------------------------------------------------------------
# child-process side
# ----------------------------------------------------------------------

# Per-process worker registry. Sticky routing in ProcessCSDWorkerPool
# guarantees shard index j always lands on worker j % workers, so each
# child process only ever sees its own indexes.
_STATE: Dict[str, object] = {
    "workers": {},        # index -> _ShardWorker
    "segments": {},       # segment name -> attached SharedSegment
    "flight_cursor": 0,
    "flight_capacity": DEFAULT_CAPACITY,
    "reset": False,
}


def _attach_segment(descriptor: Dict[str, object]) -> SharedSegment:
    segments: Dict[str, SharedSegment] = _STATE["segments"]
    name = str(descriptor["name"])
    segment = segments.get(name)
    if segment is None:
        segment = SharedSegment.attach(descriptor)
        segments[name] = segment
    return segment


def _sync_telemetry(task: Dict[str, object]) -> None:
    """Match this child's telemetry globals to the parent's, per task.

    Forked children inherit the parent's installed recorder/session
    *objects*; the first task sheds them (their contents belong to the
    parent) and from then on the child runs its own, created and torn
    down as the parent's flags flip.
    """
    if not _STATE["reset"]:
        telemetry.disable()
        flight.install(None)
        _STATE["reset"] = True
    spans_on = bool(task.get("spans"))
    if spans_on and not telemetry.enabled():
        telemetry.enable()
    elif not spans_on and telemetry.enabled():
        telemetry.disable()
    flight_on = bool(task.get("flight"))
    recorder = flight.active_recorder()
    if flight_on and recorder is None:
        flight.install(FlightRecorder(
            capacity_per_worker=int(_STATE["flight_capacity"])))
        _STATE["flight_cursor"] = 0
    elif not flight_on and recorder is not None:
        flight.install(None)


def _drain_telemetry(resp: Dict[str, object]) -> None:
    """Attach this child's new events and spans to a task response."""
    recorder = flight.active_recorder()
    if recorder is not None:
        cursor, events = recorder.export_since(
            int(_STATE["flight_cursor"]))
        _STATE["flight_cursor"] = cursor
        if events:
            resp["events"] = events
    session = telemetry.active()
    if session is not None:
        spans = session.tracer.export_drain()
        if spans:
            resp["spans"] = spans


class _ShardWorker:
    """One CSD's complete state machine, resident in a child process."""

    def __init__(self, task: Dict[str, object]) -> None:
        # Deferred import: smart.py imports this module for the
        # coordinator, so the child-side helpers are bound lazily.
        from .smart import build_shard_device

        self.index = int(task["index"])
        self.shard: Shard = task["shard"]
        self.config = task["config"]
        self.state_names = list(task["state_names"])
        self.demoted = False
        config = self.config

        self.optimizer = make_optimizer(config.optimizer,
                                        **config.optimizer_kwargs)
        from .engine import fault_bypass, make_fault_injector
        self._fault_bypass = fault_bypass
        self.faults = make_fault_injector(config)
        site = (self.faults.site(self.shard.device_id)
                if self.faults is not None else None)
        self.device = build_shard_device(
            str(task["storage_dir"]), self.shard, config,
            self.state_names, int(task["states_per_param"]), site)

        segment = _attach_segment(task["segment"])
        views: Dict[str, np.ndarray] = {}
        for name, (offset, count, dtype) in task["regions"].items():
            views[name] = segment.view(int(offset), int(count), dtype)
        self.grads = views["grads"]
        self.upstream = views["upstream"]
        self.states = {name: views[f"state:{name}"]
                       for name in self.state_names}
        self.comp_indices = views.get("comp_indices")
        self.comp_values = views.get("comp_values")
        self.residual = views.get("residual")

        self.kernel = UpdaterKernel(
            self.optimizer, chunk_elements=config.kernel_chunk_elements)
        self.decompressor = DecompressorKernel(
            chunk_elements=config.kernel_chunk_elements)
        max_sub = min(config.subgroup_elements, self.shard.count)
        self.handler: Optional[TransferHandler] = None
        if config.use_transfer_handler:
            self.handler = TransferHandler(self.device, self.state_names,
                                           max_sub)
        self.feedback: Optional[ErrorFeedback] = None
        if config.compression_ratio is not None and config.error_feedback:
            self.feedback = ErrorFeedback(self.shard.count)
        self.quantizer: Optional[QuantizerKernel] = None
        if config.quantized_upstream:
            group = config.quantization_group
            chunk = max(group,
                        (config.kernel_chunk_elements // group) * group)
            self.quantizer = QuantizerKernel(group_size=group,
                                             chunk_elements=chunk)
        self._compressed: Optional[CompressedGradient] = None

        # Initial placement, exactly as the thread engine does it: the
        # parent handed this shard's masters down through the upstream
        # region (setup traffic, outside the fault domain).
        with self._fault_bypass(self.faults):
            self.device.store.write_array("master_params", self.upstream)
            zero = np.zeros(self.shard.count, dtype=np.float32)
            for name in self.state_names:
                self.device.store.write_array(name, zero)

    # ------------------------------------------------------------------
    def _base_resp(self) -> Dict[str, object]:
        return {"index": self.index, "host_write": 0, "host_read": 0,
                "internal_read": 0, "internal_write": 0,
                "demoted_now": False}

    def _traffic_snapshot(self) -> Tuple[int, int]:
        traffic = self.device.internal_traffic
        return traffic.bytes_read, traffic.bytes_written

    def _finish_traffic(self, resp: Dict[str, object],
                        snapshot: Tuple[int, int]) -> None:
        traffic = self.device.internal_traffic
        resp["internal_read"] = traffic.bytes_read - snapshot[0]
        resp["internal_write"] = traffic.bytes_written - snapshot[1]

    # ------------------------------------------------------------------
    # the two per-step tasks
    # ------------------------------------------------------------------
    def offload(self) -> Dict[str, object]:
        """Mirror of the thread engine's ``offload_one`` for this shard.

        Compression (which mutates the child-resident error-feedback
        residual) runs exactly once and the stream is published to the
        channel *before* any device I/O, so the parent's host-CPU path
        can consume it after a demotion at any point of the step.
        """
        resp = self._base_resp()
        snapshot = self._traffic_snapshot()
        ratio = self.config.compression_ratio
        with telemetry.trace_span(
                "offload_device", device=self.index,
                resource="host-link-down",
                worker=threading.current_thread().name):
            compressed = None
            if ratio is not None:
                with thread_arena().checkout(self.shard.count) as scratch:
                    compressed = compress_with_feedback(
                        self.grads, self.feedback, ratio,
                        abs_scratch=scratch)
                np.copyto(self.comp_indices, compressed.indices)
                np.copyto(self.comp_values, compressed.values)
            self._compressed = compressed
            if self.demoted:
                return resp
            try:
                if compressed is None:
                    self.device.host_write("grads", self.grads)
                    resp["host_write"] = 4 * self.shard.count
                else:
                    self.device.host_write("comp_indices",
                                           compressed.indices)
                    self.device.host_write("comp_values",
                                           compressed.values)
                    resp["host_write"] = compressed.nbytes
            except (DeviceFailedError, RetryExhaustedError) as exc:
                self._finish_traffic(resp, snapshot)
                self._demote(exc, resp)
                return resp
        self._finish_traffic(resp, snapshot)
        return resp

    def step(self, step_count: int, lr: float,
             do_update: bool) -> Dict[str, object]:
        """Fused offload+update for the interleaved schedule.

        Runs this shard's offload and (when the parent's scaler verdict
        allows) its near-storage update back-to-back in one task, so
        shard chains overlap freely across worker processes with no
        offload barrier.  The per-device operation sequence is exactly
        offload-then-update — identical to the phased two-task protocol
        — so results and fault streams are bit-identical.
        """
        resp = self.offload()
        if not do_update or self.demoted:
            return resp
        upd = self.update(step_count, lr)
        for key in ("host_write", "host_read", "internal_read",
                    "internal_write"):
            resp[key] = int(resp.get(key, 0)) + int(upd.get(key, 0))
        if upd.get("demoted_now"):
            for key in ("demoted_now", "recovered", "cause",
                        "cause_type", "retry_exhausted"):
                resp[key] = upd[key]
        return resp

    def update(self, step_count: int, lr: float) -> Dict[str, object]:
        """Near-storage update + upstream transfer for this shard."""
        resp = self._base_resp()
        if self.demoted:
            return resp
        snapshot = self._traffic_snapshot()
        self.optimizer.lr = lr
        committed_params: Set[int] = set()
        committed_states: Set[Tuple[str, int]] = set()
        try:
            self._update_pass(step_count, resp, committed_params,
                              committed_states)
            self._finish_traffic(resp, snapshot)
        except (DeviceFailedError, RetryExhaustedError) as exc:
            self._finish_traffic(resp, snapshot)
            self._demote(exc, resp, step_count=step_count,
                         in_flight=(committed_params, committed_states))
        return resp

    def _update_pass(self, step_count: int, resp: Dict[str, object],
                     committed_params: Set[int],
                     committed_states: Set[Tuple[str, int]]) -> None:
        from .smart import make_grad_loader

        config = self.config
        max_sub = min(config.subgroup_elements, self.shard.count)
        subgroups = plan_subgroups(self.shard.count, max_sub)
        load_grads, release_grads = make_grad_loader(
            self.device, self.decompressor, self._compressed, subgroups)

        def on_params_written(subgroup: Subgroup) -> None:
            committed_params.add(subgroup.start)
            with telemetry.trace_span("upstream_subgroup",
                                      device=self.index,
                                      subgroup=subgroup.index,
                                      resource="host-link-up"):
                self._upstream_subgroup(subgroup, resp)

        def on_state_written(name: str, subgroup: Subgroup) -> None:
            committed_states.add((name, subgroup.start))

        with telemetry.trace_span("device_update", device=self.index,
                                  subgroups=len(subgroups),
                                  worker=threading.current_thread().name):
            try:
                if self.handler is not None:
                    self.handler.run_update_pass(subgroups, self.kernel,
                                                 step_count, load_grads,
                                                 on_params_written)
                else:
                    naive_update_pass(self.device, subgroups, self.kernel,
                                      step_count, self.state_names,
                                      load_grads, on_params_written,
                                      on_state_written)
            finally:
                release_grads()

    def _upstream_subgroup(self, subgroup: Subgroup,
                           resp: Dict[str, object]) -> None:
        """Upstream one subgroup's masters into the channel.

        Same transfer arithmetic as the thread engine's
        ``_upstream_subgroup``, but the destination is the shared
        ``upstream`` region instead of the flat parameter space — the
        parent applies pruning and the FP16 install on its side.
        """
        sl = slice(subgroup.start, subgroup.start + subgroup.count)
        device = self.device
        if self.quantizer is None:
            device.host_read_into("master_params", self.upstream[sl],
                                  subgroup.start, subgroup.count)
            resp["host_read"] += 4 * subgroup.count
            return
        with thread_arena().checkout(subgroup.count) as scratch:
            masters = device.store.read_slice_into(
                "master_params", subgroup.start, subgroup.count, scratch)
            quantized = self.quantizer.run(masters)
        config = self.config
        max_sub = min(config.subgroup_elements, self.shard.count)
        groups_per_sub = -(-max_sub // config.quantization_group)
        scale_offset = subgroup.index * groups_per_sub
        device.p2p_write("masters_q", subgroup.start, quantized.values)
        device.p2p_write("masters_scales", scale_offset, quantized.scales)
        q_values = device.host_read("masters_q", subgroup.start,
                                    subgroup.count)
        scales = device.host_read("masters_scales", scale_offset,
                                  quantized.scales.size)
        resp["host_read"] += subgroup.count + 4 * scales.size
        self.upstream[sl] = dequantize_int8(QuantizedTensor(
            values=q_values.astype(np.int8), scales=scales,
            group_size=config.quantization_group,
            original_size=subgroup.count))

    # ------------------------------------------------------------------
    # demotion (child half of graceful degradation)
    # ------------------------------------------------------------------
    def _demote(self, cause: BaseException, resp: Dict[str, object],
                step_count: int = 0, in_flight=None) -> None:
        """Salvage this shard into the channel and mark the device dead.

        The child does everything device-local — abandoning the lazy
        writer, the maintenance-path salvage reads, the exact in-flight
        recovery — then publishes masters through ``upstream`` and the
        optimizer states through their rows.  The parent absorbs those
        into its host-shard bookkeeping and records the incident.
        """
        from .smart import dense_shard_grads, recover_in_flight

        with telemetry.trace_span("engine.demote", device=self.index,
                                  cause=type(cause).__name__):
            if self.faults is not None:
                self.faults.fail_device(self.shard.device_id,
                                        reason=str(cause))
            committed_states: Set[Tuple[str, int]] = set()
            if self.handler is not None:
                self.handler.abandon()
                committed_states |= self.handler.state_commits
            with self._fault_bypass(self.faults):
                masters = self.device.store.read_array("master_params")
                states = {name: self.device.store.read_array(name)
                          for name in self.state_names}
            if in_flight is not None:
                committed_params, naive_states = in_flight
                committed_states |= naive_states
                grads = dense_shard_grads(self._compressed, self.grads)
                recover_in_flight(self.optimizer, self.state_names,
                                  self.config.subgroup_elements, masters,
                                  states, grads, step_count,
                                  committed_params, committed_states)
            np.copyto(self.upstream, masters)
            for name in self.state_names:
                np.copyto(self.states[name], states[name])
            self.demoted = True
            self.device.close()
        resp.update(
            demoted_now=True, recovered=in_flight is not None,
            cause=str(cause), cause_type=type(cause).__name__,
            retry_exhausted=isinstance(cause, RetryExhaustedError))

    # ------------------------------------------------------------------
    # checkpoint + teardown tasks
    # ------------------------------------------------------------------
    def read_state(self) -> Dict[str, object]:
        """Publish masters/states (and the EF residual) to the channel."""
        resp = {"index": self.index, "valid": not self.demoted}
        if not self.demoted:
            with self._fault_bypass(self.faults):
                np.copyto(self.upstream,
                          self.device.store.read_array("master_params"))
                for name in self.state_names:
                    np.copyto(self.states[name],
                              self.device.store.read_array(name))
        if self.feedback is not None:
            np.copyto(self.residual, self.feedback.residual)
        return resp

    def write_state(self, restore_residual: bool) -> Dict[str, object]:
        """Adopt channel contents as this shard's state (scatter half)."""
        if not self.demoted:
            with self._fault_bypass(self.faults):
                self.device.store.write_array("master_params",
                                              self.upstream)
                for name in self.state_names:
                    self.device.store.write_array(name, self.states[name])
        if self.feedback is not None and restore_residual:
            np.copyto(self.feedback.residual, self.residual)
        return {"index": self.index}

    def close_worker(self, abandon: bool) -> Dict[str, object]:
        if not self.demoted:
            if self.handler is not None:
                if abandon:
                    self.handler.abandon()
                else:
                    self.handler.close()
            self.device.close()
        return {"index": self.index}

    def fault_snapshot(self) -> Optional[Dict[str, object]]:
        if self.faults is None:
            return None
        return self.faults.stats.snapshot()


def _shard_task(task: Dict[str, object]) -> Dict[str, object]:
    """The single task entry point the pool ships to child processes."""
    _sync_telemetry(task)
    op = str(task["op"])
    index = int(task["index"])
    if op == "init":
        _STATE["flight_capacity"] = int(
            task.get("flight_capacity", DEFAULT_CAPACITY))
        worker = _ShardWorker(task)
        _STATE["workers"][index] = worker
        resp: Dict[str, object] = {"index": index}
    else:
        worker = _STATE["workers"].get(index)
        if worker is None:
            raise TrainingError(
                f"no shard worker for index {index} in this process "
                f"(init task missing or routed elsewhere)")
        if op == "offload":
            resp = worker.offload()
        elif op == "step":
            resp = worker.step(int(task["step_count"]),
                               float(task["lr"]),
                               bool(task["do_update"]))
        elif op == "update":
            resp = worker.update(int(task["step_count"]),
                                 float(task["lr"]))
        elif op == "read_state":
            resp = worker.read_state()
        elif op == "write_state":
            resp = worker.write_state(bool(task.get("residual")))
        elif op == "close":
            resp = worker.close_worker(bool(task.get("abandon")))
        else:
            raise TrainingError(f"unknown shard task op {op!r}")
    resp["worker"] = threading.current_thread().name
    resp["faults"] = worker.fault_snapshot()
    _drain_telemetry(resp)
    return resp


# ----------------------------------------------------------------------
# host-offload blocks (the ZeRO-Offload engine's process backend)
# ----------------------------------------------------------------------

def _host_context(layout: Dict[str, object]) -> Dict[str, object]:
    """This process's cached views + optimizer for one host layout.

    The layout dict is constant for an engine's lifetime, so the child
    resolves it once (attach segment, build views, construct the
    optimizer) and every later block task is just a slice-and-update.
    """
    contexts: Dict[str, Dict[str, object]] = _STATE.setdefault(
        "host_contexts", {})
    key = str(layout["segment"]["name"])
    context = contexts.get(key)
    if context is None:
        segment = _attach_segment(layout["segment"])
        views = {name: segment.view(int(offset), int(count), dtype)
                 for name, (offset, count, dtype)
                 in layout["regions"].items()}
        context = {
            "views": views,
            "optimizer": make_optimizer(str(layout["optimizer"]),
                                        **layout["optimizer_kwargs"]),
        }
        contexts[key] = context
    return context


def _host_update_task(task: Dict[str, object]) -> Dict[str, object]:
    """Update one flat block of host-resident state, in place in shm."""
    _sync_telemetry(task)
    context = _host_context(task["layout"])
    views: Dict[str, np.ndarray] = context["views"]
    optimizer = context["optimizer"]
    optimizer.lr = float(task["lr"])
    start, stop = int(task["start"]), int(task["stop"])
    state = {name[len("state:"):]: view[start:stop]
             for name, view in views.items()
             if name.startswith("state:")}
    optimizer.step(views["masters"][start:stop],
                   views["grads"][start:stop], state, int(task["step"]))
    resp: Dict[str, object] = {"start": start,
                               "worker": threading.current_thread().name}
    _drain_telemetry(resp)
    return resp


def ingest_response(resp: Dict[str, object]) -> None:
    """Fold a child response's forwarded telemetry into this process.

    Shared by the shard coordinator and the host-offload engine: events
    land in the installed flight recorder under the child's worker
    label, spans in the active tracer (rebased to its epoch).
    """
    events = resp.pop("events", None)
    recorder = flight.active_recorder()
    if recorder is not None and events:
        recorder.ingest(str(resp.get("worker", "csd-proc")), events)
    spans = resp.pop("spans", None)
    session = telemetry.active()
    if session is not None and spans:
        session.tracer.ingest(spans)


# ----------------------------------------------------------------------
# parent-process side
# ----------------------------------------------------------------------

class ProcessShardCoordinator:
    """Parent-side handle on the per-CSD worker processes.

    Owns the shared arena, one :class:`ShardChannel` per shard, and the
    :class:`~repro.runtime.parallel.ProcessCSDWorkerPool`.  Every method
    that runs tasks also ingests the children's forwarded telemetry
    (events, spans, fault snapshots) *before* returning, so callers can
    record incidents knowing the triggering child events are already in
    the parent's flight ring.
    """

    def __init__(self, storage_dir: str, shards: Sequence[Shard], config,
                 state_names: Sequence[str], states_per_param: int,
                 masters: np.ndarray, workers: int) -> None:
        self.shards = list(shards)
        self.config = config
        self.state_names = list(state_names)
        self.has_residual = (config.compression_ratio is not None
                             and config.error_feedback)
        self._fault_snapshots: Dict[int, Dict[str, object]] = {}
        self._closed = False
        self.pool: Optional[ProcessCSDWorkerPool] = None
        self.arena = SharedMemoryArena(
            _channel_capacity(self.shards, config, len(self.state_names)),
            name="csd-shards")
        try:
            self.channels = [
                ShardChannel(self.arena, shard, config, self.state_names)
                for shard in self.shards]
            for shard, channel in zip(self.shards, self.channels):
                np.copyto(channel.upstream,
                          masters[shard.start:shard.end])
            self.pool = ProcessCSDWorkerPool(workers)
            descriptor = self.arena.segment.descriptor()
            inits = [{
                "op": "init", "index": index,
                "storage_dir": storage_dir, "shard": shard,
                "config": config,
                "state_names": tuple(self.state_names),
                "states_per_param": int(states_per_param),
                "segment": descriptor,
                "regions": channel.describe(self.arena),
                "flight_capacity": int(config.flight_capacity),
            } for index, (shard, channel) in enumerate(
                zip(self.shards, self.channels))]
            for resp in self.pool.map_ordered(_shard_task, inits):
                self._ingest(resp)
        except BaseException:
            self.close(abandon=True)
            raise

    # ------------------------------------------------------------------
    def _run(self, op: str, **extra: object) -> List[Dict[str, object]]:
        tasks = [{
            "op": op, "index": index,
            "spans": telemetry.enabled(),
            "flight": flight.active_recorder() is not None,
            **extra,
        } for index in range(len(self.shards))]
        responses = self.pool.map_ordered(_shard_task, tasks)
        for resp in responses:
            self._ingest(resp)
        return responses

    def _ingest(self, resp: Dict[str, object]) -> None:
        """Fold one child response's telemetry into the parent's."""
        ingest_response(resp)
        faults = resp.pop("faults", None)
        if faults:
            self._fault_snapshots[int(resp["index"])] = faults

    # ------------------------------------------------------------------
    # per-step protocol
    # ------------------------------------------------------------------
    def offload(self, flat_grads: np.ndarray) -> List[Dict[str, object]]:
        """Phase 1: gradients down through the channels, then the
        children compress (if configured) and write to their devices."""
        for shard, channel in zip(self.shards, self.channels):
            np.copyto(channel.grads, flat_grads[shard.start:shard.end])
        return self._run("offload")

    def update(self, step_count: int, lr: float
               ) -> List[Dict[str, object]]:
        """Phase 2: near-storage updates; masters come back upstream."""
        return self._run("update", step_count=int(step_count),
                         lr=float(lr))

    def step(self, flat_grads: np.ndarray, step_count: int, lr: float,
             do_update: bool) -> List[Dict[str, object]]:
        """Interleaved schedule: one fused offload+update task per shard.

        Gradients go down through the channels once, then each child
        runs its whole chain; the pool pipelines the per-shard tasks, so
        an early shard's update overlaps a late shard's offload.
        """
        for shard, channel in zip(self.shards, self.channels):
            np.copyto(channel.grads, flat_grads[shard.start:shard.end])
        return self._run("step", step_count=int(step_count),
                         lr=float(lr), do_update=bool(do_update))

    # ------------------------------------------------------------------
    # views the engine reads after a step
    # ------------------------------------------------------------------
    def upstream_view(self, index: int) -> np.ndarray:
        return self.channels[index].upstream

    def compressed_view(self, index: int) -> Optional[CompressedGradient]:
        """This step's compressed stream for one shard (host-CPU path)."""
        channel = self.channels[index]
        if channel.comp_indices is None:
            return None
        return CompressedGradient(indices=channel.comp_indices,
                                  values=channel.comp_values,
                                  original_size=self.shards[index].count)

    def salvage_arrays(self, index: int
                       ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Private copies of a demoted shard's salvaged masters/states."""
        channel = self.channels[index]
        return channel.upstream.copy(), {
            name: view.copy() for name, view in channel.states.items()}

    def merge_fault_stats(self, stats: Dict[str, object]) -> None:
        """Add the children's cumulative fault accounting into ``stats``."""
        injected = dict(stats.get("injected") or {})
        for snap in self._fault_snapshots.values():
            for kind, count in (snap.get("injected") or {}).items():
                injected[kind] = injected.get(kind, 0) + int(count)
            stats["retries"] = int(stats["retries"]) + int(snap["retries"])
            stats["retries_exhausted"] = (int(stats["retries_exhausted"])
                                          + int(snap["retries_exhausted"]))
            stats["backoff_seconds"] = (float(stats["backoff_seconds"])
                                        + float(snap["backoff_seconds"]))
            stats["latency_seconds"] = (float(stats["latency_seconds"])
                                        + float(snap["latency_seconds"]))
            stats["dropouts"] = (int(stats["dropouts"])
                                 + int(snap["dropouts"]))
        stats["injected"] = injected

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def gather_state(self, host_shards: Dict[int, Dict[str, np.ndarray]]
                     ) -> Dict[str, np.ndarray]:
        """Flat arrays for a checkpoint, merging demoted host copies."""
        self._run("read_state")
        arrays: Dict[str, List[np.ndarray]] = {
            "master_params": [], **{n: [] for n in self.state_names}}
        for index in range(len(self.shards)):
            host = host_shards.get(index)
            channel = self.channels[index]
            source = host if host is not None else {
                "master_params": channel.upstream, **channel.states}
            arrays["master_params"].append(source["master_params"])
            for name in self.state_names:
                arrays[name].append(source[name])
        out = {name: np.concatenate(parts)
               for name, parts in arrays.items()}
        if self.has_residual:
            out["ef_residual"] = np.concatenate(
                [channel.residual for channel in self.channels])
        return out

    def scatter_state(self, arrays: Dict[str, np.ndarray],
                      host_shards: Dict[int, Dict[str, np.ndarray]]
                      ) -> None:
        """Distribute flat checkpoint arrays back to every shard."""
        restore_residual = self.has_residual and "ef_residual" in arrays
        for index, shard in enumerate(self.shards):
            view = slice(shard.start, shard.end)
            host = host_shards.get(index)
            channel = self.channels[index]
            if host is not None:
                host["master_params"][:] = arrays["master_params"][view]
                for name in self.state_names:
                    host[name][:] = arrays[name][view]
            else:
                np.copyto(channel.upstream, arrays["master_params"][view])
                for name in self.state_names:
                    np.copyto(channel.states[name], arrays[name][view])
            if restore_residual:
                np.copyto(channel.residual, arrays["ef_residual"][view])
        self._run("write_state", residual=restore_residual)

    # ------------------------------------------------------------------
    def close(self, abandon: bool = False) -> None:
        """Tear down workers, pool and the shared arena. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.pool is not None:
            try:
                self.pool.map_ordered(_shard_task, [
                    {"op": "close", "index": index, "abandon": abandon}
                    for index in range(len(self.shards))])
            except Exception:
                pass  # teardown must not mask the original error
            self.pool.close()
        self.arena.close()


__all__ = [
    "ProcessShardCoordinator",
    "ShardChannel",
    "ingest_response",
]
