"""Buffer-pool arenas: preallocated, size-classed scratch memory.

The paper's transfer handler (§IV-B) exists because per-subgroup buffer
allocation both risks device OOM and wastes time; its fix is a fixed set
of pre-allocated buffers reused for every subgroup.  This module applies
the same discipline to the *host* side of the reproduction: every scratch
ndarray the hot path needs (optimizer temporaries, compression staging,
upstream transfer buffers, CPU-update blocks) is checked out of a
:class:`BufferArena` and returned, so steady-state training performs no
ndarray allocation at all — the arena's high-water mark is a flat,
assertable invariant, not just a speedup.

Design:

* buffers are **size-classed** (next power of two, 256-element floor), so
  a request stream with mixed sizes still reuses a small set of blocks;
* arenas are **per-worker**: :func:`thread_arena` hands each thread its
  own arena, so the engines' CSD worker pools never contend on a shared
  freelist and checkout/release stay same-thread (enforced);
* stats are first-class: per-arena counters plus a process-wide
  :func:`aggregate_arena_stats` view that survives arena death, which the
  steady-state tests and ``repro bench`` read.

Telemetry (when a session is active): the ``arena_bytes_in_use`` /
``arena_high_water_bytes`` gauges and ``arena_checkouts_total`` /
``arena_alloc_total`` counters, labelled by arena name.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from . import telemetry
from .errors import ArenaError
from .telemetry import flight

#: Smallest size class, in elements: sub-256-element checkouts share one
#: class so tiny requests do not fragment the pool.
MIN_CLASS_ELEMENTS = 256


def size_class(num_elements: int) -> int:
    """Round a request up to its size class (next power of two)."""
    if num_elements <= 0:
        raise ArenaError(f"checkout size must be positive, got "
                         f"{num_elements}")
    return max(MIN_CLASS_ELEMENTS, 1 << (num_elements - 1).bit_length())


@dataclass(frozen=True)
class ArenaStats:
    """Point-in-time view of one arena (or the process aggregate)."""

    #: Fresh ndarray allocations ever performed (cold path only).
    allocations: int
    #: Total checkouts served (warm + cold).
    checkouts: int
    releases: int
    #: Bytes currently checked out.
    bytes_in_use: int
    #: Peak of ``bytes_in_use`` — the fixed-footprint invariant.
    high_water_bytes: int
    #: Bytes parked in freelists, ready for reuse.
    pooled_bytes: int

    @property
    def hit_rate(self) -> float:
        """Fraction of checkouts served without allocating."""
        if self.checkouts == 0:
            return 1.0
        return 1.0 - self.allocations / self.checkouts


# Process-wide cumulative counters (survive arena garbage collection, so
# "allocations stopped growing" stays assertable across engine lifetimes).
_totals_lock = threading.Lock()
_total_allocations = 0
_total_checkouts = 0
_total_releases = 0
_arenas: "weakref.WeakSet[BufferArena]" = weakref.WeakSet()


class BufferArena:
    """A pool of reusable, size-classed scratch buffers.

    ``acquire`` returns a length-exact ndarray view of a pooled block;
    ``release`` returns the block to its freelist.  ``checkout`` wraps
    the pair as a context manager.  Blocks never shrink: at steady state
    every checkout is served from a freelist and the allocation counter
    is flat — the invariant the zero-copy tests assert.
    """

    def __init__(self, name: str = "arena") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._free: Dict[Tuple[str, int], List[np.ndarray]] = {}
        # id(base) -> (base block, freelist key) for every live checkout.
        self._live: Dict[int, Tuple[np.ndarray, Tuple[str, int]]] = {}
        self._allocations = 0
        self._checkouts = 0
        self._releases = 0
        self._bytes_in_use = 0
        self._high_water = 0
        self._pooled_bytes = 0
        with _totals_lock:
            _arenas.add(self)

    # ------------------------------------------------------------------
    def _new_block(self, num_elements: int, dtype: np.dtype) -> np.ndarray:
        """Allocate a fresh size-class block (cold path).

        Subclasses override this to change where block memory lives —
        :class:`SharedMemoryArena` carves blocks out of a shared-memory
        segment so checked-out views are visible across processes.
        Called with :attr:`_lock` held.
        """
        return np.empty(num_elements, dtype=dtype)

    # ------------------------------------------------------------------
    def acquire(self, num_elements: int, dtype=np.float32) -> np.ndarray:
        """Check out a flat C-contiguous buffer of ``num_elements``.

        The returned array is an exact-length view of a (possibly larger)
        size-class block; its contents are undefined, exactly like
        ``np.empty``.  Pass any view of it back to :meth:`release`.
        """
        dt = np.dtype(dtype)
        cls = size_class(num_elements)
        key = (dt.str, cls)
        allocated = False
        with self._lock:
            freelist = self._free.get(key)
            if freelist:
                base = freelist.pop()
                self._pooled_bytes -= base.nbytes
            else:
                base = self._new_block(cls, dt)
                self._allocations += 1
                allocated = True
            self._live[id(base)] = (base, key)
            self._checkouts += 1
            self._bytes_in_use += base.nbytes
            self._high_water = max(self._high_water, self._bytes_in_use)
            in_use = self._bytes_in_use
            high = self._high_water
        global _total_allocations, _total_checkouts
        with _totals_lock:
            _total_checkouts += 1
            if allocated:
                _total_allocations += 1
        if allocated:
            # Cold-path allocations only: the flight recorder captures
            # the moments the zero-steady-state-allocation invariant is
            # at risk, without touching the warm path at all.
            flight.record_event("arena", "alloc", arena=self.name,
                                nbytes=int(base.nbytes),
                                size_class=cls, dtype=dt.str)
        if telemetry.enabled():
            telemetry.gauge("arena_bytes_in_use", in_use, arena=self.name)
            telemetry.gauge("arena_high_water_bytes", high, arena=self.name)
            telemetry.counter("arena_checkouts_total", arena=self.name)
            if allocated:
                telemetry.counter("arena_alloc_total", arena=self.name)
        return base[:num_elements]

    def release(self, view: np.ndarray) -> None:
        """Return a checked-out buffer (or any view of it) to the pool."""
        base = view if view.base is None else view.base
        if not isinstance(base, np.ndarray):
            raise ArenaError(
                f"buffer does not come from arena {self.name!r}")
        with self._lock:
            entry = self._live.pop(id(base), None)
            if entry is None:
                raise ArenaError(
                    f"buffer was not checked out of arena {self.name!r} "
                    f"(foreign block or double release)")
            block, key = entry
            self._free.setdefault(key, []).append(block)
            self._releases += 1
            self._bytes_in_use -= block.nbytes
            self._pooled_bytes += block.nbytes
            in_use = self._bytes_in_use
        global _total_releases
        with _totals_lock:
            _total_releases += 1
        if telemetry.enabled():
            telemetry.gauge("arena_bytes_in_use", in_use, arena=self.name)

    @contextlib.contextmanager
    def checkout(self, num_elements: int,
                 dtype=np.float32) -> Iterator[np.ndarray]:
        """``with arena.checkout(n) as buf:`` acquire/release pairing."""
        buffer = self.acquire(num_elements, dtype)
        try:
            yield buffer
        finally:
            self.release(buffer)

    # ------------------------------------------------------------------
    def stats(self) -> ArenaStats:
        with self._lock:
            return ArenaStats(
                allocations=self._allocations,
                checkouts=self._checkouts,
                releases=self._releases,
                bytes_in_use=self._bytes_in_use,
                high_water_bytes=self._high_water,
                pooled_bytes=self._pooled_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (f"BufferArena({self.name!r}, in_use={stats.bytes_in_use}, "
                f"pooled={stats.pooled_bytes}, "
                f"high_water={stats.high_water_bytes})")


# ----------------------------------------------------------------------
# shared-memory segments (the cross-process arena substrate)
# ----------------------------------------------------------------------

#: Block alignment inside a shared segment, in bytes.  64 matches cache
#: lines, so concurrently updated neighbouring blocks never false-share.
SEGMENT_ALIGN = 64


def _align_up(nbytes: int, align: int = SEGMENT_ALIGN) -> int:
    return (nbytes + align - 1) & ~(align - 1)


class SharedSegment:
    """A named block of OS shared memory with ndarray views over it.

    This is the process-boundary analogue of a pooled arena block: the
    parent creates a segment, ships its :meth:`descriptor` (name + size —
    scalars, never bytes) over a pipe, and the child :meth:`attach`-es to
    the same physical pages.  Both sides then read and write through
    :meth:`view` ndarrays with zero serialization — the shard bytes only
    ever live in the segment.

    The creating side owns the segment: its :meth:`close` also unlinks
    the name from the OS.  Attached sides just unmap.  On CPython ≤ 3.12
    an attach implicitly registers the segment with the process-global
    ``resource_tracker``, which would unlink it when the *child* exits;
    :meth:`attach` unregisters to keep ownership with the creator.
    """

    def __init__(self, nbytes: int, *, _shm=None, _owner: bool = True) -> None:
        if _shm is None:
            if nbytes <= 0:
                raise ArenaError(
                    f"segment size must be positive, got {nbytes}")
            from multiprocessing import shared_memory
            _shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._shm = _shm
        self._owner = _owner
        self.nbytes = nbytes
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    def descriptor(self) -> Dict[str, object]:
        """A picklable handle: ship this over a pipe, not the bytes."""
        return {"name": self._shm.name, "nbytes": int(self.nbytes)}

    @classmethod
    def attach(cls, descriptor: Dict[str, object]) -> "SharedSegment":
        """Map an existing segment created by another process."""
        from multiprocessing import shared_memory
        try:
            shm = shared_memory.SharedMemory(
                name=str(descriptor["name"]), create=False)
        except FileNotFoundError as exc:
            raise ArenaError(
                f"shared segment {descriptor['name']!r} does not exist "
                f"(creator gone?)") from exc
        # Attaching registers the name with the resource tracker a second
        # time; because multiprocessing children share the parent's
        # tracker process this is a set-level no-op, and the owner's
        # unlink() performs the single matching unregister.
        return cls(int(descriptor["nbytes"]), _shm=shm, _owner=False)

    def view(self, offset: int, num_elements: int,
             dtype=np.float32) -> np.ndarray:
        """A flat ndarray over ``[offset, offset + n*itemsize)`` bytes."""
        dt = np.dtype(dtype)
        end = offset + num_elements * dt.itemsize
        if offset < 0 or end > self.nbytes:
            raise ArenaError(
                f"view [{offset}, {end}) exceeds segment of "
                f"{self.nbytes} B")
        return np.ndarray(num_elements, dtype=dt, buffer=self._shm.buf,
                          offset=offset)

    def close(self) -> None:
        """Unmap (and, on the owning side, unlink). Idempotent.

        Live ndarray views pin the mapping; closing with views still
        outstanding is deferred to interpreter exit rather than raised.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # views still alive; OS cleans at exit
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedSegment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self._owner else "attached"
        return f"SharedSegment({self.name!r}, {self.nbytes} B, {role})"


class SharedMemoryArena(BufferArena):
    """A :class:`BufferArena` whose blocks live in OS shared memory.

    Same checkout/release discipline, same size classes and stats — but
    cold-path blocks are carved (bump-allocated, cache-line aligned) out
    of one :class:`SharedSegment`, so any view checked out of this arena
    is visible to a worker process that attaches the segment.  The
    process-backend engines use this for optimizer/gradient shards: the
    parent checks buffers out exactly like a private arena, children
    attach and index by ``(offset, count)`` descriptors.

    ``capacity_bytes`` bounds the segment; exceeding it raises
    :class:`~repro.errors.ArenaError` (shared arenas must be sized up
    front — they exist to *prevent* unplanned allocation).
    """

    def __init__(self, capacity_bytes: int, name: str = "shm-arena") -> None:
        self.segment = SharedSegment(capacity_bytes)
        self._cursor = 0
        # id(block) -> byte offset inside the segment, for descriptors.
        self._block_offsets: Dict[int, int] = {}
        super().__init__(name=name)

    def _new_block(self, num_elements: int, dtype: np.dtype) -> np.ndarray:
        nbytes = num_elements * dtype.itemsize
        offset = _align_up(self._cursor)
        if offset + nbytes > self.segment.nbytes:
            raise ArenaError(
                f"shared arena {self.name!r} exhausted: need {nbytes} B "
                f"at offset {offset} but capacity is "
                f"{self.segment.nbytes} B")
        self._cursor = offset + nbytes
        block = self.segment.view(offset, num_elements, dtype)
        self._block_offsets[id(block)] = offset
        return block

    def offset_of(self, view: np.ndarray) -> int:
        """Byte offset of a checked-out view inside the segment.

        Pair with ``view.size``/``view.dtype`` to build the descriptor a
        worker process needs to re-view the same bytes after
        :meth:`SharedSegment.attach`.
        """
        base = view if view.base is None else view.base
        offset = self._block_offsets.get(id(base))
        if offset is None:
            raise ArenaError(
                f"buffer does not come from shared arena {self.name!r}")
        view_addr = view.__array_interface__["data"][0]
        base_addr = base.__array_interface__["data"][0]
        return offset + int(view_addr - base_addr)

    def close(self) -> None:
        """Release the backing segment (owner side unlinks)."""
        with self._lock:
            self._free.clear()
            self._live.clear()
            self._block_offsets.clear()
        self.segment.close()


# ----------------------------------------------------------------------
# per-worker arenas
# ----------------------------------------------------------------------
_thread_state = threading.local()


def thread_arena() -> BufferArena:
    """The calling thread's private arena (created on first use).

    Per-worker arenas mean the engines' CSD worker pools never share a
    freelist: checkout and release happen on the same thread with zero
    cross-thread contention, mirroring the paper's per-device buffers.
    """
    arena = getattr(_thread_state, "arena", None)
    if arena is None:
        arena = BufferArena(
            name=f"thread/{threading.current_thread().name}")
        _thread_state.arena = arena
    return arena


def aggregate_arena_stats() -> ArenaStats:
    """Process-wide arena view: live arenas plus cumulative counters.

    ``allocations``/``checkouts``/``releases`` are monotonic across the
    whole process (they survive arena death), so a flat ``allocations``
    delta across training steps proves zero steady-state allocation.
    """
    bytes_in_use = 0
    high_water = 0
    pooled = 0
    with _totals_lock:
        allocations = _total_allocations
        checkouts = _total_checkouts
        releases = _total_releases
        arenas = list(_arenas)
    for arena in arenas:
        stats = arena.stats()
        bytes_in_use += stats.bytes_in_use
        high_water += stats.high_water_bytes
        pooled += stats.pooled_bytes
    return ArenaStats(
        allocations=allocations, checkouts=checkouts, releases=releases,
        bytes_in_use=bytes_in_use, high_water_bytes=high_water,
        pooled_bytes=pooled)


__all__ = [
    "ArenaStats",
    "BufferArena",
    "MIN_CLASS_ELEMENTS",
    "SEGMENT_ALIGN",
    "SharedMemoryArena",
    "SharedSegment",
    "aggregate_arena_stats",
    "size_class",
    "thread_arena",
]
