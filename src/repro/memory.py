"""Buffer-pool arenas: preallocated, size-classed scratch memory.

The paper's transfer handler (§IV-B) exists because per-subgroup buffer
allocation both risks device OOM and wastes time; its fix is a fixed set
of pre-allocated buffers reused for every subgroup.  This module applies
the same discipline to the *host* side of the reproduction: every scratch
ndarray the hot path needs (optimizer temporaries, compression staging,
upstream transfer buffers, CPU-update blocks) is checked out of a
:class:`BufferArena` and returned, so steady-state training performs no
ndarray allocation at all — the arena's high-water mark is a flat,
assertable invariant, not just a speedup.

Design:

* buffers are **size-classed** (next power of two, 256-element floor), so
  a request stream with mixed sizes still reuses a small set of blocks;
* arenas are **per-worker**: :func:`thread_arena` hands each thread its
  own arena, so the engines' CSD worker pools never contend on a shared
  freelist and checkout/release stay same-thread (enforced);
* stats are first-class: per-arena counters plus a process-wide
  :func:`aggregate_arena_stats` view that survives arena death, which the
  steady-state tests and ``repro bench`` read.

Telemetry (when a session is active): the ``arena_bytes_in_use`` /
``arena_high_water_bytes`` gauges and ``arena_checkouts_total`` /
``arena_alloc_total`` counters, labelled by arena name.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from . import telemetry
from .errors import ArenaError
from .telemetry import flight

#: Smallest size class, in elements: sub-256-element checkouts share one
#: class so tiny requests do not fragment the pool.
MIN_CLASS_ELEMENTS = 256


def size_class(num_elements: int) -> int:
    """Round a request up to its size class (next power of two)."""
    if num_elements <= 0:
        raise ArenaError(f"checkout size must be positive, got "
                         f"{num_elements}")
    return max(MIN_CLASS_ELEMENTS, 1 << (num_elements - 1).bit_length())


@dataclass(frozen=True)
class ArenaStats:
    """Point-in-time view of one arena (or the process aggregate)."""

    #: Fresh ndarray allocations ever performed (cold path only).
    allocations: int
    #: Total checkouts served (warm + cold).
    checkouts: int
    releases: int
    #: Bytes currently checked out.
    bytes_in_use: int
    #: Peak of ``bytes_in_use`` — the fixed-footprint invariant.
    high_water_bytes: int
    #: Bytes parked in freelists, ready for reuse.
    pooled_bytes: int

    @property
    def hit_rate(self) -> float:
        """Fraction of checkouts served without allocating."""
        if self.checkouts == 0:
            return 1.0
        return 1.0 - self.allocations / self.checkouts


# Process-wide cumulative counters (survive arena garbage collection, so
# "allocations stopped growing" stays assertable across engine lifetimes).
_totals_lock = threading.Lock()
_total_allocations = 0
_total_checkouts = 0
_total_releases = 0
_arenas: "weakref.WeakSet[BufferArena]" = weakref.WeakSet()


class BufferArena:
    """A pool of reusable, size-classed scratch buffers.

    ``acquire`` returns a length-exact ndarray view of a pooled block;
    ``release`` returns the block to its freelist.  ``checkout`` wraps
    the pair as a context manager.  Blocks never shrink: at steady state
    every checkout is served from a freelist and the allocation counter
    is flat — the invariant the zero-copy tests assert.
    """

    def __init__(self, name: str = "arena") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._free: Dict[Tuple[str, int], List[np.ndarray]] = {}
        # id(base) -> (base block, freelist key) for every live checkout.
        self._live: Dict[int, Tuple[np.ndarray, Tuple[str, int]]] = {}
        self._allocations = 0
        self._checkouts = 0
        self._releases = 0
        self._bytes_in_use = 0
        self._high_water = 0
        self._pooled_bytes = 0
        with _totals_lock:
            _arenas.add(self)

    # ------------------------------------------------------------------
    def acquire(self, num_elements: int, dtype=np.float32) -> np.ndarray:
        """Check out a flat C-contiguous buffer of ``num_elements``.

        The returned array is an exact-length view of a (possibly larger)
        size-class block; its contents are undefined, exactly like
        ``np.empty``.  Pass any view of it back to :meth:`release`.
        """
        dt = np.dtype(dtype)
        cls = size_class(num_elements)
        key = (dt.str, cls)
        allocated = False
        with self._lock:
            freelist = self._free.get(key)
            if freelist:
                base = freelist.pop()
                self._pooled_bytes -= base.nbytes
            else:
                base = np.empty(cls, dtype=dt)
                self._allocations += 1
                allocated = True
            self._live[id(base)] = (base, key)
            self._checkouts += 1
            self._bytes_in_use += base.nbytes
            self._high_water = max(self._high_water, self._bytes_in_use)
            in_use = self._bytes_in_use
            high = self._high_water
        global _total_allocations, _total_checkouts
        with _totals_lock:
            _total_checkouts += 1
            if allocated:
                _total_allocations += 1
        if allocated:
            # Cold-path allocations only: the flight recorder captures
            # the moments the zero-steady-state-allocation invariant is
            # at risk, without touching the warm path at all.
            flight.record_event("arena", "alloc", arena=self.name,
                                nbytes=int(base.nbytes),
                                size_class=cls, dtype=dt.str)
        if telemetry.enabled():
            telemetry.gauge("arena_bytes_in_use", in_use, arena=self.name)
            telemetry.gauge("arena_high_water_bytes", high, arena=self.name)
            telemetry.counter("arena_checkouts_total", arena=self.name)
            if allocated:
                telemetry.counter("arena_alloc_total", arena=self.name)
        return base[:num_elements]

    def release(self, view: np.ndarray) -> None:
        """Return a checked-out buffer (or any view of it) to the pool."""
        base = view if view.base is None else view.base
        if not isinstance(base, np.ndarray):
            raise ArenaError(
                f"buffer does not come from arena {self.name!r}")
        with self._lock:
            entry = self._live.pop(id(base), None)
            if entry is None:
                raise ArenaError(
                    f"buffer was not checked out of arena {self.name!r} "
                    f"(foreign block or double release)")
            block, key = entry
            self._free.setdefault(key, []).append(block)
            self._releases += 1
            self._bytes_in_use -= block.nbytes
            self._pooled_bytes += block.nbytes
            in_use = self._bytes_in_use
        global _total_releases
        with _totals_lock:
            _total_releases += 1
        if telemetry.enabled():
            telemetry.gauge("arena_bytes_in_use", in_use, arena=self.name)

    @contextlib.contextmanager
    def checkout(self, num_elements: int,
                 dtype=np.float32) -> Iterator[np.ndarray]:
        """``with arena.checkout(n) as buf:`` acquire/release pairing."""
        buffer = self.acquire(num_elements, dtype)
        try:
            yield buffer
        finally:
            self.release(buffer)

    # ------------------------------------------------------------------
    def stats(self) -> ArenaStats:
        with self._lock:
            return ArenaStats(
                allocations=self._allocations,
                checkouts=self._checkouts,
                releases=self._releases,
                bytes_in_use=self._bytes_in_use,
                high_water_bytes=self._high_water,
                pooled_bytes=self._pooled_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (f"BufferArena({self.name!r}, in_use={stats.bytes_in_use}, "
                f"pooled={stats.pooled_bytes}, "
                f"high_water={stats.high_water_bytes})")


# ----------------------------------------------------------------------
# per-worker arenas
# ----------------------------------------------------------------------
_thread_state = threading.local()


def thread_arena() -> BufferArena:
    """The calling thread's private arena (created on first use).

    Per-worker arenas mean the engines' CSD worker pools never share a
    freelist: checkout and release happen on the same thread with zero
    cross-thread contention, mirroring the paper's per-device buffers.
    """
    arena = getattr(_thread_state, "arena", None)
    if arena is None:
        arena = BufferArena(
            name=f"thread/{threading.current_thread().name}")
        _thread_state.arena = arena
    return arena


def aggregate_arena_stats() -> ArenaStats:
    """Process-wide arena view: live arenas plus cumulative counters.

    ``allocations``/``checkouts``/``releases`` are monotonic across the
    whole process (they survive arena death), so a flat ``allocations``
    delta across training steps proves zero steady-state allocation.
    """
    bytes_in_use = 0
    high_water = 0
    pooled = 0
    with _totals_lock:
        allocations = _total_allocations
        checkouts = _total_checkouts
        releases = _total_releases
        arenas = list(_arenas)
    for arena in arenas:
        stats = arena.stats()
        bytes_in_use += stats.bytes_in_use
        high_water += stats.high_water_bytes
        pooled += stats.pooled_bytes
    return ArenaStats(
        allocations=allocations, checkouts=checkouts, releases=releases,
        bytes_in_use=bytes_in_use, high_water_bytes=high_water,
        pooled_bytes=pooled)


__all__ = [
    "ArenaStats",
    "BufferArena",
    "MIN_CLASS_ELEMENTS",
    "aggregate_arena_stats",
    "size_class",
    "thread_arena",
]
