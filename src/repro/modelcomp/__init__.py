"""Model-compression extensions on top of Smart-Infinity (§VIII-B)."""

from .pruning import PruningMask, magnitude_mask
from .quantization import (QMAX, QuantizedTensor, QuantizerKernel,
                           dequantize_int8, quantization_error,
                           quantize_int8)

__all__ = [
    "PruningMask",
    "QMAX",
    "QuantizedTensor",
    "QuantizerKernel",
    "dequantize_int8",
    "magnitude_mask",
    "quantization_error",
    "quantize_int8",
]
