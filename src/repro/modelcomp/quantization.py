"""Int8 weight quantization for the model-compression use case (§VIII-B).

The paper's discussion: when Smart-Infinity is used for quantization-aware
fine-tuning, the CSD can *quantize the updated weights before sending them
upstream*, shrinking the upstream bottleneck by another 4x — at the price
of the CSD computing per-group scales and the GPU dequantizing for the
straight-through-estimator (STE) forward pass.

This module provides the symmetric int8 codec, the chunked CSD-side
quantizer kernel (same BRAM-sized streaming discipline as the updater),
and the host-side dequantizer.  Quantize -> dequantize is exactly
idempotent on already-quantized grids, and reconstruction error is bounded
by half a quantization step — both property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError

#: Symmetric signed 8-bit range.
QMAX = 127


@dataclass(frozen=True)
class QuantizedTensor:
    """Int8 values plus the per-group float32 scales."""

    values: np.ndarray
    scales: np.ndarray
    group_size: int
    original_size: int

    def __post_init__(self) -> None:
        if self.values.dtype != np.int8:
            raise KernelError("quantized values must be int8")
        if self.scales.dtype != np.float32:
            raise KernelError("scales must be float32")
        expected = -(-self.original_size // self.group_size)
        if self.scales.size != expected:
            raise KernelError(
                f"need {expected} scales for {self.original_size} values "
                f"at group size {self.group_size}, got {self.scales.size}")

    @property
    def nbytes(self) -> int:
        """Wire size: one byte per value + four per group scale."""
        return self.values.size + 4 * self.scales.size


def quantize_int8(array: np.ndarray, group_size: int = 4096
                  ) -> QuantizedTensor:
    """Symmetric per-group int8 quantization.

    Each contiguous group of ``group_size`` elements shares one scale
    ``max|x| / 127``; all-zero groups get scale 1 so dequantization stays
    exact.
    """
    if group_size <= 0:
        raise KernelError("group_size must be positive")
    flat = np.ascontiguousarray(array, dtype=np.float32).reshape(-1)
    num_groups = -(-flat.size // group_size)
    values = np.empty(flat.size, dtype=np.int8)
    scales = np.empty(num_groups, dtype=np.float32)
    for group in range(num_groups):
        start = group * group_size
        stop = min(start + group_size, flat.size)
        chunk = flat[start:stop]
        peak = float(np.abs(chunk).max()) if chunk.size else 0.0
        scale = np.float32(peak / QMAX) if peak > 0 else np.float32(1.0)
        scales[group] = scale
        values[start:stop] = np.clip(
            np.rint(chunk / scale), -QMAX, QMAX).astype(np.int8)
    return QuantizedTensor(values=values, scales=scales,
                           group_size=group_size,
                           original_size=flat.size)


def dequantize_int8(quantized: QuantizedTensor) -> np.ndarray:
    """Host-side reconstruction: ``values * scale`` per group."""
    output = np.empty(quantized.original_size, dtype=np.float32)
    size = quantized.group_size
    for group, scale in enumerate(quantized.scales):
        start = group * size
        stop = min(start + size, quantized.original_size)
        output[start:stop] = (
            quantized.values[start:stop].astype(np.float32) * scale)
    return output


def quantization_error(array: np.ndarray,
                       quantized: QuantizedTensor) -> float:
    """Max absolute reconstruction error (bounded by scale/2 per group)."""
    flat = np.asarray(array, dtype=np.float32).reshape(-1)
    return float(np.abs(flat - dequantize_int8(quantized)).max())


class QuantizerKernel:
    """CSD-side chunked quantizer (the §VIII-B FPGA extension).

    Streams the updated FP32 masters through BRAM-sized chunks, emitting
    int8 values and group scales.  The chunk size must be a multiple of
    the quantization group so chunking never splits a group (the sanity
    check rejects misconfigured kernels, as the HLS templates would).
    """

    def __init__(self, group_size: int = 4096,
                 chunk_elements: int = 16_384) -> None:
        if chunk_elements % group_size != 0:
            raise KernelError(
                f"chunk ({chunk_elements}) must be a multiple of the "
                f"quantization group ({group_size})")
        self.group_size = group_size
        self.chunk_elements = chunk_elements
        self.elements_processed = 0
        self.invocations = 0

    def run(self, masters: np.ndarray) -> QuantizedTensor:
        """Quantize a flat FP32 buffer chunk by chunk."""
        flat = np.ascontiguousarray(masters, dtype=np.float32).reshape(-1)
        pieces = []
        scale_pieces = []
        for start in range(0, flat.size, self.chunk_elements):
            stop = min(start + self.chunk_elements, flat.size)
            part = quantize_int8(flat[start:stop],
                                 group_size=self.group_size)
            pieces.append(part.values)
            scale_pieces.append(part.scales)
        self.invocations += 1
        self.elements_processed += flat.size
        return QuantizedTensor(
            values=np.concatenate(pieces) if pieces else
            np.empty(0, dtype=np.int8),
            scales=np.concatenate(scale_pieces) if scale_pieces else
            np.empty(0, dtype=np.float32),
            group_size=self.group_size,
            original_size=flat.size)
