"""Magnitude pruning for fine-tuning in compressed form (§VIII-B).

Pruning keeps a sparsity mask over the flat parameter space; fine-tuning
then recovers the accuracy lost to the pruning step.  The mask is applied
to the FP16 working copy after every update (the masters stay dense so
the optimizer state remains well-defined), which is the standard
"fine-tune the pruned network" recipe the paper points at as a
Smart-Infinity use case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TrainingError


@dataclass(frozen=True)
class PruningMask:
    """A boolean keep-mask over the flat parameter space."""

    keep: np.ndarray

    def __post_init__(self) -> None:
        if self.keep.dtype != np.bool_ or self.keep.ndim != 1:
            raise TrainingError("mask must be a flat boolean array")

    @property
    def num_elements(self) -> int:
        return int(self.keep.size)

    @property
    def sparsity(self) -> float:
        """Fraction of parameters pruned away."""
        return 1.0 - float(self.keep.mean())

    def apply(self, flat: np.ndarray) -> np.ndarray:
        """Zero the pruned coordinates in place; returns ``flat``."""
        if flat.size != self.keep.size:
            raise TrainingError(
                f"mask covers {self.keep.size} elements, got {flat.size}")
        flat[~self.keep] = 0.0
        return flat

    def slice(self, start: int, count: int) -> "PruningMask":
        """Sub-mask for a flat range (one CSD shard or subgroup)."""
        if start < 0 or start + count > self.keep.size:
            raise TrainingError("mask slice out of range")
        return PruningMask(keep=self.keep[start:start + count])


def magnitude_mask(flat_params: np.ndarray,
                   sparsity: float) -> PruningMask:
    """Keep the largest-magnitude ``1 - sparsity`` fraction of weights."""
    if not 0.0 <= sparsity < 1.0:
        raise TrainingError(f"sparsity must be in [0, 1), got {sparsity}")
    flat = np.asarray(flat_params, dtype=np.float32).reshape(-1)
    keep = np.ones(flat.size, dtype=bool)
    num_pruned = int(flat.size * sparsity)
    if num_pruned > 0:
        smallest = np.argpartition(np.abs(flat), num_pruned - 1)
        keep[smallest[:num_pruned]] = False
    return PruningMask(keep=keep)
