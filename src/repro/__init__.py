"""repro — a reproduction of Smart-Infinity (HPCA 2024).

Smart-Infinity accelerates storage-offloaded LLM training by moving the
optimizer update into FPGA accelerators inside computational storage
devices (SmartSSDs) and compressing gradients on the way down.  This
package provides:

* :mod:`repro.nn` — a numpy autograd mini-framework with transformer
  models (the PyTorch stand-in);
* :mod:`repro.optim` / :mod:`repro.compression` — flat-array optimizers and
  Top-K gradient compression;
* :mod:`repro.storage` / :mod:`repro.csd` — a functional storage substrate
  (real file-backed devices, RAID0) and a functional SmartSSD emulator
  (HLS-style kernels, resource estimation, the internal transfer handler);
* :mod:`repro.runtime` — the storage-offloaded training engines: a
  ZeRO-Infinity-style CPU baseline and the Smart-Infinity engine
  (SmartUpdate + SmartComp), with exact interconnect-traffic metering;
* :mod:`repro.sim` / :mod:`repro.hw` / :mod:`repro.perf` — a discrete-event
  performance model of the PCIe/SSD/FPGA system, calibrated to the paper;
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from .api import ENGINE_MODES, create_engine
from .errors import (ArenaError, CapacityError, DeviceFailedError,
                     FaultError, FaultInjectionError,
                     GradientOverflowError, HardwareConfigError,
                     KernelError, PartitionError, ReproError,
                     RetryExhaustedError, ScenarioError, SimulationError,
                     StorageError, TrainingError)
from .memory import (ArenaStats, BufferArena, aggregate_arena_stats,
                     thread_arena)
from .faults import FaultInjector, FaultPlan, FaultRule, RetryPolicy
from .runtime import (BaselineOffloadEngine, HostOffloadEngine,
                      SmartInfinityEngine, StepResult, TrainingConfig,
                      expected_traffic, load_checkpoint, save_checkpoint)
from .scenarios import Scenario, ScenarioRunner, load_scenario
from .telemetry.health import Rule, RulesEngine
from .version import __version__

__all__ = [
    "ArenaError",
    "ArenaStats",
    "BaselineOffloadEngine",
    "BufferArena",
    "CapacityError",
    "DeviceFailedError",
    "ENGINE_MODES",
    "FaultError",
    "FaultInjectionError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "GradientOverflowError",
    "HostOffloadEngine",
    "HardwareConfigError",
    "KernelError",
    "PartitionError",
    "ReproError",
    "RetryExhaustedError",
    "RetryPolicy",
    "Rule",
    "RulesEngine",
    "Scenario",
    "ScenarioError",
    "ScenarioRunner",
    "SimulationError",
    "SmartInfinityEngine",
    "StepResult",
    "StorageError",
    "TrainingConfig",
    "TrainingError",
    "__version__",
    "aggregate_arena_stats",
    "create_engine",
    "expected_traffic",
    "load_checkpoint",
    "load_scenario",
    "save_checkpoint",
    "thread_arena",
]
