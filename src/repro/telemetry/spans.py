"""Wall-clock span tracing.

A *span* is one named, nested interval of wall-clock time on one thread —
the unit every timeline viewer (Perfetto, chrome://tracing) understands.
The tracer records spans two ways:

* :meth:`SpanTracer.span` — a context manager for structured code
  (``with tracer.span("update", device=3):``);
* :meth:`SpanTracer.begin` / :meth:`SpanTracer.end` — explicit tokens for
  code whose begin and end sites are different functions, such as the
  transfer handler's lazy write-back worker.

Each finished span keeps the thread id and name it ran on, a nesting
depth (per thread), and free-form attributes, so the Chrome-trace
exporter can reconstruct per-thread lanes with correct nesting.  All
methods are thread-safe; spans from concurrent worker threads interleave
into one list ordered by completion.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import TelemetryError
from . import flight


@dataclass
class Span:
    """One finished wall-clock interval."""

    name: str
    start: float
    end: float
    thread_id: int
    thread_name: str
    depth: int
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SpanToken:
    """An open span returned by :meth:`SpanTracer.begin`.

    Callers may attach attributes while the span is open via :meth:`set`;
    they are merged into the finished :class:`Span`.
    """

    name: str
    start: float
    thread_id: int
    thread_name: str
    depth: int
    attrs: Dict[str, object] = field(default_factory=dict)
    closed: bool = False

    def set(self, **attrs: object) -> "SpanToken":
        self.attrs.update(attrs)
        return self


class _NullSpan:
    """Do-nothing stand-in yielded when tracing is disabled."""

    __slots__ = ()

    def set(self, **_attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


#: Shared no-op span/context — the entire cost of a disabled trace point.
NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager pairing one begin/end on a tracer."""

    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: "SpanTracer", token: SpanToken) -> None:
        self._tracer = tracer
        self._token = token

    def __enter__(self) -> SpanToken:
        return self._token

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None:
            # Mark spans that exit via exception so post-mortem traces
            # and flight-recorder dumps show what was in flight at the
            # crash — the span still closes, it just closes "error".
            self._token.set(status="error",
                            error=f"{exc_type.__name__}: {exc}")
        self._tracer.end(self._token)
        return False


class SpanTracer:
    """Thread-safe recorder of nested wall-clock spans.

    ``clock`` is injectable for deterministic tests; it must be a
    monotonic float-seconds callable (default :func:`time.perf_counter`).
    Timestamps are stored relative to the tracer's creation instant so
    exported traces start near t=0.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self.spans: List[Span] = []

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _stack(self) -> List[SpanToken]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # explicit begin/end (for split call sites, e.g. worker loops)
    # ------------------------------------------------------------------
    def begin(self, name: str, **attrs: object) -> SpanToken:
        """Open a span on the calling thread and return its token."""
        thread = threading.current_thread()
        stack = self._stack()
        token = SpanToken(name=name, start=self._now(),
                          thread_id=thread.ident or 0,
                          thread_name=thread.name, depth=len(stack),
                          attrs=dict(attrs))
        stack.append(token)
        return token

    def end(self, token: SpanToken, **attrs: object) -> Span:
        """Close ``token`` (on the thread that opened it) and record it."""
        if token.closed:
            raise TelemetryError(f"span {token.name!r} already ended")
        token.closed = True
        stack = self._stack()
        if token in stack:
            # Pop through the token: abandoned inner tokens (e.g. after an
            # exception skipped their end()) must not corrupt the depth of
            # later spans.
            while stack and stack.pop() is not token:
                pass
        token.attrs.update(attrs)
        span = Span(name=token.name, start=token.start, end=self._now(),
                    thread_id=token.thread_id,
                    thread_name=token.thread_name, depth=token.depth,
                    attrs=token.attrs)
        with self._lock:
            self.spans.append(span)
        if flight._recorder is not None:
            flight._recorder.record("span", span.name, span.attrs,
                                    duration=span.duration)
        return span

    # ------------------------------------------------------------------
    # structured form
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> _SpanContext:
        """``with tracer.span("name", k=v) as s: ... s.set(result=...)``"""
        return _SpanContext(self, self.begin(name, **attrs))

    # ------------------------------------------------------------------
    # cross-process forwarding
    # ------------------------------------------------------------------
    def export_drain(self) -> List[Dict[str, object]]:
        """Atomically take every finished span as picklable dicts.

        The child-process half of span forwarding: times are shipped as
        *absolute* clock seconds (``perf_counter`` is CLOCK_MONOTONIC on
        Linux — one domain across processes) so the receiving tracer can
        rebase them onto its own epoch.
        """
        with self._lock:
            spans, self.spans = self.spans, []
        return [{
            "name": span.name,
            "start": span.start + self._epoch,
            "end": span.end + self._epoch,
            "thread_id": span.thread_id,
            "thread_name": span.thread_name,
            "depth": span.depth,
            "attrs": span.attrs,
        } for span in spans]

    def ingest(self, spans: List[Dict[str, object]]) -> None:
        """Merge spans forwarded by :meth:`export_drain` in a worker.

        Times are rebased from absolute clock values to this tracer's
        epoch.  Deliberately does *not* re-record span ends to the
        flight recorder — the originating process already captured them,
        and those events arrive via the recorder's own forwarding.
        """
        converted = [Span(
            name=str(data["name"]),
            start=float(data["start"]) - self._epoch,
            end=float(data["end"]) - self._epoch,
            thread_id=int(data.get("thread_id", 0)),
            thread_name=str(data.get("thread_name", "foreign")),
            depth=int(data.get("depth", 0)),
            attrs=dict(data.get("attrs") or {}),
        ) for data in spans]
        with self._lock:
            self.spans.extend(converted)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def by_name(self, name: str) -> List[Span]:
        with self._lock:
            return [span for span in self.spans if span.name == name]

    def total_time(self, name: str) -> float:
        """Summed duration of every finished span called ``name``."""
        return sum(span.duration for span in self.by_name(name))

    def open_depth(self) -> int:
        """Open spans on the *calling* thread (diagnostic)."""
        return len(self._stack())

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()

    def thread_names(self) -> Dict[int, str]:
        """Thread-id -> name for every thread that recorded a span."""
        names: Dict[int, str] = {}
        with self._lock:
            for span in self.spans:
                names.setdefault(span.thread_id, span.thread_name)
        return names
