"""Bottleneck observatory: build, render, and export attributions.

Wraps :mod:`repro.telemetry.attrib` with the three surfaces the tooling
exposes:

* :func:`profile_scenario` — run one DES iteration and attribute it
  (what ``python -m repro top`` shows in sim mode);
* :func:`load_chrome_trace` — re-import a finished Chrome trace-event
  JSON (as written by ``python -m repro trace``) and attribute it,
  preferring the sim-time domain and falling back to wall-clock spans
  tagged with ``resource`` attributes;
* :func:`render_top` — the terminal dashboard: per-link utilization
  bars, the phase x resource ownership table, the verdict line, and
  the critical-path pane (:mod:`repro.telemetry.critpath`);
* :func:`write_events_jsonl` / :func:`record_attribution_metrics` — the
  structured exports (JSONL event log, Prometheus series).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import TelemetryError
from .attrib import (Attribution, COMPUTE, PHASE_SPAN_NAMES,
                     attribute, attribute_channels)
from .critpath import CritPathReport, DepGraph
from .metrics import MetricsRegistry

#: Schema marker of the JSONL attribution event log.
EVENTS_SCHEMA = "smart-infinity/attrib/v1"


@dataclass
class ProfileReport:
    """One attributed run plus where it came from."""

    source: str  # "sim" | "trace" | "spans"
    label: str
    attribution: Attribution
    meta: Dict[str, object] = field(default_factory=dict)
    #: Critical path over the same records the attribution covered;
    #: ``None`` when the source had no per-operation records to chain
    #: (attribution can still tile the step from aggregate windows).
    critpath: Optional[CritPathReport] = None


def profile_scenario(model: str = "gpt2-4.0b", csds: int = 10,
                     method: str = "su_o_c", gpu: str = "a5000",
                     ratio: float = 0.02,
                     schedule: str = "phased") -> ProfileReport:
    """Simulate one iteration and attribute its time to channels."""
    # Lazy imports: telemetry must stay importable without perf/hw/nn.
    from ..hw.gpu import a100_40g, a4000, a5000
    from ..hw.topology import default_system
    from ..nn.models import get_model
    from ..perf.scenarios import trace_scenario
    from ..perf.workload import make_workload

    gpus = {"a5000": a5000, "a100": a100_40g, "a4000": a4000}
    workload = make_workload(get_model(model))
    system = default_system(num_csds=csds, gpu=gpus[gpu]())
    trace = trace_scenario(system, workload, method,
                           compression_ratio=ratio, schedule=schedule)
    attribution = attribute_channels(trace.phase_windows,
                                     trace.fabric.all_channels(),
                                     horizon=trace.breakdown.total)
    graph = DepGraph.from_channels(trace.fabric.all_channels(),
                                   trace.phase_windows)
    return ProfileReport(
        source="sim",
        label=f"{model}/{method} ({csds} CSDs, {gpu})"
              + ("" if schedule == "phased" else f", {schedule}"),
        attribution=attribution,
        meta={"model": model, "method": method, "csds": csds,
              "gpu": gpu, "ratio": ratio, "schedule": schedule,
              "iteration_seconds": trace.breakdown.total},
        critpath=graph.critical_path() if graph.nodes else None)


def load_chrome_trace(path: str) -> ProfileReport:
    """Attribute a finished Chrome trace-event JSON file.

    Uses the sim-time domain (``cat: "sim"`` transfer records bucketed
    into ``cat: "sim-phase"`` windows) when present; otherwise the
    wall-clock domain (phase spans named in :data:`PHASE_SPAN_NAMES`,
    busy windows from spans carrying a ``resource`` attribute).
    """
    with open(path) as handle:
        document = json.load(handle)
    events = document.get("traceEvents", [])

    scale = 1e6  # trace timestamps are microseconds
    sim_phases: List[Tuple[str, float, float]] = []
    sim_busy: Dict[str, List[Tuple[float, float]]] = {}
    sim_bytes: Dict[str, float] = {}
    wall_phases: List[Tuple[str, float, float]] = []
    wall_busy: Dict[str, List[Tuple[float, float]]] = {}
    wall_bytes: Dict[str, float] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        start = float(event.get("ts", 0.0)) / scale
        end = start + float(event.get("dur", 0.0)) / scale
        args = event.get("args") or {}
        cat = event.get("cat")
        if cat == "sim-phase":
            sim_phases.append((event.get("name", "phase"), start, end))
        elif cat == "sim":
            channel = str(args.get("channel", event.get("name", "?")))
            sim_busy.setdefault(channel, []).append((start, end))
            sim_bytes[channel] = (sim_bytes.get(channel, 0.0)
                                  + float(args.get("nbytes", 0.0)))
        elif cat == "wall":
            resource = args.get("resource")
            if resource is not None:
                wall_busy.setdefault(str(resource), []).append(
                    (start, end))
                if args.get("nbytes") is not None:
                    wall_bytes[str(resource)] = (
                        wall_bytes.get(str(resource), 0.0)
                        + float(args["nbytes"]))
            elif event.get("name") in PHASE_SPAN_NAMES:
                wall_phases.append((event["name"], start, end))

    meta = dict(document.get("otherData") or {})
    meta["path"] = path
    if sim_phases:
        attribution = attribute(sim_phases, sim_busy,
                                bytes_by_resource=sim_bytes)
        graph = DepGraph.from_intervals(sim_busy, sim_phases)
        return ProfileReport(
            source="trace", label=path, attribution=attribution,
            meta=meta,
            critpath=graph.critical_path() if graph.nodes else None)
    if wall_phases:
        attribution = attribute(wall_phases, wall_busy,
                                bytes_by_resource=wall_bytes)
        graph = DepGraph.from_intervals(wall_busy, wall_phases)
        return ProfileReport(
            source="trace", label=path, attribution=attribution,
            meta=meta,
            critpath=graph.critical_path() if graph.nodes else None)
    raise TelemetryError(
        f"trace {path!r} has neither sim-phase windows nor wall-clock "
        f"phase spans — nothing to attribute")


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(min(1.0, max(0.0, fraction)) * width))
    return "#" * filled + "-" * (width - filled)


def render_top(report: ProfileReport, top: int = 12,
               slo_rules=None) -> str:
    """The ``repro top`` dashboard: bars, ownership, verdict, health.

    ``slo_rules`` (a sequence of :class:`~repro.telemetry.health.Rule`)
    replaces the built-in saturation checks in the health/alerts pane;
    the pane itself always renders so the reader knows it was evaluated.
    """
    attribution = report.attribution
    verdict = attribution.verdict()
    lines = [f"bottleneck observatory — {report.source}:{report.label}",
             f"step time {attribution.step_seconds:.3f} s"]

    usage = sorted(attribution.usage.values(),
                   key=lambda u: u.utilization, reverse=True)
    lines.append(f"  {'resource':<22} {'util':>6} {'busy s':>9} "
                 f"{'GB':>9}  occupancy")
    for entry in usage[:top]:
        lines.append(
            f"  {entry.name:<22} {entry.utilization:>6.1%} "
            f"{entry.busy_seconds:>9.3f} "
            f"{entry.bytes_total / 1e9:>9.2f}  "
            f"{_bar(entry.utilization)}")
    if len(usage) > top:
        lines.append(f"  ... {len(usage) - top} quieter resource(s) "
                     f"omitted")

    lines.append("phase x resource ownership (buckets tile the step):")
    lines.append(f"  {'phase':<16} {'resource':<22} {'s':>9} {'%':>7}")
    fractions = attribution.fractions()
    for phase in attribution.phases:
        owned = [(resource, seconds)
                 for (p, resource), seconds in attribution.buckets.items()
                 if p == phase]
        for resource, seconds in sorted(owned, key=lambda kv: -kv[1]):
            share = fractions[(phase, resource)]
            lines.append(f"  {phase:<16} {resource:<22} "
                         f"{seconds:>9.3f} {share:>7.1%}")
    lines.append(verdict.render())

    if report.critpath is not None:
        lines.append(report.critpath.render())
    else:
        lines.append("critical path: no dependency data (source has no "
                     "per-operation records to chain)")

    from .health import evaluate_attribution
    checked = evaluate_attribution(attribution, rules=slo_rules)
    lines.append("health/alerts (SLO rules over this attribution):")
    if checked.alerts:
        for alert in checked.alerts:
            lines.append(f"  {alert.render()}")
    else:
        lines.append("  no active alerts")
    return "\n".join(lines)


def write_events_jsonl(path: str, report: ProfileReport) -> str:
    """Structured JSONL event log of one attribution; returns ``path``."""
    attribution = report.attribution
    verdict = attribution.verdict()
    records: List[Dict[str, object]] = [{
        "type": "meta", "schema": EVENTS_SCHEMA,
        "source": report.source, "label": report.label,
        "step_seconds": attribution.step_seconds,
        "phases": attribution.phases, **report.meta,
    }]
    for name in sorted(attribution.usage):
        entry = attribution.usage[name]
        records.append({
            "type": "utilization", "resource": entry.name,
            "busy_seconds": entry.busy_seconds,
            "utilization": entry.utilization,
            "bytes_total": entry.bytes_total,
            "capacity": entry.capacity,
        })
    fractions = attribution.fractions()
    for (phase, resource), seconds in sorted(attribution.buckets.items()):
        records.append({
            "type": "bucket", "phase": phase, "resource": resource,
            "seconds": seconds, "fraction": fractions[(phase, resource)],
        })
    records.append({
        "type": "verdict", "resource": verdict.resource,
        "utilization": verdict.utilization,
        "owned_seconds": verdict.owned_seconds,
        "owned_fraction": verdict.owned_fraction,
        "rendered": verdict.render(),
    })
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def record_attribution_metrics(registry: MetricsRegistry,
                               attribution: Attribution,
                               **labels: object) -> None:
    """Mirror an attribution into Prometheus-style series.

    Extends the exposition the DES channel bridge already emits with
    the ownership decomposition, so one scrape answers both "how busy"
    and "who owns the step".
    """
    registry.describe("attrib_step_seconds",
                      "Attributed step (iteration) time in seconds.")
    registry.describe("attrib_bucket_seconds",
                      "Owned seconds per phase x resource bucket.")
    registry.describe("attrib_bucket_fraction",
                      "Owned fraction of the step per bucket.")
    registry.describe("attrib_resource_utilization",
                      "Busy fraction of the step per resource.")
    registry.describe("attrib_bottleneck_owned_fraction",
                      "Fraction of the step owned by the bottleneck "
                      "resource.")
    registry.gauge("attrib_step_seconds", **labels).set(
        attribution.step_seconds)
    fractions = attribution.fractions()
    for (phase, resource), seconds in attribution.buckets.items():
        registry.gauge("attrib_bucket_seconds", phase=phase,
                       resource=resource, **labels).set(seconds)
        registry.gauge("attrib_bucket_fraction", phase=phase,
                       resource=resource, **labels).set(
            fractions[(phase, resource)])
    for name, entry in attribution.usage.items():
        registry.gauge("attrib_resource_utilization", resource=name,
                       **labels).set(entry.utilization)
    verdict = attribution.verdict()
    registry.gauge("attrib_bottleneck_owned_fraction",
                   resource=verdict.resource, **labels).set(
        verdict.owned_fraction)
