"""Phase x resource attribution: which link/engine owns each second.

The paper's evaluation is a bottleneck story — Fig. 3b shows the shared
host interconnect saturating under ZeRO-Infinity-style offload, and
Figs. 9/11/14 explain each speedup by naming the link or engine that
stopped being the critical resource.  This module produces that account
mechanically from any run:

* **busy windows** — per-resource ``(start, end)`` occupancy intervals,
  harvested from DES :class:`~repro.sim.resources.TransferRecord` lists
  (:func:`attribute_channels`) or wall-clock spans tagged with a
  ``resource`` attribute (:func:`attribute_spans`);
* **phase windows** — the iteration's ``(phase, start, end)`` intervals
  (fwd / bwd+grad-offload / update for the DES, the engines' top-level
  phase spans for wall-clock);
* **buckets** — a decomposition of every phase into per-resource owned
  time with the invariant that **buckets tile the phases exactly**:
  ``sum(buckets.values()) == step_seconds`` to float precision.

The decomposition sweeps each phase window over the union of resource
interval boundaries.  Each elementary slice is owned by exactly one
bucket: the idle/compute bucket (:data:`COMPUTE`) when no resource is
busy, otherwise the busiest active resource of that phase (total clipped
busy time; lexicographic tie-break).  "Busiest active wins" matches how
the paper narrates critical paths — when the NAND read overlaps the FPGA
updater, the slice is charged to whichever gates the phase overall.

The bottleneck verdict names the resource with the highest busy
*fraction* of the step (utilization), with its owned share alongside:
``bottleneck: host-link-down, 71% occupied, owns 58% of step``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import TelemetryError

#: Bucket owning the slices where no tracked resource is busy (GPU
#: compute, host software overhead, pure pipeline bubbles).
COMPUTE = "compute"

Interval = Tuple[float, float]
PhaseWindow = Tuple[str, float, float]


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Union of (start, end) intervals as a sorted, disjoint list."""
    spans = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Interval] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _clip(intervals: Sequence[Interval], start: float,
          end: float) -> List[Interval]:
    """Intersect disjoint sorted ``intervals`` with [start, end)."""
    clipped = []
    for a, b in intervals:
        lo, hi = max(a, start), min(b, end)
        if hi > lo:
            clipped.append((lo, hi))
    return clipped


@dataclass(frozen=True)
class ResourceUsage:
    """Whole-run occupancy of one link/engine."""

    name: str
    busy_seconds: float
    utilization: float
    bytes_total: float = 0.0
    capacity: Optional[float] = None


@dataclass(frozen=True)
class BottleneckVerdict:
    """The run's critical resource, in the paper's narration format."""

    resource: str
    utilization: float
    owned_seconds: float
    owned_fraction: float
    step_seconds: float

    def render(self) -> str:
        return (f"bottleneck: {self.resource}, "
                f"{self.utilization:.0%} occupied, "
                f"owns {self.owned_fraction:.0%} of step")


@dataclass
class Attribution:
    """Phase x resource decomposition of one iteration/run.

    ``buckets`` maps ``(phase, resource)`` to owned seconds;
    ``usage`` maps resource name to its whole-run occupancy.  The
    construction guarantees the buckets tile the phase windows, so
    :meth:`conservation_error` is zero up to float rounding.
    """

    step_seconds: float
    buckets: Dict[Tuple[str, str], float]
    usage: Dict[str, ResourceUsage]
    phases: List[str] = field(default_factory=list)

    def phase_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for (phase, _resource), seconds in self.buckets.items():
            totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def resource_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for (_phase, resource), seconds in self.buckets.items():
            totals[resource] = totals.get(resource, 0.0) + seconds
        return totals

    def fractions(self) -> Dict[Tuple[str, str], float]:
        if self.step_seconds <= 0:
            return {key: 0.0 for key in self.buckets}
        return {key: seconds / self.step_seconds
                for key, seconds in self.buckets.items()}

    def conservation_error(self) -> float:
        """|sum(buckets) - step_seconds| — zero by construction."""
        return abs(sum(self.buckets.values()) - self.step_seconds)

    def verdict(self) -> BottleneckVerdict:
        """Max-busy-fraction resource plus its owned share of the step."""
        if not self.usage:
            return BottleneckVerdict(
                resource=COMPUTE, utilization=0.0,
                owned_seconds=self.step_seconds,
                owned_fraction=1.0 if self.step_seconds > 0 else 0.0,
                step_seconds=self.step_seconds)
        name = max(sorted(self.usage),
                   key=lambda n: self.usage[n].utilization)
        owned = self.resource_totals().get(name, 0.0)
        return BottleneckVerdict(
            resource=name,
            utilization=self.usage[name].utilization,
            owned_seconds=owned,
            owned_fraction=(owned / self.step_seconds
                            if self.step_seconds > 0 else 0.0),
            step_seconds=self.step_seconds)


def attribute(phase_windows: Sequence[PhaseWindow],
              busy_windows: Mapping[str, Sequence[Interval]],
              bytes_by_resource: Optional[Mapping[str, float]] = None,
              capacities: Optional[Mapping[str, float]] = None,
              horizon: Optional[float] = None) -> Attribution:
    """Decompose phase windows into per-resource owned time.

    ``phase_windows`` must not overlap each other (phases of one
    iteration are sequential); ``busy_windows`` may overlap freely across
    resources.  ``horizon`` (default: total phase time) is the
    denominator for utilization.
    """
    windows = [(str(p), float(s), float(e))
               for p, s, e in phase_windows if e > s]
    ordered = sorted(windows, key=lambda w: w[1])
    for (_, _, prev_end), (name, start, _) in zip(ordered, ordered[1:]):
        if start < prev_end - 1e-12:
            raise TelemetryError(
                f"phase windows overlap at {start:.6f}s (phase {name!r}); "
                f"attribution needs sequential phases")
    merged = {str(name): merge_intervals(intervals)
              for name, intervals in busy_windows.items()}

    step_seconds = sum(end - start for _, start, end in windows)
    if horizon is None:
        horizon = step_seconds
    buckets: Dict[Tuple[str, str], float] = {}
    phases: List[str] = []

    for phase, start, end in ordered:
        if phase not in phases:
            phases.append(phase)
        clipped = {name: _clip(intervals, start, end)
                   for name, intervals in merged.items()}
        clipped = {name: ivs for name, ivs in clipped.items() if ivs}
        # Phase-local weight decides contested slices: the resource that
        # is busiest across the whole phase gates it.
        weight = {name: sum(e - s for s, e in ivs)
                  for name, ivs in clipped.items()}
        cuts = {start, end}
        for ivs in clipped.values():
            for s, e in ivs:
                cuts.add(s)
                cuts.add(e)
        edges = sorted(cuts)
        for lo, hi in zip(edges, edges[1:]):
            if hi <= lo:
                continue
            mid = (lo + hi) / 2.0
            active = [name for name, ivs in clipped.items()
                      if any(s <= mid < e for s, e in ivs)]
            if active:
                owner = max(sorted(active), key=lambda n: weight[n])
            else:
                owner = COMPUTE
            key = (phase, owner)
            buckets[key] = buckets.get(key, 0.0) + (hi - lo)
        # Re-tile exactly: rounding across many slices must not break
        # the conservation invariant the tests assert.
        phase_sum = sum(seconds for (p, _), seconds in buckets.items()
                        if p == phase)
        drift = (end - start) - phase_sum
        if buckets and abs(drift) > 0.0:
            largest = max((key for key in buckets if key[0] == phase),
                          key=lambda key: buckets[key])
            buckets[largest] += drift

    usage: Dict[str, ResourceUsage] = {}
    for name, intervals in merged.items():
        busy = sum(e - s for s, e in intervals)
        usage[name] = ResourceUsage(
            name=name,
            busy_seconds=busy,
            utilization=min(1.0, busy / horizon) if horizon > 0 else 0.0,
            bytes_total=float((bytes_by_resource or {}).get(name, 0.0)),
            capacity=(capacities or {}).get(name))
    return Attribution(step_seconds=step_seconds, buckets=buckets,
                       usage=usage, phases=phases)


def attribute_channels(phase_windows: Sequence[PhaseWindow], channels,
                       horizon: Optional[float] = None) -> Attribution:
    """Attribution from DES channels (``.name``/``.records`` duck type).

    Channels serialize transfers (FIFO), so their record lists are
    already non-overlapping per channel; channels with no traffic are
    omitted rather than reported at 0%.
    """
    busy: Dict[str, List[Interval]] = {}
    nbytes: Dict[str, float] = {}
    caps: Dict[str, float] = {}
    for channel in channels:
        records = getattr(channel, "records", ())
        if not records:
            continue
        busy[channel.name] = [(r.start, r.end) for r in records]
        nbytes[channel.name] = getattr(channel, "bytes_total", 0.0)
        bandwidth = getattr(channel, "bandwidth", None)
        if bandwidth is not None:
            caps[channel.name] = bandwidth
    return attribute(phase_windows, busy, bytes_by_resource=nbytes,
                     capacities=caps, horizon=horizon)


#: Engine span names that mark iteration phases in wall-clock traces.
#: ``interleaved_update`` is the fused offload+update span the
#: interleaved schedule emits in place of the separate ``grad_offload``
#: and ``update`` phases (the work overlaps, so one wall-clock window
#: keeps the phases disjoint for :func:`attribute`).
PHASE_SPAN_NAMES = ("forward_backward", "grad_offload", "update",
                    "interleaved_update")


def attribute_spans(spans, phase_names: Sequence[str] = PHASE_SPAN_NAMES,
                    horizon: Optional[float] = None) -> Attribution:
    """Attribution from wall-clock spans.

    Spans named in ``phase_names`` become phase windows (their repeats
    across iterations accumulate into the same phase label); spans
    carrying a ``resource`` attribute become that resource's busy
    windows.  Worker-thread spans overlap freely — they are merged per
    resource before the sweep.
    """
    phase_windows: List[PhaseWindow] = []
    busy: Dict[str, List[Interval]] = {}
    nbytes: Dict[str, float] = {}
    for span in spans:
        resource = span.attrs.get("resource") if span.attrs else None
        if resource is not None:
            busy.setdefault(str(resource), []).append(
                (span.start, span.end))
            amount = span.attrs.get("nbytes")
            if amount is not None:
                nbytes[str(resource)] = (nbytes.get(str(resource), 0.0)
                                         + float(amount))
        elif span.name in phase_names:
            phase_windows.append((span.name, span.start, span.end))
    return attribute(phase_windows, busy, bytes_by_resource=nbytes,
                     horizon=horizon)
