"""Critical-path observatory: dependency DAGs, slack, what-if replay.

The attribution layer (:mod:`repro.telemetry.attrib`) names the busiest
resource; this module proves which transfers actually *gate* the step
and predicts what an intervention buys.  It reconstructs a per-step
dependency DAG from the two evidence sources the repo already emits —
DES channel records (:class:`repro.sim.resources.TransferRecord`) and
resource-tagged wall-clock spans (:mod:`repro.telemetry.spans`,
including child spans forwarded by the process backend) — then:

* extracts the **critical path** with per-node slack (classic CPM:
  earliest times are the measured schedule, latest times anchor at the
  measured makespan; slack = latest - earliest start, >= 0);
* answers **counterfactual queries** by replaying the DAG with scaled
  node durations: :func:`scale` (a channel gets faster/slower),
  :func:`add_csds` (the device-internal work spreads over more
  devices), :func:`compression_ratio` (the gradient offload shrinks),
  ranked by projected step-time reduction.

Edge inference, in the order the replay semantics force it:

* **serialization edges** — consecutive records on one channel (FIFO by
  construction) with lag 0: a transfer can never start before its
  channel predecessor finishes, but the *request* timing is carried by
  the causal edge, so a faster channel drains its queue earlier instead
  of being pinned to the measured gaps;
* **causal edges** — each node depends on the latest-finishing earlier
  node(s) whose end does not exceed its start.  When the lag is zero
  this is exactly the DES event that resumed the waiting process; a
  positive lag preserves whatever untracked work (compute timeouts,
  driver overheads) separated them;
* **source edges** — nodes with no predecessor anchor to the step
  origin with their measured lead-in as the lag.

Because every edge stores its measured lag, replaying the DAG with
*unchanged* durations reproduces the measured schedule — so a factor-1.0
intervention projects exactly the measured step time, and projection
error under a real intervention comes only from edge inference (the
self-validation in :func:`validate_scale` re-runs the DES with the
intervention actually applied and reports that error).

All heavy dependencies (hw/nn/perf) are imported lazily so
``repro.telemetry`` stays importable on its own.
"""

from __future__ import annotations

import bisect
import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import TelemetryError

#: Schema marker of the critical-path JSONL export.
CRITPATH_SCHEMA = "smart-infinity/critpath/v1"

#: Device-internal resources (per-CSD channels) — the set an
#: :func:`add_csds` intervention spreads across more devices.
_DEVICE_RESOURCE = re.compile(r"^(ssd|csd)(\d+)-")

#: Transfer tags that carry the (possibly compressed) gradient volume.
_GRADIENT_TAGS = ("grad-offload",)


@dataclass(frozen=True)
class DagNode:
    """One tracked operation: a channel transfer or a resource span."""

    index: int
    resource: str
    tag: str
    nbytes: float
    start: float
    end: float
    #: Fixed command overhead of the operation (channel latency); the
    #: remainder (``duration - latency``) is the data-proportional part
    #: interventions scale.
    latency: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class DagEdge:
    """A precedence constraint ``dst`` waits on, with its measured lag.

    ``src`` is a node index, or ``-1`` for the virtual step source;
    ``kind`` is ``serial`` (same-channel FIFO), ``causal``
    (latest-finisher trigger), or ``source`` (step-origin anchor).
    """

    src: int
    dst: int
    lag: float
    kind: str


@dataclass(frozen=True)
class PathStep:
    """One hop of the critical path."""

    resource: str
    tag: str
    nbytes: float
    start: float
    end: float
    duration: float
    #: Wait between the previous path node's end (or the step origin)
    #: and this node's start — untracked time the path spent blocked.
    wait: float


@dataclass
class CritPathReport:
    """The extracted critical path plus its conservation accounting."""

    step_seconds: float
    makespan: float
    path: List[PathStep]
    #: Per-node slack (latest start - earliest start), graph order.
    slack: List[float]
    num_nodes: int
    num_edges: int

    @property
    def path_seconds(self) -> float:
        """Busy time on the path (excludes waits)."""
        return sum(step.duration for step in self.path)

    @property
    def wait_seconds(self) -> float:
        return sum(step.wait for step in self.path)

    def resource_seconds(self) -> Dict[str, float]:
        """Busy seconds on the path, per resource."""
        totals: Dict[str, float] = {}
        for step in self.path:
            totals[step.resource] = (totals.get(step.resource, 0.0)
                                     + step.duration)
        return totals

    def render(self, top: int = 6) -> str:
        """Terminal pane: path composition and coverage."""
        if not self.path:
            return ("critical path: no dependency data (no transfer "
                    "records or resource spans to chain)")
        coverage = (self.path_seconds / self.step_seconds
                    if self.step_seconds > 0 else 0.0)
        lines = [f"critical path — {len(self.path)} of {self.num_nodes} "
                 f"tracked ops, {self.path_seconds:.3f} s busy + "
                 f"{self.wait_seconds:.3f} s waits "
                 f"({coverage:.0%} of {self.step_seconds:.3f} s step)"]
        shares = sorted(self.resource_seconds().items(),
                        key=lambda kv: -kv[1])
        lines.append(f"  {'resource':<22} {'hops':>5} {'busy s':>9} "
                     f"{'of step':>8}")
        hops: Dict[str, int] = {}
        for step in self.path:
            hops[step.resource] = hops.get(step.resource, 0) + 1
        for name, seconds in shares[:top]:
            share = (seconds / self.step_seconds
                     if self.step_seconds > 0 else 0.0)
            lines.append(f"  {name:<22} {hops[name]:>5} {seconds:>9.3f} "
                         f"{share:>8.1%}")
        if len(shares) > top:
            lines.append(f"  ... {len(shares) - top} quieter path "
                         f"resource(s) omitted")
        return "\n".join(lines)


class DepGraph:
    """Per-step dependency DAG over measured operations.

    Nodes are topologically ordered (stable sort by start then end, so
    same-channel FIFO order survives ties); every edge points from a
    lower to a higher index.  ``replay`` recomputes the schedule under
    modified durations; unchanged durations short-circuit to the
    measured schedule, which is what makes factor-1.0 projections exact.
    """

    def __init__(self, nodes: Sequence[DagNode], edges: Sequence[DagEdge],
                 step_seconds: float, origin: float = 0.0) -> None:
        self.nodes = list(nodes)
        self.edges = list(edges)
        self.step_seconds = float(step_seconds)
        self.origin = float(origin)
        #: The step's (phase, start, end) windows, when the builder had
        #: them — schedule-level interventions (:func:`interleave`) need
        #: phase boundaries, not just node timings.
        self.phase_windows: List[Tuple[str, float, float]] = []
        self.preds: List[List[DagEdge]] = [[] for _ in self.nodes]
        self.succs: List[List[DagEdge]] = [[] for _ in self.nodes]
        for edge in self.edges:
            self.preds[edge.dst].append(edge)
            if edge.src >= 0:
                self.succs[edge.src].append(edge)
        self.measured_starts = [node.start for node in self.nodes]
        self.measured_ends = [node.end for node in self.nodes]
        self.makespan = (max(self.measured_ends) - self.origin
                         if self.nodes else 0.0)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_channels(cls, channels: Iterable,
                      phase_windows: Sequence[Tuple[str, float, float]]
                      ) -> "DepGraph":
        """Build from DES channels (``.name``/``.records``/``.latency``).

        ``phase_windows`` (the :class:`~repro.sim.resources.PhaseClock`
        output) define the step duration the projections are measured
        against.
        """
        from ..sim.trace import iter_transfer_records
        raw = [(record.start, record.end, record.channel, record.tag,
                record.nbytes, float(getattr(channel, "latency", 0.0)))
               for record, channel in iter_transfer_records(channels)]
        step_seconds = sum(end - start
                           for _phase, start, end in phase_windows
                           if end > start)
        graph = cls._build(raw, step_seconds, origin=0.0)
        graph.phase_windows = [(str(p), float(s), float(e))
                               for p, s, e in phase_windows]
        return graph

    @classmethod
    def from_spans(cls, spans: Iterable,
                   phase_names: Optional[Sequence[str]] = None
                   ) -> "DepGraph":
        """Build from wall-clock spans.

        Spans carrying a ``resource`` attribute become nodes (the same
        convention :func:`~repro.telemetry.attrib.attribute_spans`
        uses); spans named in ``phase_names`` define the step windows.
        Child-process spans forwarded through
        :meth:`~repro.telemetry.spans.SpanTracer.ingest` are already
        rebased onto the parent clock, so they chain like local ones.
        """
        from .attrib import PHASE_SPAN_NAMES
        names = tuple(phase_names or PHASE_SPAN_NAMES)
        raw: List[Tuple[float, float, str, str, float, float]] = []
        windows: List[Tuple[str, float, float]] = []
        step_seconds = 0.0
        origin: Optional[float] = None
        for span in spans:
            attrs = span.attrs or {}
            resource = attrs.get("resource")
            if resource is not None:
                raw.append((span.start, span.end, str(resource),
                            span.name, float(attrs.get("nbytes", 0.0)),
                            0.0))
            elif span.name in names:
                step_seconds += max(0.0, span.end - span.start)
                windows.append((span.name, span.start, span.end))
                origin = (span.start if origin is None
                          else min(origin, span.start))
        if raw:
            origin = (min(item[0] for item in raw) if origin is None
                      else min(origin, min(item[0] for item in raw)))
        graph = cls._build(raw, step_seconds, origin=origin or 0.0)
        graph.phase_windows = windows
        return graph

    @classmethod
    def from_intervals(cls, busy_by_resource: Mapping[str, Sequence[
            Tuple[float, float]]],
            phase_windows: Sequence[Tuple[str, float, float]]
            ) -> "DepGraph":
        """Build from bare per-resource busy intervals (re-imported
        Chrome traces, where per-record bytes and channel latency are
        gone).  Interval order within one resource must be FIFO."""
        raw: List[Tuple[float, float, str, str, float, float]] = []
        for resource, intervals in busy_by_resource.items():
            for start, end in intervals:
                raw.append((float(start), float(end), str(resource), "",
                            0.0, 0.0))
        step_seconds = sum(end - start
                           for _phase, start, end in phase_windows
                           if end > start)
        origin = min((start for _p, start, _e in phase_windows),
                     default=0.0)
        if raw:
            origin = min(origin, min(item[0] for item in raw))
        graph = cls._build(raw, step_seconds, origin=origin)
        graph.phase_windows = [(str(p), float(s), float(e))
                               for p, s, e in phase_windows]
        return graph

    @classmethod
    def _build(cls, raw: Sequence[Tuple[float, float, str, str, float,
                                        float]],
               step_seconds: float, origin: float) -> "DepGraph":
        ordered = sorted(raw, key=lambda item: (item[0], item[1]))
        nodes = [DagNode(index=i, resource=res, tag=tag, nbytes=nbytes,
                         start=start, end=end, latency=latency)
                 for i, (start, end, res, tag, nbytes, latency)
                 in enumerate(ordered)]
        edges: List[DagEdge] = []
        last_on: Dict[str, int] = {}
        # Finished nodes so far, keyed by end time, for the
        # latest-finisher query (all candidates have a lower index
        # because nodes are processed in start order).
        ends_sorted: List[Tuple[float, int]] = []
        for node in nodes:
            preds = set()
            serial = last_on.get(node.resource)
            if serial is not None:
                # Pure FIFO: lag 0, not the measured gap — the measured
                # request timing is the causal edge's job, and pinning
                # it here would stop a faster channel from draining its
                # queue earlier than it did.
                edges.append(DagEdge(src=serial, dst=node.index,
                                     lag=0.0, kind="serial"))
                preds.add(serial)
            cut = bisect.bisect_right(ends_sorted, (node.start, len(nodes)))
            if cut > 0:
                best_end = ends_sorted[cut - 1][0]
                lo = bisect.bisect_left(ends_sorted, (best_end, -1))
                # Every node finishing exactly at best_end is a
                # plausible trigger (legs of one all_of barrier).
                for end, src in ends_sorted[lo:cut]:
                    lag = max(0.0, node.start - end)
                    if src == serial and lag == 0.0:
                        # Identical to the serial FIFO edge; a positive
                        # lag still gets its own causal edge so the
                        # measured request timing stays anchored.
                        continue
                    edges.append(DagEdge(src=src, dst=node.index,
                                         lag=lag, kind="causal"))
                    preds.add(src)
            if not preds:
                edges.append(DagEdge(src=-1, dst=node.index,
                                     lag=max(0.0, node.start - origin),
                                     kind="source"))
            last_on[node.resource] = node.index
            bisect.insort(ends_sorted, (node.end, node.index))
        return cls(nodes, edges, step_seconds, origin=origin)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def durations(self) -> List[float]:
        """The measured node durations (the replay baseline)."""
        return [node.duration for node in self.nodes]

    def replay(self, durations: Optional[Sequence[float]] = None
               ) -> Tuple[List[float], List[float], float]:
        """Schedule under ``durations``; returns (starts, ends, makespan).

        Starts/ends are absolute (same clock as the measured nodes).
        Unchanged durations return the measured schedule verbatim —
        identity is by construction, not by floating-point luck.
        """
        if durations is None:
            durations = self.durations()
        durations = list(durations)
        if len(durations) != len(self.nodes):
            raise TelemetryError(
                f"replay needs {len(self.nodes)} durations, got "
                f"{len(durations)}")
        if durations == self.durations():
            return (list(self.measured_starts), list(self.measured_ends),
                    self.makespan)
        starts = [0.0] * len(self.nodes)
        ends = [0.0] * len(self.nodes)
        for node in self.nodes:
            ready = self.origin
            for edge in self.preds[node.index]:
                base = self.origin if edge.src < 0 else ends[edge.src]
                ready = max(ready, base + edge.lag)
            starts[node.index] = ready
            ends[node.index] = ready + durations[node.index]
        makespan = (max(ends) - self.origin) if ends else 0.0
        return starts, ends, makespan

    def projected_step_seconds(self,
                               durations: Optional[Sequence[float]] = None
                               ) -> float:
        """Step time under ``durations``: the untracked remainder of the
        step (phase time not covered by the DAG makespan) is constant."""
        _starts, _ends, makespan = self.replay(durations)
        return self.step_seconds + (makespan - self.makespan)

    # ------------------------------------------------------------------
    # critical path + slack
    # ------------------------------------------------------------------
    def critical_path(self) -> CritPathReport:
        """CPM over the measured schedule."""
        n = len(self.nodes)
        starts, ends = self.measured_starts, self.measured_ends
        horizon = self.origin + self.makespan
        tol = 1e-9 * max(1.0, abs(horizon))
        latest_end = [horizon] * n
        for node in reversed(self.nodes):
            for edge in self.succs[node.index]:
                latest_start_succ = (latest_end[edge.dst]
                                     - self.nodes[edge.dst].duration)
                latest_end[node.index] = min(
                    latest_end[node.index], latest_start_succ - edge.lag)
        slack = [max(0.0, (latest_end[i] - self.nodes[i].duration)
                     - starts[i])
                 for i in range(n)]

        path_nodes: List[DagNode] = []
        if self.nodes:
            current = max(range(n), key=lambda i: (ends[i], -i))
            while True:
                node = self.nodes[current]
                path_nodes.append(node)
                determining = None
                for edge in self.preds[current]:
                    if edge.src < 0:
                        continue
                    if abs(ends[edge.src] + edge.lag
                           - starts[current]) <= tol:
                        if (determining is None
                                or ends[edge.src] > ends[determining]
                                or (ends[edge.src] == ends[determining]
                                    and edge.src > determining)):
                            determining = edge.src
                if determining is None:
                    break
                current = determining
            path_nodes.reverse()

        path: List[PathStep] = []
        previous_end = self.origin
        for node in path_nodes:
            path.append(PathStep(
                resource=node.resource, tag=node.tag, nbytes=node.nbytes,
                start=node.start, end=node.end, duration=node.duration,
                wait=max(0.0, node.start - previous_end)))
            previous_end = node.end
        return CritPathReport(step_seconds=self.step_seconds,
                              makespan=self.makespan, path=path,
                              slack=slack, num_nodes=n,
                              num_edges=len(self.edges))

    # ------------------------------------------------------------------
    # introspection helpers for interventions
    # ------------------------------------------------------------------
    def resources(self) -> List[str]:
        """Distinct resources, busiest first."""
        busy: Dict[str, float] = {}
        for node in self.nodes:
            busy[node.resource] = (busy.get(node.resource, 0.0)
                                   + node.duration)
        return sorted(busy, key=lambda name: -busy[name])

    def device_count(self) -> int:
        """Distinct CSD/SSD indices appearing in node resources."""
        indices = set()
        for node in self.nodes:
            match = _DEVICE_RESOURCE.match(node.resource)
            if match:
                indices.add(int(match.group(2)))
        return len(indices)


# ----------------------------------------------------------------------
# interventions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Intervention:
    """A counterfactual edit to the DAG's node durations.

    ``kind`` selects the semantics; ``params`` the knobs.  Durations
    scale only in their data-proportional part: ``duration' = latency +
    (duration - latency) * factor`` — command latency survives any
    bandwidth change.
    """

    kind: str
    label: str
    params: Tuple[Tuple[str, object], ...]

    def param(self, name: str, default: object = None) -> object:
        return dict(self.params).get(name, default)

    def durations(self, graph: DepGraph) -> List[float]:
        """The edited duration vector for ``graph``."""
        if self.kind == "scale":
            channel = str(self.param("channel"))
            factor = float(self.param("factor"))
            return _scale_durations(
                graph, factor,
                lambda node: node.resource == channel)
        if self.kind == "add_csds":
            extra = int(self.param("extra"))
            current = graph.device_count()
            if current <= 0 or extra <= 0:
                return graph.durations()
            factor = current / (current + extra)
            return _scale_durations(
                graph, factor,
                lambda node: _DEVICE_RESOURCE.match(node.resource)
                is not None)
        if self.kind == "compression_ratio":
            ratio = float(self.param("ratio"))
            baseline = float(self.param("baseline"))
            if baseline <= 0:
                raise TelemetryError(
                    "compression_ratio intervention needs a positive "
                    "baseline ratio")
            factor = ratio / baseline
            return _scale_durations(
                graph, factor,
                lambda node: node.tag in _GRADIENT_TAGS)
        raise TelemetryError(
            f"unknown intervention kind {self.kind!r}")


def _scale_durations(graph: DepGraph, factor: float,
                     selector) -> List[float]:
    if factor <= 0:
        raise TelemetryError(
            f"intervention factor must be positive, got {factor}")
    durations = graph.durations()
    if factor == 1.0:
        return durations
    for node in graph.nodes:
        if selector(node):
            data = max(0.0, node.duration - node.latency)
            durations[node.index] = node.latency + data * factor
    return durations


def scale(channel: str, factor: float) -> Intervention:
    """The named channel's transfers take ``factor`` times as long
    (0.5 = the link got twice as fast; 2.0 = half the bandwidth)."""
    return Intervention(
        kind="scale", label=f"scale({channel}, {factor:g})",
        params=(("channel", channel), ("factor", float(factor))))


def add_csds(extra: int) -> Intervention:
    """``extra`` more CSDs: device-internal work (ssd*/csd* channels)
    spreads over ``current + extra`` devices; the shared host link is
    deliberately left unchanged (documented approximation — per-device
    volumes shrink, host-side volume does not)."""
    return Intervention(kind="add_csds", label=f"add_csds(+{extra})",
                        params=(("extra", int(extra)),))


def compression_ratio(ratio: float,
                      baseline: float = 0.02) -> Intervention:
    """SmartComp volume ratio changes from ``baseline`` to ``ratio``:
    gradient-offload transfers scale by ``ratio / baseline``
    (decompressor and P2P-load costs are left unchanged — documented
    approximation)."""
    return Intervention(
        kind="compression_ratio",
        label=f"compression_ratio({ratio:g})",
        params=(("ratio", float(ratio)), ("baseline", float(baseline))))


def interleave() -> Intervention:
    """Project the interleaved schedule from a *phased* trace: the
    update pipeline starts once the first gradient block lands instead
    of at the offload barrier, so the update phase collapses to
    whatever tail the backward span could not hide.  A schedule change
    edits the DAG's *edges*, not its durations, so :func:`project`
    handles this kind analytically from the phase windows rather than
    through a duration replay."""
    return Intervention(kind="interleave", label="interleave()",
                        params=())


def _project_interleave(graph: DepGraph) -> float:
    """Projected step seconds of the interleaved schedule.

    Two regimes bound the fused pipeline's finish time and the max of
    the pair is the projection:

    * update-bound — device work never starves after the first gradient
      block lands at ``gate0``, so the measured update span replays
      intact from there: ``gate0 + span``;
    * gradient-bound — updates drain faster than gradients land, so the
      last subgroup (``span / nsub``) runs after the backward window
      closes: ``b_end + span / nsub``.

    Validated under the 5% what-if gate for the near-storage (smart)
    methods this schedule targets; the baseline's depth-2 RAID pipeline
    shares its write channels with the gradient offload, so on very
    small RAID sets (2 members) the projection can overestimate the
    overlap win beyond the gate — a documented approximation.
    """
    windows = {name: (start, end)
               for name, start, end in graph.phase_windows}
    backward = windows.get("backward_grad") or windows.get("grad_offload")
    update = windows.get("update")
    if backward is None or update is None:
        return graph.step_seconds
    b_end = backward[1]
    u_start, u_end = update
    span = u_end - u_start
    if span <= 0:
        return graph.step_seconds
    grads = [node for node in graph.nodes if node.tag in _GRADIENT_TAGS]
    if not grads:
        return graph.step_seconds
    tol = 1e-9 * max(1.0, abs(u_end))
    first_start = min(node.start for node in grads)
    # The first block's offload legs (shared link + per-device writes)
    # all start together on idle channels; the slowest leg's end is when
    # every device holds gradient block 0.
    gate0 = max(node.end for node in grads
                if node.start <= first_start + tol)
    # Pipeline depth: update ops per engine within the update window
    # (``csd*-updater`` subgroup passes, or the baseline's
    # ``cpu-updater`` block loop).
    per_engine: Dict[str, int] = {}
    for node in graph.nodes:
        if (node.resource.endswith("-updater")
                and node.start >= u_start - tol):
            per_engine[node.resource] = per_engine.get(node.resource,
                                                       0) + 1
    nsub = max(per_engine.values()) if per_engine else 0
    tail = span / nsub if nsub else 0.0
    projected = max(gate0 + span, b_end + tail)
    return min(graph.step_seconds, projected)


@dataclass(frozen=True)
class Projection:
    """One intervention's projected effect on the step time."""

    label: str
    baseline_step_seconds: float
    projected_step_seconds: float

    @property
    def reduction_seconds(self) -> float:
        return self.baseline_step_seconds - self.projected_step_seconds

    @property
    def speedup(self) -> float:
        if self.projected_step_seconds <= 0:
            return 0.0
        return self.baseline_step_seconds / self.projected_step_seconds


def project(graph: DepGraph, intervention: Intervention) -> Projection:
    """Replay the DAG under one intervention."""
    if intervention.kind == "interleave":
        # Edge-level change: handled analytically from phase windows.
        projected = _project_interleave(graph)
    else:
        projected = graph.projected_step_seconds(
            intervention.durations(graph))
    return Projection(label=intervention.label,
                      baseline_step_seconds=graph.step_seconds,
                      projected_step_seconds=projected)


def rank_interventions(graph: DepGraph,
                       interventions: Sequence[Intervention]
                       ) -> List[Projection]:
    """Project every intervention, best step-time reduction first."""
    projections = [project(graph, item) for item in interventions]
    projections.sort(key=lambda p: (-p.reduction_seconds, p.label))
    return projections


def default_interventions(graph: DepGraph, ratio: float = 0.02
                          ) -> List[Intervention]:
    """A canonical candidate set: halve the busiest links' transfer
    times, double the CSD fleet, halve the compression ratio (when the
    run carries gradient-offload traffic)."""
    candidates = [scale(name, 0.5) for name in graph.resources()[:3]]
    devices = graph.device_count()
    if devices > 0:
        candidates.append(add_csds(devices))
    if any(node.tag in _GRADIENT_TAGS for node in graph.nodes):
        candidates.append(compression_ratio(ratio / 2.0,
                                            baseline=ratio))
    names = {name for name, _start, _end in graph.phase_windows}
    if "update" in names and ("backward_grad" in names
                              or "grad_offload" in names):
        candidates.append(interleave())
    return candidates


def render_projections(projections: Sequence[Projection]) -> str:
    """Terminal pane: ranked what-if projections."""
    if not projections:
        return "what-if projections: none requested"
    lines = ["what-if projections (ranked by step-time reduction):"]
    width = max(len(p.label) for p in projections)
    for p in projections:
        lines.append(
            f"  {p.label.ljust(width)}  "
            f"{p.baseline_step_seconds:.3f} s -> "
            f"{p.projected_step_seconds:.3f} s  "
            f"({p.reduction_seconds:+.3f} s saved, "
            f"{p.speedup:.2f}x)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# self-validation: re-run the DES with the intervention applied
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProjectionValidation:
    """Projected vs DES-measured step time for one scale intervention."""

    channel: str
    factor: float
    baseline_step_seconds: float
    projected_step_seconds: float
    actual_step_seconds: float

    @property
    def error(self) -> float:
        """Relative projection error vs the DES re-run."""
        if self.actual_step_seconds <= 0:
            return 0.0
        return (abs(self.projected_step_seconds
                    - self.actual_step_seconds)
                / self.actual_step_seconds)

    def render(self) -> str:
        return (f"validate scale({self.channel}, {self.factor:g}): "
                f"projected {self.projected_step_seconds:.3f} s, "
                f"DES re-run {self.actual_step_seconds:.3f} s "
                f"(error {self.error:.2%})")


class InterleaveValidation(ProjectionValidation):
    """Projected vs DES-measured step time for the schedule change.

    Field-compatible with :class:`ProjectionValidation` (``channel``
    carries the schedule marker) so the JSONL export and the CLI gate
    treat both uniformly.
    """

    def render(self) -> str:
        return (f"validate interleave(): "
                f"projected {self.projected_step_seconds:.3f} s, "
                f"DES re-run {self.actual_step_seconds:.3f} s "
                f"(error {self.error:.2%})")


def validate_interleave(model: str = "gpt2-1.16b", csds: int = 4,
                        method: str = "su_o_c", gpu: str = "a5000",
                        ratio: float = 0.02) -> InterleaveValidation:
    """Project the interleaved schedule from a phased trace, then run
    the DES with ``schedule="interleaved"`` genuinely applied.

    Any disagreement is pure projection error (the two-regime bound in
    :func:`_project_interleave` vs the gated pipeline's real contention).
    """
    from ..hw.gpu import a100_40g, a4000, a5000
    from ..hw.topology import default_system
    from ..nn.models import get_model
    from ..perf.scenarios import trace_scenario
    from ..perf.workload import make_workload

    gpus = {"a5000": a5000, "a100": a100_40g, "a4000": a4000}
    workload = make_workload(get_model(model))
    system = default_system(num_csds=csds, gpu=gpus[gpu]())
    base = trace_scenario(system, workload, method,
                          compression_ratio=ratio)
    graph = DepGraph.from_channels(base.fabric.all_channels(),
                                   base.phase_windows)
    projection = project(graph, interleave())
    rerun = trace_scenario(system, workload, method,
                           compression_ratio=ratio,
                           schedule="interleaved")
    return InterleaveValidation(
        channel="schedule:interleaved", factor=1.0,
        baseline_step_seconds=base.breakdown.total,
        projected_step_seconds=projection.projected_step_seconds,
        actual_step_seconds=rerun.breakdown.total)


def validate_scale(channel: str, factor: float,
                   model: str = "gpt2-1.16b", csds: int = 4,
                   method: str = "su_o_c", gpu: str = "a5000",
                   ratio: float = 0.02) -> ProjectionValidation:
    """Project a channel scaling, then actually apply it in the DES.

    The re-run multiplies the channel's bandwidth by ``1 / factor``
    (a factor-0.5 projection — transfers twice as fast — doubles the
    bandwidth), so per-record durations match the projection exactly
    and any disagreement is pure edge-inference error.
    """
    # Lazy imports: telemetry stays importable without perf/hw/nn.
    from ..hw.gpu import a100_40g, a4000, a5000
    from ..hw.topology import default_system
    from ..nn.models import get_model
    from ..perf.scenarios import trace_scenario
    from ..perf.workload import make_workload

    if factor <= 0:
        raise TelemetryError(
            f"scale factor must be positive, got {factor}")
    gpus = {"a5000": a5000, "a100": a100_40g, "a4000": a4000}
    workload = make_workload(get_model(model))
    system = default_system(num_csds=csds, gpu=gpus[gpu]())
    base = trace_scenario(system, workload, method,
                          compression_ratio=ratio)
    graph = DepGraph.from_channels(base.fabric.all_channels(),
                                   base.phase_windows)
    known = {c.name for c in base.fabric.all_channels()}
    if channel not in known:
        raise TelemetryError(
            f"unknown channel {channel!r}; this run has "
            f"{sorted(known)}")
    projection = project(graph, scale(channel, factor))
    rerun = trace_scenario(system, workload, method,
                           compression_ratio=ratio,
                           channel_scales={channel: 1.0 / factor})
    return ProjectionValidation(
        channel=channel, factor=float(factor),
        baseline_step_seconds=base.breakdown.total,
        projected_step_seconds=projection.projected_step_seconds,
        actual_step_seconds=rerun.breakdown.total)


# ----------------------------------------------------------------------
# condensed + JSONL exports
# ----------------------------------------------------------------------
def condense(report: CritPathReport, top: int = 4) -> Dict[str, object]:
    """The bench-report embedding: coverage plus top path resources."""
    shares = sorted(report.resource_seconds().items(),
                    key=lambda kv: -kv[1])
    return {
        "step_seconds": report.step_seconds,
        "path_seconds": report.path_seconds,
        "wait_seconds": report.wait_seconds,
        "path_fraction": (report.path_seconds / report.step_seconds
                          if report.step_seconds > 0 else 0.0),
        "path_hops": len(report.path),
        "tracked_ops": report.num_nodes,
        "top_resources": {name: round(seconds, 6)
                          for name, seconds in shares[:top]},
    }


def write_critpath_jsonl(path: str, report: CritPathReport,
                         projections: Sequence[Projection] = (),
                         validations: Sequence[ProjectionValidation] = (),
                         meta: Optional[Dict[str, object]] = None) -> str:
    """The ``smart-infinity/critpath/v1`` event log; returns ``path``."""
    records: List[Dict[str, object]] = [{
        "type": "meta", "schema": CRITPATH_SCHEMA,
        "step_seconds": report.step_seconds,
        "makespan": report.makespan,
        "path_seconds": report.path_seconds,
        "wait_seconds": report.wait_seconds,
        "path_hops": len(report.path),
        "tracked_ops": report.num_nodes,
        "edges": report.num_edges,
        **(meta or {}),
    }]
    for index, step in enumerate(report.path):
        records.append({
            "type": "path_step", "index": index,
            "resource": step.resource, "tag": step.tag,
            "nbytes": step.nbytes, "start": step.start,
            "end": step.end, "duration": step.duration,
            "wait": step.wait,
        })
    for resource, seconds in sorted(report.resource_seconds().items()):
        records.append({
            "type": "path_resource", "resource": resource,
            "seconds": seconds,
            "fraction": (seconds / report.step_seconds
                         if report.step_seconds > 0 else 0.0),
        })
    for projection in projections:
        records.append({
            "type": "projection", "label": projection.label,
            "baseline_step_seconds": projection.baseline_step_seconds,
            "projected_step_seconds":
                projection.projected_step_seconds,
            "reduction_seconds": projection.reduction_seconds,
            "speedup": projection.speedup,
        })
    for validation in validations:
        records.append({
            "type": "validation", "channel": validation.channel,
            "factor": validation.factor,
            "projected_step_seconds":
                validation.projected_step_seconds,
            "actual_step_seconds": validation.actual_step_seconds,
            "error": validation.error,
        })
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


__all__ = [
    "CRITPATH_SCHEMA",
    "CritPathReport",
    "DagEdge",
    "DagNode",
    "DepGraph",
    "InterleaveValidation",
    "Intervention",
    "PathStep",
    "Projection",
    "ProjectionValidation",
    "add_csds",
    "compression_ratio",
    "condense",
    "default_interventions",
    "interleave",
    "project",
    "rank_interventions",
    "render_projections",
    "scale",
    "validate_interleave",
    "validate_scale",
    "write_critpath_jsonl",
]
