"""Counters, gauges, and fixed-bucket histograms.

The registry is the numeric half of the telemetry layer: trace spans say
*when* things happened, instruments say *how often* and *how large*.
Every instrument is identified by a metric name plus a label set (e.g.
``storage_pread_latency_us{device="ssd0"}``), mirroring the Prometheus
data model, and the registry renders both a plain ``snapshot()`` dict
for tests and a Prometheus-style text exposition for scraping.

Instruments are thread-safe (one coarse registry lock) and intentionally
dependency-free: fixed bucket bounds instead of dynamic quantile sketches
keep ``observe()`` O(#buckets) and allocation-free.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import TelemetryError

#: Default latency buckets in microseconds: 10us .. 1s, roughly 1-2-5.
LATENCY_BUCKETS_US: Tuple[float, ...] = (
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0,
    10_000.0, 25_000.0, 50_000.0, 100_000.0, 250_000.0, 1_000_000.0)

#: Default throughput buckets in bytes: 1 KiB .. 1 GiB, powers of ~8.
SIZE_BUCKETS_BYTES: Tuple[float, ...] = (
    1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22, 1 << 25, 1 << 28, 1 << 30)

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus text exposition format.

    Label values escape backslash, double-quote, and newline; anything
    else passes through verbatim.
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """HELP text escapes only backslash and newline (not quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(value)}"'
                    for key, value in labels)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing count (events, bytes, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(f"counter increment must be >= 0, "
                                 f"got {amount}")
        self.value += amount


class Gauge:
    """Point-in-time value that can move both ways; tracks its peak."""

    __slots__ = ("value", "peak")

    def __init__(self) -> None:
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = max(self.peak, value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Histogram:
    """Fixed-bucket histogram with cumulative counts, sum, and count.

    ``bounds`` are inclusive upper bucket edges; observations above the
    last bound land in the implicit +Inf bucket.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Iterable[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise TelemetryError("histogram needs at least one bucket")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise TelemetryError(
                f"histogram bounds must be strictly increasing: "
                f"{self.bounds}")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (ending at +Inf)."""
        totals, running = [], 0
        for count in self.bucket_counts:
            running += count
            totals.append(running)
        return totals

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named, labelled instruments with get-or-create access."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}

    def describe(self, name: str, help_text: str) -> None:
        """Attach HELP text to a metric family (any time, idempotent)."""
        with self._lock:
            self._help[name] = help_text

    def _claim(self, name: str, kind: str) -> None:
        seen = self._kinds.setdefault(name, kind)
        if seen != kind:
            raise TelemetryError(
                f"metric {name!r} already registered as {seen}, "
                f"requested {kind}")

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _labelset(labels))
        with self._lock:
            self._claim(name, "counter")
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _labelset(labels))
        with self._lock:
            self._claim(name, "gauge")
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None,
                  **labels: object) -> Histogram:
        key = (name, _labelset(labels))
        with self._lock:
            self._claim(name, "histogram")
            instrument = self._histograms.get(key)
            if instrument is None:
                bounds = tuple(buckets) if buckets is not None \
                    else LATENCY_BUCKETS_US
                instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict view: ``name{labels}`` -> instrument summary."""
        result: Dict[str, Dict] = {}
        with self._lock:
            for (name, labels), counter in self._counters.items():
                result[name + _render_labels(labels)] = {
                    "type": "counter", "value": counter.value}
            for (name, labels), gauge in self._gauges.items():
                result[name + _render_labels(labels)] = {
                    "type": "gauge", "value": gauge.value,
                    "peak": gauge.peak}
            for (name, labels), hist in self._histograms.items():
                result[name + _render_labels(labels)] = {
                    "type": "histogram", "count": hist.count,
                    "sum": hist.sum, "mean": hist.mean(),
                    "buckets": dict(zip(
                        [*hist.bounds, float("inf")], hist.bucket_counts)),
                }
        return result

    def render_prometheus(self) -> str:
        """Prometheus text exposition (counters, gauges, histograms).

        Every family gets ``# HELP`` and ``# TYPE`` header lines (the
        HELP text defaults to a generated description unless
        :meth:`describe` set one), and label values are escaped per the
        exposition format.
        """
        lines: List[str] = []
        typed: set = set()

        def _type_line(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                help_text = self._help.get(
                    name, f"repro {kind} {name} (no description)")
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
                lines.append(f"# TYPE {name} {kind}")

        with self._lock:
            for (name, labels), counter in sorted(self._counters.items()):
                _type_line(name, "counter")
                lines.append(
                    f"{name}{_render_labels(labels)} {counter.value:g}")
            for (name, labels), gauge in sorted(self._gauges.items()):
                _type_line(name, "gauge")
                lines.append(
                    f"{name}{_render_labels(labels)} {gauge.value:g}")
                peak_labels = _labelset(dict(labels, stat="peak"))
                lines.append(
                    f"{name}{_render_labels(peak_labels)} {gauge.peak:g}")
            for (name, labels), hist in sorted(self._histograms.items()):
                _type_line(name, "histogram")
                cumulative = hist.cumulative()
                edges = [f"{bound:g}" for bound in hist.bounds] + ["+Inf"]
                for edge, total in zip(edges, cumulative):
                    le_labels = _labelset(dict(labels, le=edge))
                    lines.append(
                        f"{name}_bucket{_render_labels(le_labels)} {total}")
                rendered = _render_labels(labels)
                lines.append(f"{name}_sum{rendered} {hist.sum:g}")
                lines.append(f"{name}_count{rendered} {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")
