"""Step-health monitoring and a declarative SLO/anomaly rules engine.

The flight recorder (:mod:`~repro.telemetry.flight`) remembers *what
happened*; this module decides *whether it was healthy*.  Three pieces:

* :class:`Ewma` / :class:`SignalWindow` — rolling exponentially-weighted
  mean + variance per signal, O(1) state, no sample retention;
* :class:`StepHealthMonitor` — one window per named per-step signal
  (steps/s, loss finiteness, retry/backoff rates, arena hit rate,
  per-resource utilization, ...), fed once per training step;
* :class:`Rule` / :class:`RulesEngine` — declarative SLO checks loaded
  from JSON (see ``examples/slo.json``): fixed thresholds, relative
  rate-of-change against the signal's own EWMA, and EWMA z-score
  anomaly detection.  Rules fire on *entering* breach and re-arm when
  the signal recovers, so a sustained breach yields one alert (and at
  most one flight-recorder dump), not one per step.

The engines own the wiring: they feed the monitor after every step,
evaluate the rules, and hand alerts to the flight recorder / incident
dumper (:meth:`repro.runtime.engine.MixedPrecisionTrainer`).
"""

from __future__ import annotations

import difflib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import TelemetryError

#: Default EWMA smoothing factor: ~last 8 steps dominate the window.
DEFAULT_ALPHA = 0.25

_RULE_KINDS = ("threshold", "rate_of_change", "ewma_zscore")
_DIRECTIONS = ("above", "below", "rise", "drop")
_SEVERITIES = ("info", "warning", "critical")
_RULE_KEYS = ("name", "kind", "signal", "direction", "value",
              "min_samples", "severity", "message")


class Ewma:
    """Exponentially-weighted mean and variance (West's recurrence)."""

    __slots__ = ("alpha", "mean", "variance", "samples")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise TelemetryError(f"EWMA alpha must be in (0, 1], "
                                 f"got {alpha}")
        self.alpha = alpha
        self.mean: Optional[float] = None
        self.variance = 0.0
        self.samples = 0

    def update(self, value: float) -> None:
        self.samples += 1
        if self.mean is None:
            self.mean = value
            return
        delta = value - self.mean
        self.mean += self.alpha * delta
        self.variance = ((1.0 - self.alpha)
                         * (self.variance + self.alpha * delta * delta))

    @property
    def std(self) -> float:
        return math.sqrt(self.variance) if self.variance > 0.0 else 0.0


class SignalWindow:
    """One signal's rolling state: last value plus its EWMA *before* it.

    ``prev_mean``/``prev_std`` snapshot the EWMA as it stood before the
    latest sample, which is what rate-of-change and z-score rules must
    compare against — a sample must not be judged against statistics it
    already polluted.
    """

    __slots__ = ("name", "last", "samples", "prev_mean", "prev_std",
                 "_ewma")

    def __init__(self, name: str, alpha: float = DEFAULT_ALPHA) -> None:
        self.name = name
        self.last = 0.0
        self.samples = 0
        self.prev_mean: Optional[float] = None
        self.prev_std = 0.0
        self._ewma = Ewma(alpha)

    def update(self, value: float) -> None:
        self.prev_mean = self._ewma.mean
        self.prev_std = self._ewma.std
        self._ewma.update(value)
        self.last = value
        self.samples += 1

    @property
    def ewma(self) -> float:
        return self._ewma.mean if self._ewma.mean is not None else 0.0

    @property
    def std(self) -> float:
        return self._ewma.std

    def zscore(self) -> float:
        """How surprising the last sample was vs the prior EWMA."""
        if self.prev_mean is None or self.prev_std <= 1e-12:
            return 0.0
        return (self.last - self.prev_mean) / self.prev_std


class StepHealthMonitor:
    """Rolling EWMA windows over named per-step health signals."""

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        self.alpha = alpha
        self.signals: Dict[str, SignalWindow] = {}
        self.steps_observed = 0

    def observe(self, **values: float) -> None:
        """Feed one step's signals (missing signals simply don't move)."""
        self.steps_observed += 1
        for name, value in values.items():
            window = self.signals.get(name)
            if window is None:
                window = self.signals[name] = SignalWindow(
                    name, self.alpha)
            window.update(float(value))

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly view: signal -> {last, ewma, std, samples}."""
        return {
            name: {"last": window.last, "ewma": window.ewma,
                   "std": window.std, "samples": window.samples}
            for name, window in sorted(self.signals.items())
        }

    def render(self, top: Optional[int] = None) -> str:
        """Terminal table of the current windows."""
        lines = [f"  {'signal':<26} {'last':>12} {'ewma':>12} "
                 f"{'samples':>8}"]
        names = sorted(self.signals)
        if top is not None:
            names = names[:top]
        for name in names:
            window = self.signals[name]
            lines.append(f"  {name:<26} {window.last:>12.4g} "
                         f"{window.ewma:>12.4g} {window.samples:>8d}")
        if not self.signals:
            lines.append("  (no signals observed yet)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# declarative SLO rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Rule:
    """One declarative SLO/anomaly check over a single signal.

    ``kind`` selects the predicate:

    * ``threshold`` — fire when the last value is ``above``/``below``
      ``value``;
    * ``rate_of_change`` — fire when the last value moved by more than a
      ``value`` *fraction* relative to the signal's prior EWMA, in the
      ``rise``/``drop`` direction (``0.6`` = a 60% collapse);
    * ``ewma_zscore`` — fire when the last value sits more than
      ``value`` prior-EWMA standard deviations from the prior mean, in
      the ``rise``/``drop`` direction.
    """

    name: str
    kind: str
    signal: str
    value: float
    direction: str = "above"
    min_samples: int = 1
    severity: str = "warning"
    message: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _RULE_KINDS:
            raise TelemetryError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {_RULE_KINDS})")
        if self.direction not in _DIRECTIONS:
            raise TelemetryError(
                f"rule {self.name!r}: unknown direction "
                f"{self.direction!r} (expected one of {_DIRECTIONS})")
        if self.kind == "threshold" and self.direction not in (
                "above", "below"):
            raise TelemetryError(
                f"rule {self.name!r}: threshold direction must be "
                f"'above' or 'below', got {self.direction!r}")
        if self.kind in ("rate_of_change", "ewma_zscore") \
                and self.direction not in ("rise", "drop"):
            raise TelemetryError(
                f"rule {self.name!r}: {self.kind} direction must be "
                f"'rise' or 'drop', got {self.direction!r}")
        if self.severity not in _SEVERITIES:
            raise TelemetryError(
                f"rule {self.name!r}: unknown severity "
                f"{self.severity!r} (expected one of {_SEVERITIES})")
        if self.min_samples < 1:
            raise TelemetryError(
                f"rule {self.name!r}: min_samples must be >= 1")

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "Rule":
        if not isinstance(raw, dict):
            raise TelemetryError(f"SLO rule must be an object, "
                                 f"got {type(raw).__name__}")
        unknown = set(raw) - set(_RULE_KEYS)
        if unknown:
            hints = []
            for key in sorted(unknown):
                match = difflib.get_close_matches(key, _RULE_KEYS, n=1)
                hints.append(f"{key!r}"
                             + (f" (did you mean {match[0]!r}?)"
                                if match else ""))
            raise TelemetryError(
                f"SLO rule has unknown key(s): {', '.join(hints)}")
        for required in ("name", "kind", "signal", "value"):
            if required not in raw:
                raise TelemetryError(
                    f"SLO rule missing required key {required!r}: {raw}")
        return cls(
            name=str(raw["name"]), kind=str(raw["kind"]),
            signal=str(raw["signal"]), value=float(raw["value"]),  # type: ignore[arg-type]
            direction=str(raw.get("direction", "above")),
            min_samples=int(raw.get("min_samples", 1)),  # type: ignore[arg-type]
            severity=str(raw.get("severity", "warning")),
            message=(str(raw["message"])
                     if raw.get("message") is not None else None))

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "kind": self.kind,
                "signal": self.signal, "value": self.value,
                "direction": self.direction,
                "min_samples": self.min_samples,
                "severity": self.severity, "message": self.message}

    def check(self, window: SignalWindow) -> Tuple[bool, str]:
        """(breached?, detail) against the signal's current window."""
        if self.kind == "threshold":
            breached = (window.last > self.value
                        if self.direction == "above"
                        else window.last < self.value)
            return breached, (f"{self.signal}={window.last:.4g} "
                              f"{self.direction} limit {self.value:g}")
        if self.kind == "rate_of_change":
            prior = window.prev_mean
            if prior is None or abs(prior) <= 1e-12:
                return False, "no prior EWMA yet"
            change = (window.last - prior) / abs(prior)
            breached = (change <= -self.value
                        if self.direction == "drop"
                        else change >= self.value)
            return breached, (f"{self.signal} moved {change:+.1%} vs "
                              f"EWMA {prior:.4g} (limit "
                              f"{self.value:.0%} {self.direction})")
        # ewma_zscore
        z = window.zscore()
        breached = (z >= self.value if self.direction == "rise"
                    else z <= -self.value)
        return breached, (f"{self.signal}={window.last:.4g} is "
                          f"z={z:+.2f} vs EWMA {window.prev_mean!r} "
                          f"(limit {self.value:g} {self.direction})")


@dataclass
class Alert:
    """One fired rule (or synthetic incident) at a point in time."""

    rule: str
    signal: str
    value: float
    severity: str
    message: str
    step: Optional[int] = None
    kind: str = "slo"  # "slo" rules vs "incident" (dropout/crash/...)

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "signal": self.signal,
                "value": self.value, "severity": self.severity,
                "message": self.message, "step": self.step,
                "kind": self.kind}

    def render(self) -> str:
        step = f" @step {self.step}" if self.step is not None else ""
        return f"[{self.severity}] {self.rule}{step}: {self.message}"


#: Rules applied when an engine gets no explicit ``slo_rules`` config.
#: Raw dicts (not Rule objects) so TrainingConfig can serialize them.
DEFAULT_SLO_RULES: Tuple[Dict[str, object], ...] = (
    {"name": "loss-not-finite", "kind": "threshold",
     "signal": "loss_finite", "direction": "below", "value": 1.0,
     "min_samples": 1, "severity": "critical",
     "message": "loss became NaN/Inf"},
    {"name": "loss-divergence", "kind": "ewma_zscore", "signal": "loss",
     "direction": "rise", "value": 6.0, "min_samples": 5,
     "severity": "critical",
     "message": "loss spiked far above its rolling mean"},
    {"name": "throughput-collapse", "kind": "rate_of_change",
     "signal": "steps_per_s", "direction": "drop", "value": 0.6,
     "min_samples": 4, "severity": "warning",
     "message": "steps/s fell >60% below its rolling mean"},
    {"name": "device-dropout", "kind": "threshold",
     "signal": "dropouts_step", "direction": "above", "value": 0.0,
     "min_samples": 1, "severity": "critical",
     "message": "a CSD dropped out this step"},
    {"name": "retry-storm", "kind": "threshold",
     "signal": "retries_step", "direction": "above", "value": 16.0,
     "min_samples": 1, "severity": "warning",
     "message": "excessive injected-fault retries in one step"},
    {"name": "arena-thrash", "kind": "threshold",
     "signal": "arena_hit_rate", "direction": "below", "value": 0.5,
     "min_samples": 3, "severity": "warning",
     "message": "buffer arenas allocating in steady state"},
)


def parse_rules(raw_rules: Iterable[Dict[str, object]]) -> List[Rule]:
    return [Rule.from_dict(raw) for raw in raw_rules]


def load_slo_rules(path: str) -> List[Rule]:
    """Load rules from a JSON file: ``{"rules": [...]}`` or a bare list."""
    with open(path) as handle:
        document = json.load(handle)
    if isinstance(document, dict):
        raw = document.get("rules")
        if not isinstance(raw, list):
            raise TelemetryError(
                f"SLO file {path!r} must contain a top-level "
                f"'rules' list")
    elif isinstance(document, list):
        raw = document
    else:
        raise TelemetryError(
            f"SLO file {path!r} must be a JSON object or list, "
            f"got {type(document).__name__}")
    return parse_rules(raw)


class RulesEngine:
    """Evaluates rules against a monitor; fires on *entering* breach."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        names = [rule.name for rule in rules]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise TelemetryError(
                f"duplicate SLO rule name(s): {sorted(duplicates)}")
        self.rules = list(rules)
        self._breached: Dict[str, bool] = {r.name: False for r in rules}

    def evaluate(self, monitor: StepHealthMonitor,
                 step: Optional[int] = None) -> List[Alert]:
        """New alerts for rules whose signal just entered breach."""
        alerts: List[Alert] = []
        for rule in self.rules:
            window = monitor.signals.get(rule.signal)
            if window is None or window.samples < rule.min_samples:
                continue
            breached, detail = rule.check(window)
            if breached and not self._breached[rule.name]:
                alerts.append(Alert(
                    rule=rule.name, signal=rule.signal,
                    value=window.last, severity=rule.severity,
                    message=rule.message or detail, step=step))
            self._breached[rule.name] = breached
        return alerts


@dataclass
class AttributionHealth:
    """Health view of a single attribution (for the ``top`` pane)."""

    monitor: StepHealthMonitor
    alerts: List[Alert] = field(default_factory=list)


def evaluate_attribution(attribution, rules: Optional[Sequence[Rule]]
                         = None,
                         saturation: float = 0.9) -> AttributionHealth:
    """SLO view of one attribution: utilization signals + alerts.

    Feeds ``util:<resource>`` signals from the attribution buckets into
    a one-shot monitor, then evaluates the caller's rules plus built-in
    per-resource saturation thresholds.  This is what backs the
    health/alerts pane in ``python -m repro top``.
    """
    monitor = StepHealthMonitor()
    signals: Dict[str, float] = {
        "step_seconds": attribution.step_seconds}
    for name, usage in attribution.usage.items():
        signals[f"util:{name}"] = usage.utilization
    monitor.observe(**signals)

    ruleset: List[Rule] = list(rules or ())
    taken = {rule.name for rule in ruleset}
    for name in sorted(attribution.usage):
        rule_name = f"saturated:{name}"
        if rule_name in taken:
            continue
        ruleset.append(Rule(
            name=rule_name, kind="threshold", signal=f"util:{name}",
            direction="above", value=saturation, severity="info",
            message=f"{name} is >= {saturation:.0%} busy — likely "
                    f"the binding resource"))
    return AttributionHealth(monitor=monitor,
                             alerts=RulesEngine(ruleset).evaluate(monitor))


def render_alerts(alerts: Sequence[Alert]) -> str:
    if not alerts:
        return "alerts: none"
    lines = [f"alerts ({len(alerts)}):"]
    lines.extend(f"  {alert.render()}" for alert in alerts)
    return "\n".join(lines)


__all__ = [
    "Alert",
    "AttributionHealth",
    "DEFAULT_ALPHA",
    "DEFAULT_SLO_RULES",
    "Ewma",
    "Rule",
    "RulesEngine",
    "SignalWindow",
    "StepHealthMonitor",
    "evaluate_attribution",
    "load_slo_rules",
    "parse_rules",
    "render_alerts",
]
