"""repro.telemetry — unified observability: spans, metrics, trace export.

One substrate for every "where did the time/bytes go" question in the
repository (the question the paper's whole evaluation answers):

* :mod:`~repro.telemetry.spans` — nested wall-clock span tracing with
  thread ids, for the functional engines, the transfer handler's worker
  threads, and anything else that runs in real time;
* :mod:`~repro.telemetry.metrics` — counters / gauges / fixed-bucket
  histograms with a ``snapshot()`` dict and Prometheus text exposition;
* :mod:`~repro.telemetry.export` — Chrome trace-event JSON rendering of
  both wall-clock spans *and* sim-time DES transfer records / phase
  windows, loadable in Perfetto as two processes in one file;
* :mod:`~repro.telemetry.attrib` — phase x resource attribution:
  per-link busy windows decomposed into buckets that tile the step
  exactly, plus the bottleneck verdict;
* :mod:`~repro.telemetry.profiler` — the bottleneck observatory built
  on attrib: ``repro top`` rendering, Chrome-trace re-import, JSONL
  event log, and attribution metrics recording;
* :mod:`~repro.telemetry.critpath` — the critical-path observatory:
  per-step dependency DAGs over DES records or wall-clock spans, CPM
  slack, and the what-if projection engine behind ``repro whatif``;
* :mod:`~repro.telemetry.flight` — the always-on flight recorder:
  per-worker ring buffers of recent span/metric/fault/arena events,
  merged on demand into one ordered ``smart-infinity/flightrec/v1``
  JSONL snapshot, with once-per-incident automatic dumps;
* :mod:`~repro.telemetry.health` — per-step health signals as rolling
  EWMA windows plus the declarative SLO/anomaly rules engine
  (threshold, rate-of-change, EWMA z-score) behind ``repro health``.

Telemetry is **off by default** and guaranteed non-perturbing: every
instrumented call site goes through the module-level helpers below,
which reduce to a single global ``None`` check (and shared no-op
objects) when no session is active.  Enabling telemetry never changes
what the engines compute — only what gets recorded — and the test suite
asserts bit-identical training outputs with tracing on vs. off.

Usage::

    from repro import telemetry

    session = telemetry.enable()
    ...  # run engines: spans and metrics accumulate
    telemetry.disable()
    telemetry.write_chrome_trace("run.trace.json",
                                 spans=session.tracer.spans)
    print(session.registry.render_prometheus())

or scoped::

    with telemetry.session() as s:
        engine.train_step(tokens, labels)
    print(s.registry.snapshot())
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .attrib import (Attribution, BottleneckVerdict, COMPUTE,
                     ResourceUsage, attribute, attribute_channels,
                     attribute_spans, merge_intervals)
from .critpath import (CRITPATH_SCHEMA, CritPathReport, DagEdge, DagNode,
                       DepGraph, InterleaveValidation, Intervention,
                       PathStep, Projection,
                       ProjectionValidation, add_csds, compression_ratio,
                       condense as condense_critpath,
                       default_interventions, interleave, project,
                       rank_interventions,
                       render_projections, scale, validate_interleave,
                       validate_scale,
                       write_critpath_jsonl)
from .export import (channels_to_records, chrome_trace, phase_events,
                     record_channel_metrics, record_events, span_events,
                     write_chrome_trace)
from .flight import (FLIGHT_SCHEMA, FlightRecorder, IncidentDumper,
                     record_event as record_flight_event)
from .health import (Alert, DEFAULT_SLO_RULES, Ewma, Rule, RulesEngine,
                     SignalWindow, StepHealthMonitor,
                     evaluate_attribution, load_slo_rules, parse_rules,
                     render_alerts)
from .metrics import (Counter, Gauge, Histogram, LATENCY_BUCKETS_US,
                      MetricsRegistry, SIZE_BUCKETS_BYTES)
from .profiler import (EVENTS_SCHEMA, ProfileReport, load_chrome_trace,
                       profile_scenario, record_attribution_metrics,
                       render_top, write_events_jsonl)
from .spans import NULL_SPAN, Span, SpanToken, SpanTracer

__all__ = [
    "Alert",
    "Attribution",
    "BottleneckVerdict",
    "COMPUTE",
    "CRITPATH_SCHEMA",
    "Counter",
    "CritPathReport",
    "DEFAULT_SLO_RULES",
    "DagEdge",
    "DagNode",
    "DepGraph",
    "EVENTS_SCHEMA",
    "Ewma",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "IncidentDumper",
    "InterleaveValidation",
    "Intervention",
    "PathStep",
    "ProfileReport",
    "Projection",
    "ProjectionValidation",
    "ResourceUsage",
    "Rule",
    "RulesEngine",
    "SignalWindow",
    "StepHealthMonitor",
    "add_csds",
    "attribute",
    "attribute_channels",
    "attribute_spans",
    "compression_ratio",
    "condense_critpath",
    "default_interventions",
    "evaluate_attribution",
    "interleave",
    "load_chrome_trace",
    "load_slo_rules",
    "merge_intervals",
    "parse_rules",
    "profile_scenario",
    "project",
    "rank_interventions",
    "record_attribution_metrics",
    "record_flight_event",
    "render_alerts",
    "render_projections",
    "render_top",
    "scale",
    "validate_interleave",
    "validate_scale",
    "write_critpath_jsonl",
    "write_events_jsonl",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_US",
    "MetricsRegistry",
    "NULL_SPAN",
    "SIZE_BUCKETS_BYTES",
    "Span",
    "SpanToken",
    "SpanTracer",
    "TelemetrySession",
    "active",
    "channels_to_records",
    "chrome_trace",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "phase_events",
    "record_channel_metrics",
    "record_events",
    "session",
    "span_begin",
    "span_end",
    "span_events",
    "trace_span",
    "write_chrome_trace",
]


@dataclass
class TelemetrySession:
    """One enabled telemetry scope: a tracer plus a metrics registry."""

    tracer: SpanTracer = field(default_factory=SpanTracer)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)


#: The active session, or None — the one global the hot paths check.
_active: Optional[TelemetrySession] = None


def enable(existing: Optional[TelemetrySession] = None) -> TelemetrySession:
    """Activate telemetry globally; returns the (new) active session."""
    global _active
    _active = existing if existing is not None else TelemetrySession()
    return _active


def disable() -> Optional[TelemetrySession]:
    """Deactivate telemetry; returns the session that was active."""
    global _active
    previous, _active = _active, None
    return previous


def active() -> Optional[TelemetrySession]:
    return _active


def enabled() -> bool:
    return _active is not None


@contextlib.contextmanager
def session(existing: Optional[TelemetrySession] = None
            ) -> Iterator[TelemetrySession]:
    """Scoped enable/disable, restoring whatever was active before."""
    previous = _active
    current = enable(existing)
    try:
        yield current
    finally:
        enable(previous) if previous is not None else disable()


# ----------------------------------------------------------------------
# instrumentation helpers — the only API call sites should need.
# Each is a no-op costing one global check when telemetry is off.
# ----------------------------------------------------------------------
def trace_span(name: str, **attrs: object):
    """Context manager recording a wall-clock span (no-op when off)."""
    if _active is None:
        return NULL_SPAN
    return _active.tracer.span(name, **attrs)


def span_begin(name: str, **attrs: object) -> Optional[SpanToken]:
    """Open an explicit span; returns None when telemetry is off."""
    if _active is None:
        return None
    return _active.tracer.begin(name, **attrs)


def span_end(token: Optional[SpanToken], **attrs: object) -> None:
    """Close a token from :func:`span_begin` (None tokens are ignored)."""
    if token is not None and _active is not None:
        _active.tracer.end(token, **attrs)


def counter(name: str, amount: float = 1.0, **labels: object) -> None:
    if _active is not None:
        _active.registry.counter(name, **labels).inc(amount)


def gauge(name: str, value: float, **labels: object) -> None:
    if _active is not None:
        _active.registry.gauge(name, **labels).set(value)


def histogram(name: str, value: float, buckets=None,
              **labels: object) -> None:
    if _active is not None:
        _active.registry.histogram(name, buckets=buckets,
                                   **labels).observe(value)
