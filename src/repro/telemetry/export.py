"""Exporters: Chrome trace-event JSON and channel-metrics bridging.

The Chrome trace-event format (one JSON object with a ``traceEvents``
list) is what Perfetto and chrome://tracing load.  This module renders
*both* of the repository's time domains into it:

* **wall-clock** — :class:`~repro.telemetry.spans.Span` records from the
  functional engines, handler worker threads, and storage layer, grouped
  as process ``wall-clock`` with one lane per real thread;
* **sim-time** — DES :class:`~repro.sim.resources.TransferRecord` channel
  activity and phase windows, grouped as process ``sim-time`` with one
  lane per channel (sim seconds are mapped 1:1 onto trace microseconds
  via :data:`SIM_TIME_SCALE`).

Both use complete (``"ph": "X"``) events, so nesting falls out of
interval containment per lane, exactly how the viewers draw it.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.resources import TransferRecord
from ..sim.trace import summarize_channels
from .metrics import MetricsRegistry
from .spans import Span

#: Process ids of the two time domains in the exported trace.
WALL_PID = 1
SIM_PID = 2

#: Trace timestamps are microseconds; wall spans are float seconds.
WALL_TIME_SCALE = 1e6
#: Sim-time seconds also map to trace microseconds (1 sim second = 1 s).
SIM_TIME_SCALE = 1e6

#: Lane reserved for DES phase windows inside the sim-time process.
PHASE_TID = 0


def _metadata(pid: int, tid: int, kind: str, name: str) -> Dict:
    return {"ph": "M", "pid": pid, "tid": tid, "name": kind,
            "args": {"name": name}}


def span_events(spans: Sequence[Span], pid: int = WALL_PID) -> List[Dict]:
    """Wall-clock spans as complete events, one lane per thread."""
    events: List[Dict] = []
    tids: Dict[int, int] = {}
    for span in spans:
        tid = tids.get(span.thread_id)
        if tid is None:
            tid = tids[span.thread_id] = len(tids) + 1
            events.append(_metadata(pid, tid, "thread_name",
                                    span.thread_name))
        args = {"depth": span.depth}
        args.update(span.attrs)
        events.append({
            "name": span.name, "ph": "X", "cat": "wall",
            "ts": span.start * WALL_TIME_SCALE,
            "dur": span.duration * WALL_TIME_SCALE,
            "pid": pid, "tid": tid, "args": args,
        })
    return events


def record_events(records_by_channel: Dict[str, Sequence[TransferRecord]],
                  pid: int = SIM_PID) -> List[Dict]:
    """DES transfer records as complete events, one lane per channel."""
    events: List[Dict] = []
    for index, (channel, records) in enumerate(
            sorted(records_by_channel.items()), start=PHASE_TID + 1):
        events.append(_metadata(pid, index, "thread_name", channel))
        for record in records:
            events.append({
                "name": record.tag or channel, "ph": "X", "cat": "sim",
                "ts": record.start * SIM_TIME_SCALE,
                "dur": record.duration * SIM_TIME_SCALE,
                "pid": pid, "tid": index,
                "args": {"nbytes": record.nbytes, "channel": channel},
            })
    return events


def phase_events(windows: Iterable[Tuple[str, float, float]],
                 pid: int = SIM_PID) -> List[Dict]:
    """DES phase windows (name, start, end) as a dedicated lane."""
    events: List[Dict] = [_metadata(pid, PHASE_TID, "thread_name",
                                    "phases")]
    for name, start, end in windows:
        events.append({
            "name": name, "ph": "X", "cat": "sim-phase",
            "ts": start * SIM_TIME_SCALE,
            "dur": (end - start) * SIM_TIME_SCALE,
            "pid": pid, "tid": PHASE_TID, "args": {},
        })
    return events


def channels_to_records(channels) -> Dict[str, List[TransferRecord]]:
    """Group every channel's retained records under its name."""
    return {channel.name: list(channel.records) for channel in channels}


def chrome_trace(spans: Sequence[Span] = (),
                 channels=(),
                 phases: Iterable[Tuple[str, float, float]] = (),
                 metadata: Optional[Dict] = None) -> Dict:
    """Assemble one loadable Chrome trace-event document.

    ``spans`` populate the wall-clock process; ``channels`` (objects with
    ``.name``/``.records``, i.e. :class:`~repro.sim.resources.Channel`)
    and ``phases`` populate the sim-time process.  Either side may be
    empty; pass both to get the unified two-domain view.
    """
    events: List[Dict] = []
    spans = list(spans)
    records = channels_to_records(channels)
    phases = list(phases)
    if spans:
        events.append(_metadata(WALL_PID, 0, "process_name", "wall-clock"))
        events.extend(span_events(spans))
    if records or phases:
        events.append(_metadata(SIM_PID, 0, "process_name", "sim-time"))
        events.extend(phase_events(phases))
        events.extend(record_events(records))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def write_chrome_trace(path: str, **kwargs) -> str:
    """Write :func:`chrome_trace` output to ``path``; returns the path."""
    document = chrome_trace(**kwargs)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
    return path


def record_channel_metrics(registry: MetricsRegistry, channels,
                           horizon: Optional[float] = None,
                           **labels: object) -> None:
    """Mirror DES channel statistics into the metrics registry.

    The DES never touches wall-clock instruments, so ``--metrics`` on
    simulation commands goes through this bridge: per-channel byte/op
    counters plus busy-time and utilization gauges.  Extra ``labels``
    (e.g. ``method="su_o_c"``) are attached to every instrument.
    """
    for summary in summarize_channels(channels, horizon=horizon):
        registry.counter("des_channel_bytes_total", channel=summary.name,
                         **labels).inc(summary.bytes_total)
        registry.counter("des_channel_ops_total", channel=summary.name,
                         **labels).inc(summary.ops_total)
        registry.gauge("des_channel_busy_seconds", channel=summary.name,
                       **labels).set(summary.busy_time)
        registry.gauge("des_channel_utilization", channel=summary.name,
                       **labels).set(summary.utilization)
