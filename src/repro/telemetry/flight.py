"""Flight recorder: an always-on black box for training runs.

The rest of the telemetry stack explains a run *after* it ends — trace
export, attribution, the bench gate.  The flight recorder answers the
production question those leave open: *what were the last few hundred
things that happened before a device dropped out / a step crashed?*

Design, in the order the requirements force it:

* **per-worker ring segments** — every thread that records gets its own
  fixed-size ring (:class:`_RingSegment`).  Appends are lock-free-ish:
  the owning thread is the only writer, so an append is two slot/index
  stores with no lock taken (snapshots tolerate the resulting benign
  races).  Memory is bounded by ``workers x capacity`` events, ever.
* **global sequence numbers** — each event draws from one atomic
  ``itertools.count``, so :meth:`FlightRecorder.dump` can merge the
  per-worker segments into a single totally-ordered timeline without
  trusting cross-thread clock comparisons.
* **merge-on-dump** — segments are only reconciled when someone asks.
  The per-worker-segment + merge design is deliberately process-agnostic:
  a multiprocessing backend can ship each worker's segment over a pipe
  and feed the same merge.
* **once-per-incident dumps** — :class:`IncidentDumper` writes the
  ``smart-infinity/flightrec/v1`` JSONL snapshot at most once per
  incident key, so a dropout that degrades every subsequent step does
  not bury the interesting dump under 500 identical ones.

Event sources (all cheap, all optional):

* span ends (:mod:`~repro.telemetry.spans`, when a telemetry session is
  active), including the error status of spans that exited via exception;
* fault injections, retries, backoffs and dropouts (:mod:`repro.faults`,
  recorded even without a telemetry session);
* arena cold-path allocations (:mod:`repro.memory`);
* per-step health beacons and alerts (:mod:`~repro.telemetry.health`
  via the engines).

The module-level :func:`record_event` is the only hook call sites need;
it reduces to one global ``None`` check when no recorder is installed.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from typing import Dict, List, Optional, Tuple

#: Schema marker of the flight-recorder JSONL snapshot.
FLIGHT_SCHEMA = "smart-infinity/flightrec/v1"

#: Default ring capacity per worker thread (events, not bytes).
DEFAULT_CAPACITY = 512

#: Event kinds the recorder understands (free-form names within a kind).
EVENT_KINDS = ("span", "metric", "fault", "arena", "step", "alert")

# One event is a tuple — cheaper than a dataclass on the hot path:
#   (seq, ts, kind, name, attrs-or-None)
_Event = Tuple[int, float, str, str, Optional[Dict[str, object]]]


class _RingSegment:
    """One worker thread's fixed-size event ring.

    Single-writer by construction (only the owning thread appends), so
    :meth:`append` takes no lock.  :meth:`snapshot` may run on another
    thread; it copies the slot list first and tolerates the benign race
    of an append landing mid-copy (at worst one event is seen twice or
    not yet — never a torn event, since slot stores are atomic).
    """

    __slots__ = ("capacity", "thread_id", "thread_name", "_slots",
                 "written")

    def __init__(self, capacity: int, thread_id: int,
                 thread_name: str) -> None:
        self.capacity = capacity
        self.thread_id = thread_id
        self.thread_name = thread_name
        self._slots: List[Optional[_Event]] = [None] * capacity
        self.written = 0

    def append(self, event: _Event) -> None:
        self._slots[self.written % self.capacity] = event
        self.written += 1

    @property
    def dropped(self) -> int:
        return max(0, self.written - self.capacity)

    def snapshot(self) -> List[_Event]:
        """The retained events, oldest first."""
        written = self.written
        slots = list(self._slots)
        if written <= self.capacity:
            return [e for e in slots[:written] if e is not None]
        head = written % self.capacity
        ordered = slots[head:] + slots[:head]
        return [e for e in ordered if e is not None]


class FlightRecorder:
    """Fixed-footprint recorder of recent events, per worker thread.

    ``clock`` is injectable for deterministic tests (monotonic float
    seconds); timestamps are relative to the recorder's creation.
    """

    def __init__(self, capacity_per_worker: int = DEFAULT_CAPACITY,
                 clock=time.perf_counter) -> None:
        if capacity_per_worker < 1:
            raise ValueError(
                f"flight recorder capacity must be >= 1, got "
                f"{capacity_per_worker}")
        self.capacity_per_worker = capacity_per_worker
        self._clock = clock
        self._epoch = clock()
        self._seq = itertools.count()  # next() is atomic in CPython
        self._local = threading.local()
        self._segments: List[_RingSegment] = []
        self._segments_lock = threading.Lock()
        # Foreign segments hold events forwarded from other processes'
        # recorders (one ring per worker/thread label, merged like any
        # local worker segment).
        self._foreign: Dict[str, _RingSegment] = {}

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def _segment(self) -> _RingSegment:
        segment = getattr(self._local, "segment", None)
        if segment is None:
            thread = threading.current_thread()
            segment = _RingSegment(self.capacity_per_worker,
                                   thread.ident or 0, thread.name)
            with self._segments_lock:
                self._segments.append(segment)
            self._local.segment = segment
        return segment

    def record(self, kind: str, name: str,
               attrs: Optional[Dict[str, object]] = None,
               **extra: object) -> None:
        """Append one event to the calling thread's ring segment.

        ``attrs`` takes a pre-built dict (e.g. a span's attributes,
        whose keys must not collide with this signature); ``extra``
        kwargs are merged over it.
        """
        if extra:
            merged = dict(attrs) if attrs else {}
            merged.update(extra)
            attrs = merged
        self._segment().append(
            (next(self._seq), self._clock() - self._epoch, kind, name,
             attrs or None))

    # ------------------------------------------------------------------
    # cross-process forwarding
    # ------------------------------------------------------------------
    def export_since(self, cursor: int):
        """Events newer than ``cursor`` as picklable tuples.

        The child-process half of event forwarding: a worker drains its
        own recorder with this after every task and ships the tuples
        (``(abs_ts, kind, name, attrs, thread)``) over the pipe.
        Timestamps are absolute clock values so the parent can rebase
        them onto its own epoch — on Linux ``perf_counter`` is
        CLOCK_MONOTONIC, one clock domain across processes.  Returns
        ``(new_cursor, tuples)``.
        """
        out = []
        last = cursor
        for event in self.events():
            seq = int(event["seq"])
            if seq <= cursor:
                continue
            out.append((float(event["ts"]) + self._epoch,
                        str(event["kind"]), str(event["name"]),
                        event["attrs"] or None, str(event["thread"])))
            last = max(last, seq)
        return last, out

    def ingest(self, worker: str, events) -> None:
        """Merge events forwarded from another process's recorder.

        The parent half: each forwarded tuple lands in a dedicated
        foreign ring segment (keyed ``worker/thread``) with a *fresh*
        parent sequence number, so the merged timeline stays totally
        ordered and a chatty child still cannot evict the parent's own
        events.  Timestamps are rebased from absolute clock values to
        this recorder's epoch.
        """
        for ts_abs, kind, name, attrs, thread in events:
            key = f"{worker}/{thread}" if thread else worker
            segment = self._foreign.get(key)
            if segment is None:
                with self._segments_lock:
                    segment = self._foreign.get(key)
                    if segment is None:
                        segment = _RingSegment(self.capacity_per_worker,
                                               0, key)
                        self._foreign[key] = segment
                        self._segments.append(segment)
            segment.append((next(self._seq), float(ts_abs) - self._epoch,
                            kind, name, attrs))

    # ------------------------------------------------------------------
    # merge-on-dump
    # ------------------------------------------------------------------
    def events(self) -> List[Dict[str, object]]:
        """Merged snapshot of every worker's segment, totally ordered.

        Ordering is by global sequence number — the one total order that
        is consistent across worker threads regardless of clock skew
        between the timestamp read and the append.
        """
        with self._segments_lock:
            segments = list(self._segments)
        merged: List[Tuple[_Event, _RingSegment]] = []
        for segment in segments:
            for event in segment.snapshot():
                merged.append((event, segment))
        merged.sort(key=lambda pair: pair[0][0])
        return [{
            "type": "event",
            "seq": seq, "ts": ts, "kind": kind, "name": name,
            "thread": segment.thread_name,
            "attrs": attrs or {},
        } for (seq, ts, kind, name, attrs), segment in merged]

    def stats(self) -> Dict[str, object]:
        with self._segments_lock:
            segments = list(self._segments)
        return {
            "workers": len(segments),
            "capacity_per_worker": self.capacity_per_worker,
            "events_recorded": sum(s.written for s in segments),
            "events_retained": sum(min(s.written, s.capacity)
                                   for s in segments),
            "events_dropped": sum(s.dropped for s in segments),
        }

    def dump(self, reason: str = "manual",
             **meta: object) -> List[Dict[str, object]]:
        """The full snapshot document as a list of JSONL records."""
        events = self.events()
        head: Dict[str, object] = {
            "type": "meta", "schema": FLIGHT_SCHEMA, "reason": reason,
            **self.stats(), **meta,
        }
        return [head] + events

    def dump_jsonl(self, path: str, reason: str = "manual",
                   **meta: object) -> str:
        """Write the ``smart-infinity/flightrec/v1`` snapshot; returns path."""
        records = self.dump(reason=reason, **meta)
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True,
                                        default=str) + "\n")
        return path


def _slug(text: str) -> str:
    """Filesystem-safe fragment of an incident key."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", text).strip("-") or "incident"


class IncidentDumper:
    """Writes at most one flight-recorder dump per incident key.

    A dropped-out device degrades every later step; without dedup the
    interesting snapshot (the seconds *around* the dropout) would be
    rewritten hundreds of times.  ``limit`` bounds the files one dumper
    writes per run; ``retention``, when set, additionally prunes the
    oldest ``flightrec-*.jsonl`` files in the directory (including ones
    left by earlier runs) down to the newest ``retention`` after every
    write, so a long-lived dump directory does not grow without bound.
    Both knobs are surfaced as ``TrainingConfig.flight_dump_limit`` /
    ``flight_dump_retention``.
    """

    def __init__(self, recorder: FlightRecorder, directory: str,
                 limit: int = 16,
                 retention: Optional[int] = None) -> None:
        if limit < 1:
            raise ValueError(f"dump limit must be positive, got {limit}")
        if retention is not None and retention < 1:
            raise ValueError(
                f"dump retention must be positive, got {retention}")
        self.recorder = recorder
        self.directory = directory
        self.limit = limit
        self.retention = retention
        self._lock = threading.Lock()
        self._paths: Dict[str, str] = {}

    @property
    def paths(self) -> List[str]:
        with self._lock:
            return list(self._paths.values())

    def dump_once(self, key: str, reason: str,
                  **meta: object) -> Optional[str]:
        """Dump for ``key`` unless it already fired; returns the path."""
        with self._lock:
            if key in self._paths or len(self._paths) >= self.limit:
                return None
            index = len(self._paths)
            path = os.path.join(self.directory,
                                f"flightrec-{index:03d}-{_slug(key)}.jsonl")
            # Reserve before the (slow) write so a racing second incident
            # with the same key sees it as already handled.
            self._paths[key] = path
        os.makedirs(self.directory, exist_ok=True)
        written = self.recorder.dump_jsonl(path, reason=reason,
                                           incident=key, **meta)
        if self.retention is not None:
            self._prune(keep=os.path.basename(path))
        return written

    def _prune(self, keep: str) -> None:
        """Drop the oldest ``flightrec-*.jsonl`` files beyond retention.

        Age is the file's mtime (dumps from previous runs count too);
        the just-written file is never pruned even against clock skew.
        """
        try:
            names = [name for name in os.listdir(self.directory)
                     if name.startswith("flightrec-")
                     and name.endswith(".jsonl")]
        except OSError:
            return
        entries = []
        for name in names:
            full = os.path.join(self.directory, name)
            try:
                entries.append((os.path.getmtime(full), name, full))
            except OSError:
                continue
        entries.sort()
        excess = len(entries) - self.retention
        for _mtime, name, full in entries:
            if excess <= 0:
                break
            if name == keep:
                continue
            try:
                os.remove(full)
            except OSError:
                continue
            excess -= 1


# ----------------------------------------------------------------------
# the installed recorder — the one global every hook checks
# ----------------------------------------------------------------------
_recorder: Optional[FlightRecorder] = None


def install(recorder: Optional[FlightRecorder]
            ) -> Optional[FlightRecorder]:
    """Make ``recorder`` the process's active recorder; returns previous."""
    global _recorder
    previous, _recorder = _recorder, recorder
    return previous


def replace(current: Optional[FlightRecorder],
            previous: Optional[FlightRecorder]) -> None:
    """Restore ``previous`` iff ``current`` is still installed.

    The engines' close() path: an engine only tears down the recorder it
    installed, so overlapping engine lifetimes never clobber each other.
    """
    global _recorder
    if _recorder is current:
        _recorder = previous


def active_recorder() -> Optional[FlightRecorder]:
    return _recorder


def record_event(kind: str, name: str, **attrs: object) -> None:
    """Record into the installed recorder (one global check when off)."""
    if _recorder is not None:
        _recorder.record(kind, name, attrs or None)


__all__ = [
    "DEFAULT_CAPACITY",
    "EVENT_KINDS",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "IncidentDumper",
    "active_recorder",
    "install",
    "record_event",
    "replace",
]
