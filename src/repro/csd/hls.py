"""HLS template layer: kernel registry, resource estimation, sanity checks.

The paper ships HLS templates so users can drop in custom updater or
decompressor logic (§VI, Fig. 8).  This module is the software analogue:

* a **registry** of kernel designs (updaters per optimizer, decompressors
  per compression scheme) composed of resource-costed components;
* a **resource estimator** that sums component costs and checks the design
  fits the target FPGA — reproducing Table III's utilization numbers for
  the Adam updater with and without the Top-K decompressor;
* a **sanity checker** that runs a candidate updater kernel against the
  host reference on random data before it is "deployed" (the paper's
  template includes the same).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..errors import KernelError
from ..hw.fpga import FPGAResources, FPGASpec
from ..optim import OPTIMIZERS
from ..optim.base import FlatOptimizer
from .kernels import UpdaterKernel

# ----------------------------------------------------------------------
# component resource costs (calibrated so the composed Adam and
# Adam + Top-K designs reproduce Table III on the KU15P)
# ----------------------------------------------------------------------

#: Static platform shell: PCIe/DMA endpoints, DDR4 controller, XDMA.
SHELL = FPGAResources(luts=90_000, brams=167, urams=12, dsps=41)

#: One floating-point AXPBY lane (two multipliers + adder + registers).
AXPBY_LANE = FPGAResources(luts=1_100, brams=0, urams=0, dsps=3)

#: Streaming buffer set per PE (double-buffered BRAM + URAM staging).
PE_BUFFERS = FPGAResources(luts=500, brams=6, urams=1, dsps=2)

#: Per-design control/burst logic shared by the updater PEs.
UPDATER_CONTROL = FPGAResources(luts=18_900, brams=4, urams=0, dsps=0)

#: The Top-K decompressor: routing only (no arithmetic -> zero DSPs).
TOPK_DECOMPRESSOR = FPGAResources(luts=2_400, brams=0, urams=2, dsps=0)

#: PEs instantiated per updater design (calibrated for >7 GB/s at 250 MHz).
DEFAULT_NUM_PES = 16


@dataclass(frozen=True)
class KernelDesign:
    """A composed accelerator design: named modules with resource usage."""

    name: str
    modules: Dict[str, FPGAResources]

    @property
    def total(self) -> FPGAResources:
        total = FPGAResources(0, 0, 0, 0)
        for usage in self.modules.values():
            total = total + usage
        return total

    def utilization(self, fpga: FPGASpec) -> Dict[str, float]:
        """Percent utilization per resource class on ``fpga``."""
        return self.total.utilization_of(fpga.resources)

    def fits(self, fpga: FPGASpec) -> bool:
        return fpga.resources.fits(self.total)


def updater_design(optimizer_name: str,
                   num_pes: int = DEFAULT_NUM_PES,
                   with_decompressor: bool = False) -> KernelDesign:
    """Compose an updater design for a registered optimizer.

    Optimizers with more moving averages need more AXPBY lanes per PE:
    Adam/AdamW use two moments (two lanes + the parameter update lane),
    SGD-momentum and AdaGrad one moment (two lanes total).
    """
    if optimizer_name.lower() not in OPTIMIZERS:
        raise KernelError(f"unknown optimizer {optimizer_name!r}")
    if num_pes < 1:
        raise KernelError("need at least one PE")
    lanes_per_pe = 3 if optimizer_name.lower() in ("adam", "adamw") else 2

    modules: Dict[str, FPGAResources] = {"shell": SHELL,
                                         "control": UPDATER_CONTROL}
    pe_usage = FPGAResources(0, 0, 0, 0)
    for _ in range(num_pes):
        pe = PE_BUFFERS
        for _lane in range(lanes_per_pe):
            pe = pe + AXPBY_LANE
        pe_usage = pe_usage + pe
    modules[f"updater[{optimizer_name} x{num_pes}PE]"] = pe_usage
    # URAM staging for the subgroup-resident vectors scales with the number
    # of state words (Adam: param+m+v -> more URAM than SGD).
    state_words = OPTIMIZERS[optimizer_name.lower()]().states_per_param
    modules["dram_staging"] = FPGAResources(
        luts=6_000, brams=0, urams=4 * (1 + state_words), dsps=0)
    name = f"{optimizer_name}-updater"
    if with_decompressor:
        modules["topk_decompressor"] = TOPK_DECOMPRESSOR
        name += "+topk"
    return KernelDesign(name=name, modules=modules)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_DesignFactory = Callable[[], KernelDesign]
_REGISTRY: Dict[str, _DesignFactory] = {}


def register_design(name: str, factory: _DesignFactory) -> None:
    """Register a custom design (the user-level extension hook of Fig. 8)."""
    if name in _REGISTRY:
        raise KernelError(f"design {name!r} already registered")
    _REGISTRY[name] = factory


def get_design(name: str) -> KernelDesign:
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KernelError(f"unknown design {name!r}; known: {known}")


def registered_designs() -> List[str]:
    return sorted(_REGISTRY)


for _opt in ("adam", "adamw", "sgd", "adagrad"):
    register_design(f"{_opt}-updater",
                    lambda _opt=_opt: updater_design(_opt))
    register_design(f"{_opt}-updater+topk",
                    lambda _opt=_opt: updater_design(
                        _opt, with_decompressor=True))


# ----------------------------------------------------------------------
# sanity checker
# ----------------------------------------------------------------------

def sanity_check_updater(optimizer: FlatOptimizer,
                         num_elements: int = 4096, num_steps: int = 3,
                         chunk_elements: int = 128, seed: int = 0,
                         ) -> None:
    """Verify a chunked kernel matches the flat host reference bitwise.

    Raises :class:`KernelError` on any mismatch.  This is the "sanity
    checker of logic" the paper's HLS templates include, run before a
    custom updater is used for training.
    """
    rng = np.random.default_rng(seed)
    host_params = rng.standard_normal(num_elements).astype(np.float32)
    kernel_params = host_params.copy()
    host_state = optimizer.init_state(num_elements)
    kernel_state = optimizer.init_state(num_elements)
    kernel = UpdaterKernel(optimizer, chunk_elements=chunk_elements)

    for step in range(1, num_steps + 1):
        grads = rng.standard_normal(num_elements).astype(np.float32)
        optimizer.step(host_params, grads.copy(), host_state, step)
        kernel.run(kernel_params, grads.copy(), kernel_state, step)
        if not np.array_equal(host_params, kernel_params):
            raise KernelError(
                f"updater kernel diverged from host reference at step "
                f"{step}: max |diff| = "
                f"{np.abs(host_params - kernel_params).max()}")
        for name in host_state:
            if not np.array_equal(host_state[name], kernel_state[name]):
                raise KernelError(
                    f"kernel state {name!r} diverged at step {step}")
