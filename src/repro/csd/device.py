"""Functional SmartSSD device: SSD + FPGA emulator + internal P2P path.

A :class:`SmartSSDDevice` owns a real file-backed block device (its NVMe
namespace) and tracks two separate traffic ledgers:

* **host traffic** — bytes moved between the host and the SSD over the
  shared system interconnect (what Table I measures);
* **internal traffic** — bytes moved between the SSD and the FPGA over the
  device's private PCIe switch (invisible to the host link).

The distinction is the entire point of the paper: SmartUpdate converts
host traffic into internal traffic, which aggregates linearly with the
number of devices.  FPGA DRAM allocations are checked against the device's
capacity, so over-subscribing accelerator memory (the OOM problem of §IV-B)
fails here the same way it does on hardware.

Each device owns a private backing file and private traffic ledgers, so
devices can be driven by different worker threads with no cross-device
sharing (see :mod:`repro.runtime.parallel`).  Within one device, the
update worker and the transfer handler's lazy write-back thread overlap;
the :class:`~repro.storage.blockdev.IOCounters` ledgers are internally
locked so that overlap never loses a metered byte.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import CapacityError, KernelError
from ..hw.csd import CSDSpec, smartssd
from ..storage.blockdev import FileBlockDevice, IOCounters
from ..storage.tensor_store import TensorStore
from .kernels import DecompressorKernel, UpdaterKernel


class SmartSSDDevice:
    """One functional CSD with separate host/internal traffic accounting."""

    def __init__(self, path: str, capacity_bytes: int,
                 spec: Optional[CSDSpec] = None,
                 device_id: int = 0, fault_site=None) -> None:
        self.spec = spec or smartssd()
        self.device_id = device_id
        # The same FaultSite covers the NVMe namespace (read/write ops,
        # guarded inside FileBlockDevice) and the FPGA (op="kernel",
        # guarded via fault_guard before each kernel pass).
        self.fault_site = fault_site
        self.ssd = FileBlockDevice(path, capacity_bytes,
                                   name=f"csd{device_id}",
                                   fault_site=fault_site)
        self.store = TensorStore(self.ssd)
        self.host_traffic = IOCounters()
        self.internal_traffic = IOCounters()
        self._dram_allocated = 0
        self._dram_buffers: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # accelerator DRAM management
    # ------------------------------------------------------------------
    @property
    def dram_allocated(self) -> int:
        return self._dram_allocated

    @property
    def dram_capacity(self) -> int:
        return int(self.spec.fpga.dram_bytes)

    def allocate_dram(self, name: str, num_elements: int) -> np.ndarray:
        """Pre-allocate a named float32 buffer in accelerator DRAM.

        Raises :class:`CapacityError` when the device memory would be
        oversubscribed — the failure mode the transfer handler's buffer
        reuse exists to avoid.
        """
        if name in self._dram_buffers:
            raise KernelError(f"DRAM buffer {name!r} already allocated")
        nbytes = 4 * num_elements
        if self._dram_allocated + nbytes > self.dram_capacity:
            raise CapacityError(
                f"csd{self.device_id}: DRAM OOM allocating {name!r} "
                f"({nbytes} B; {self._dram_allocated} of "
                f"{self.dram_capacity} B in use)")
        buffer = np.zeros(num_elements, dtype=np.float32)
        self._dram_buffers[name] = buffer
        self._dram_allocated += nbytes
        return buffer

    def free_dram(self, name: str) -> None:
        buffer = self._dram_buffers.pop(name, None)
        if buffer is None:
            raise KernelError(f"DRAM buffer {name!r} not allocated")
        self._dram_allocated -= 4 * buffer.size

    def dram_buffer(self, name: str) -> np.ndarray:
        try:
            return self._dram_buffers[name]
        except KeyError:
            raise KernelError(f"DRAM buffer {name!r} not allocated")

    # ------------------------------------------------------------------
    # host path (crosses the shared system interconnect)
    # ------------------------------------------------------------------
    def host_write(self, region: str, array: np.ndarray,
                   start: int = 0) -> None:
        """Host -> SSD write (e.g. gradient offload during backward)."""
        self.store.write_slice(region, start, array)
        self.host_traffic.add_write(array.size * array.itemsize)

    def host_read(self, region: str, start: int = 0,
                  count: Optional[int] = None) -> np.ndarray:
        """SSD -> host read (e.g. updated parameters going upstream)."""
        if count is None:
            count = self.store.region(region).num_elements - start
        array = self.store.read_slice(region, start, count)
        self.host_traffic.add_read(array.size * array.itemsize)
        return array

    def host_read_into(self, region: str, out: np.ndarray, start: int = 0,
                       count: Optional[int] = None) -> np.ndarray:
        """SSD -> host read straight into a caller-owned (arena) buffer."""
        if count is None:
            count = self.store.region(region).num_elements - start
        array = self.store.read_slice_into(region, start, count, out)
        self.host_traffic.add_read(array.size * array.itemsize)
        return array

    # ------------------------------------------------------------------
    # internal P2P path (SSD <-> FPGA through the private switch)
    # ------------------------------------------------------------------
    def p2p_read_into(self, region: str, start: int,
                      buffer: np.ndarray, count: int) -> np.ndarray:
        """SSD -> FPGA DRAM read into a pre-allocated buffer slice.

        Zero-copy: the SSD's file bytes land directly in the DRAM
        buffer, with no intermediate ``bytes`` or staging array — the
        functional analogue of the hardware's P2P DMA.  The buffer's
        dtype must match the region's.
        """
        if count > buffer.size:
            raise CapacityError(
                f"p2p read of {count} elements exceeds buffer of "
                f"{buffer.size}")
        view = self.store.read_slice_into(region, start, count, buffer)
        self.internal_traffic.add_read(view.size * view.itemsize)
        return view

    def p2p_read(self, region: str, start: int,
                 count: Optional[int] = None) -> np.ndarray:
        """SSD -> FPGA DRAM read returning a fresh array (any dtype).

        Used for variable-format streams like compressed gradients, where
        the FPGA consumes the data directly rather than staging it in a
        float32 working buffer.
        """
        if count is None:
            count = self.store.region(region).num_elements - start
        array = self.store.read_slice(region, start, count)
        self.internal_traffic.add_read(array.size * array.itemsize)
        return array

    def p2p_write_from(self, region: str, start: int,
                       buffer: np.ndarray, count: int) -> None:
        """FPGA DRAM -> SSD write from a buffer slice."""
        self.store.write_slice(region, start, buffer[:count])
        self.internal_traffic.add_write(4 * count)

    def p2p_write(self, region: str, start: int,
                  array: np.ndarray) -> None:
        """FPGA DRAM -> SSD write of an arbitrary-dtype array (e.g. the
        quantized int8 masters of the §VIII-B extension)."""
        self.store.write_slice(region, start, array)
        self.internal_traffic.add_write(array.size * array.itemsize)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def fault_guard(self, op: str) -> None:
        """Consult the fault plan before a device-side operation.

        The transfer handler calls this with ``op="kernel"`` before each
        FPGA pass; a ``kernel_stall`` fault therefore fires *before* the
        kernel mutates DRAM, so a retried pass still runs exactly once.
        """
        if self.fault_site is not None:
            self.fault_site.guard(op)

    def make_updater(self, optimizer,
                     chunk_elements: int = 16_384) -> UpdaterKernel:
        return UpdaterKernel(optimizer, chunk_elements=chunk_elements)

    def make_decompressor(self,
                          chunk_elements: int = 16_384
                          ) -> DecompressorKernel:
        return DecompressorKernel(chunk_elements=chunk_elements)

    def close(self) -> None:
        self.ssd.close()

    def __enter__(self) -> "SmartSSDDevice":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
