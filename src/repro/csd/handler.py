"""Internal data-transfer handler (§IV-B) — the SU+O optimization.

The naive SmartUpdate loop allocates buffers per subgroup and runs
load -> update -> full write-back strictly sequentially (Fig. 5a).  The
optimized handler (Fig. 5b):

1. **pre-allocates** one device-DRAM buffer per variable, sized for the
   largest subgroup, at initialization (no per-subgroup allocation, no OOM
   from naive double buffering);
2. after the update, **urgently** writes back only the parameters (the
   GPU needs them for the next forward) and immediately lets the next
   subgroup's loads begin reusing the parameter/gradient buffers;
3. **lazily** writes back momentum/variance on a background worker (they
   are only needed at the *next* iteration's update), overlapping those
   writes with the next subgroup's work.

This functional implementation uses a real worker thread, so file I/O for
lazy write-backs genuinely overlaps the caller's next-subgroup work, while
per-variable events enforce the buffer-reuse dependency: a buffer is not
reloaded until its lazy write-back has drained.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..errors import CapacityError, KernelError
from .device import SmartSSDDevice
from .kernels import UpdaterKernel


@dataclass(frozen=True)
class Subgroup:
    """One contiguous slice of a device's flat parameter shard."""

    index: int
    start: int
    count: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.count <= 0:
            raise KernelError(f"invalid subgroup {self}")


def plan_subgroups(total_elements: int,
                   subgroup_elements: int) -> List[Subgroup]:
    """Split ``total_elements`` into DRAM-sized subgroups (the tasklets)."""
    if total_elements <= 0 or subgroup_elements <= 0:
        raise KernelError("element counts must be positive")
    groups = []
    for index, start in enumerate(range(0, total_elements,
                                        subgroup_elements)):
        count = min(subgroup_elements, total_elements - start)
        groups.append(Subgroup(index=index, start=start, count=count))
    return groups


@dataclass
class HandlerStats:
    """Observability for tests and experiments."""

    subgroups_processed: int = 0
    urgent_writebacks: int = 0
    lazy_writebacks: int = 0
    buffer_bytes: int = 0
    #: Peak number of DRAM buffer bytes ever in use (fixed by design).
    peak_buffer_bytes: int = 0
    lazy_queue_peak: int = 0
    timeline: List[Tuple[str, int]] = field(default_factory=list)


class TransferHandler:
    """The optimized internal data-transfer handler for one CSD."""

    #: Region names: parameters are urgent; the rest are lazy.
    URGENT = "master_params"

    def __init__(self, device: SmartSSDDevice, state_names: Sequence[str],
                 max_subgroup_elements: int) -> None:
        if max_subgroup_elements <= 0:
            raise KernelError("max_subgroup_elements must be positive")
        self.device = device
        self.state_names = tuple(state_names)
        self.max_subgroup_elements = max_subgroup_elements
        self._variables = (self.URGENT, "grads") + self.state_names

        # Buffer pre-allocation (the core of the optimization): one buffer
        # per variable, sized for the largest subgroup, allocated once.
        self.buffers: Dict[str, np.ndarray] = {}
        for name in self._variables:
            self.buffers[name] = device.allocate_dram(
                f"handler/{name}", max_subgroup_elements)
        self.stats = HandlerStats(
            buffer_bytes=4 * max_subgroup_elements * len(self._variables))
        self.stats.peak_buffer_bytes = self.stats.buffer_bytes

        # Per-variable "buffer free" latches for lazy write-back reuse.
        self._buffer_free: Dict[str, threading.Event] = {}
        for name in self.state_names:
            event = threading.Event()
            event.set()
            self._buffer_free[name] = event

        self._lazy_queue: "queue.Queue[Optional[Tuple[str, int, int]]]" = (
            queue.Queue())
        # Commit log of lazy state write-backs that actually reached the
        # SSD: (region name, subgroup start).  The engine's demotion path
        # reads it (after abandon() joins the worker) to decide which
        # optimizer-state slices must be recomputed on the host.  Cleared
        # at the start of each update pass.
        self.state_commits: set = set()
        self._writer_error: Optional[BaseException] = None
        self._writer = threading.Thread(
            target=self._drain_lazy, name=f"csd{device.device_id}-lazy",
            daemon=True)
        self._writer.start()
        self._closed = False

    # ------------------------------------------------------------------
    # lazy write-back worker (the paper's "thread 0 defers the remaining
    # variables"; here the deferred writes run on a dedicated worker)
    # ------------------------------------------------------------------
    def _drain_lazy(self) -> None:
        while True:
            item = self._lazy_queue.get()
            if item is None:
                return
            name, start, count = item
            # Explicit begin/end: this span opens and closes inside the
            # worker loop, the case the context-manager form cannot cover.
            token = telemetry.span_begin(
                "handler.lazy_writeback", device=self.device.device_id,
                region=name, elements=count,
                resource=f"ssd{self.device.device_id}-write")
            begin = time.perf_counter() if token is not None else 0.0
            try:
                if self._writer_error is None:
                    self.device.p2p_write_from(name, start,
                                               self.buffers[name], count)
                    self.stats.lazy_writebacks += 1
                    self.state_commits.add((name, start))
            except BaseException as exc:
                # Record the first failure and keep draining: the buffer
                # latches must keep firing or producers would deadlock.
                # The error surfaces at the next _check_writer() sync.
                self._writer_error = exc
            finally:
                self._buffer_free[name].set()
                self._lazy_queue.task_done()
                telemetry.span_end(token)
                if token is not None:
                    telemetry.histogram(
                        "handler_lazy_writeback_latency_us",
                        (time.perf_counter() - begin) * 1e6,
                        device=self.device.device_id)
                    telemetry.gauge("handler_lazy_queue_depth",
                                    self._lazy_queue.qsize(),
                                    device=self.device.device_id)

    def _check_writer(self) -> None:
        if self._writer_error is not None:
            error, self._writer_error = self._writer_error, None
            raise error

    # ------------------------------------------------------------------
    # the update pass
    # ------------------------------------------------------------------
    def run_update_pass(
            self, subgroups: Sequence[Subgroup], kernel: UpdaterKernel,
            step_num: int,
            load_grads: Callable[[Subgroup, np.ndarray], np.ndarray],
            on_params_written: Optional[Callable[[Subgroup], None]] = None,
    ) -> None:
        """Update every subgroup of this device's shard.

        ``load_grads`` fills the gradient buffer for a subgroup (plain P2P
        read for SmartUpdate; decompress-on-FPGA for SmartComp).
        ``on_params_written`` fires right after the urgent parameter
        write-back — the hook the runtime uses to start the upstream
        host transfer early.
        """
        if self._closed:
            raise KernelError("handler is closed")
        self.state_commits.clear()
        for subgroup in subgroups:
            if subgroup.count > self.max_subgroup_elements:
                raise CapacityError(
                    f"subgroup of {subgroup.count} elements exceeds "
                    f"pre-allocated {self.max_subgroup_elements}")
            self._check_writer()

            with telemetry.trace_span(
                    "handler.subgroup", device=self.device.device_id,
                    subgroup=subgroup.index, elements=subgroup.count):
                # Load phase.  Parameters/gradients can load immediately
                # (their buffers were freed by the urgent write-back); each
                # state buffer must wait for its lazy write-back to drain.
                with telemetry.trace_span(
                        "handler.load",
                        resource=f"ssd{self.device.device_id}-read"):
                    params = self.device.p2p_read_into(
                        self.URGENT, subgroup.start,
                        self.buffers[self.URGENT], subgroup.count)
                    grads = load_grads(subgroup, self.buffers["grads"])
                    state = {}
                    for name in self.state_names:
                        self._buffer_free[name].wait()
                        state[name] = self.device.p2p_read_into(
                            name, subgroup.start, self.buffers[name],
                            subgroup.count)

                # Update phase on the FPGA.  The fault guard fires before
                # the kernel touches DRAM, so a retried (stalled) pass
                # still mutates state exactly once.
                with telemetry.trace_span(
                        "handler.kernel",
                        resource=f"csd{self.device.device_id}-updater"):
                    self.device.fault_guard("kernel")
                    kernel.run(params, grads, state, step_num)

                # Urgent write-back: parameters first, synchronously.
                timed = telemetry.enabled()
                begin = time.perf_counter() if timed else 0.0
                self.device.p2p_write_from(self.URGENT, subgroup.start,
                                           self.buffers[self.URGENT],
                                           subgroup.count)
                self.stats.urgent_writebacks += 1
                if timed:
                    telemetry.histogram(
                        "handler_urgent_writeback_latency_us",
                        (time.perf_counter() - begin) * 1e6,
                        device=self.device.device_id)
                if on_params_written is not None:
                    on_params_written(subgroup)

                # Lazy write-back: defer momentum/variance to the worker.
                for name in self.state_names:
                    self._buffer_free[name].clear()
                    self._lazy_queue.put(
                        (name, subgroup.start, subgroup.count))
                self.stats.lazy_queue_peak = max(
                    self.stats.lazy_queue_peak, self._lazy_queue.qsize())
                if timed:
                    telemetry.gauge("handler_lazy_queue_depth",
                                    self._lazy_queue.qsize(),
                                    device=self.device.device_id)
                self.stats.subgroups_processed += 1
                self.stats.timeline.append(("subgroup", subgroup.index))

            # Wait for this subgroup's lazy writes before reusing the state
            # buffers in the next loop iteration (enforced by the events).

        with telemetry.trace_span("handler.synchronize",
                                  device=self.device.device_id):
            self.synchronize()

    def synchronize(self) -> None:
        """Block until every deferred write-back has reached the SSD."""
        for name in self.state_names:
            self._buffer_free[name].wait()
        self._check_writer()

    def close(self) -> None:
        if self._closed:
            return
        self.synchronize()
        self._lazy_queue.put(None)
        self._writer.join(timeout=10.0)
        for name in self._variables:
            self.device.free_dram(f"handler/{name}")
        self._closed = True

    def abandon(self) -> None:
        """Shut down after a device failure, without raising.

        Unlike :meth:`close`, this neither synchronizes (the device is
        gone; pending writes can only fail) nor re-raises the worker's
        recorded error.  It drains the worker so ``state_commits`` is
        final and frees the DRAM buffers.  Used by the engine's demotion
        path before salvaging the shard to the host.
        """
        if self._closed:
            return
        self._lazy_queue.put(None)
        self._writer.join(timeout=10.0)
        self._writer_error = None
        for name in self._variables:
            self.device.free_dram(f"handler/{name}")
        self._closed = True

    def __enter__(self) -> "TransferHandler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def naive_update_pass(
        device: SmartSSDDevice, subgroups: Sequence[Subgroup],
        kernel: UpdaterKernel, step_num: int, state_names: Sequence[str],
        load_grads: Callable[[Subgroup, np.ndarray], np.ndarray],
        on_params_written: Optional[Callable[[Subgroup], None]] = None,
        on_state_written: Optional[Callable[[str, Subgroup], None]] = None,
) -> None:
    """The Fig. 5a baseline: per-subgroup allocation, fully sequential.

    Used by tests to show the optimized handler computes identical results,
    and by the ablation experiments as the plain-SU reference.
    ``on_state_written`` mirrors the optimized handler's commit log: it
    fires after each optimizer-state slice reaches the SSD, letting the
    engine's demotion path track commits on this path too.
    """
    for subgroup in subgroups:
        buffers = {
            name: device.allocate_dram(f"naive{subgroup.index}/{name}",
                                       subgroup.count)
            for name in ("master_params", "grads", *state_names)
        }
        try:
            params = device.p2p_read_into(
                "master_params", subgroup.start, buffers["master_params"],
                subgroup.count)
            grads = load_grads(subgroup, buffers["grads"])
            state = {
                name: device.p2p_read_into(name, subgroup.start,
                                           buffers[name], subgroup.count)
                for name in state_names
            }
            device.fault_guard("kernel")
            with telemetry.trace_span(
                    "naive.kernel",
                    resource=f"csd{device.device_id}-updater"):
                kernel.run(params, grads, state, step_num)
            device.p2p_write_from("master_params", subgroup.start,
                                  buffers["master_params"], subgroup.count)
            if on_params_written is not None:
                on_params_written(subgroup)
            for name in state_names:
                device.p2p_write_from(name, subgroup.start, buffers[name],
                                      subgroup.count)
                if on_state_written is not None:
                    on_state_written(name, subgroup)
        finally:
            for name in buffers:
                device.free_dram(f"naive{subgroup.index}/{name}")
