"""Functional computational-storage emulation: kernels, devices, handler."""

from .device import SmartSSDDevice
from .handler import (HandlerStats, Subgroup, TransferHandler,
                      naive_update_pass, plan_subgroups)
from .hls import (KernelDesign, get_design, register_design,
                  registered_designs, sanity_check_updater, updater_design)
from .kernels import (DecompressorKernel, KernelCounters, KernelTimings,
                      UpdaterKernel)

__all__ = [
    "DecompressorKernel",
    "HandlerStats",
    "KernelCounters",
    "KernelDesign",
    "KernelTimings",
    "SmartSSDDevice",
    "Subgroup",
    "TransferHandler",
    "UpdaterKernel",
    "get_design",
    "naive_update_pass",
    "plan_subgroups",
    "register_design",
    "registered_designs",
    "sanity_check_updater",
    "updater_design",
]
