"""Functional FPGA kernels: the updater and the Top-K decompressor.

These emulate the microarchitecture of §V in software.  The updater and
decompressor process data exactly the way the hardware pipelines do — in
chunks of ``S`` elements that fit the accelerator's BRAM buffer, streaming
through a subgroup of at most ``D`` elements resident in the accelerator's
DRAM — so buffer-size violations that would break the hardware also raise
here.  Because every optimizer update is element-wise, chunked execution is
*bit-identical* to the flat host update; the tests assert this, which is
the software analogue of the paper's claim that SmartUpdate is
"algorithmically identical to the baseline".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..compression.topk import CompressedGradient
from ..errors import KernelError
from ..optim.base import FlatOptimizer

#: Default BRAM chunk: 16K float32 elements (64 KiB), comfortably inside
#: the KU15P's BRAM budget alongside pipeline registers.
DEFAULT_CHUNK_ELEMENTS = 16_384


@dataclass
class KernelCounters:
    """Work counters for throughput analysis (Fig. 14)."""

    invocations: int = 0
    elements_processed: int = 0
    bytes_streamed: int = 0


class UpdaterKernel:
    """The general updater (§V-A): SIMD AXPBY pipeline over one subgroup.

    Wraps a :class:`FlatOptimizer` and replays its element-wise update over
    BRAM-sized chunks, exactly like the hardware PEs stream the subgroup
    from accelerator DRAM.
    """

    def __init__(self, optimizer: FlatOptimizer,
                 chunk_elements: int = DEFAULT_CHUNK_ELEMENTS) -> None:
        if chunk_elements <= 0:
            raise KernelError("chunk_elements must be positive")
        self.optimizer = optimizer
        self.chunk_elements = chunk_elements
        self.counters = KernelCounters()

    def run(self, params: np.ndarray, grads: np.ndarray,
            state: Dict[str, np.ndarray], step_num: int) -> None:
        """Update ``params``/``state`` in place from ``grads``.

        All arrays must be flat float32 views of the accelerator DRAM
        buffers; chunks are processed front to back.
        """
        self.optimizer.check(params, grads, state)
        total = params.size
        for start in range(0, total, self.chunk_elements):
            stop = min(start + self.chunk_elements, total)
            chunk_state = {name: buf[start:stop]
                           for name, buf in state.items()}
            self.optimizer.step(params[start:stop], grads[start:stop],
                                chunk_state, step_num)
        self.counters.invocations += 1
        self.counters.elements_processed += total
        # The pipeline streams grads + all state words in and out.
        words = 1 + self.optimizer.states_per_param
        self.counters.bytes_streamed += 4 * words * total


class DecompressorKernel:
    """The general decompressor (§V-B): chunked Top-K scatter.

    Initializes the gradient buffer to zero, then consumes the compressed
    (indices, values) stream ``S`` pairs at a time, routing each value to
    ``buffer[idx]``.  Purely data movement — no arithmetic — matching the
    near-zero DSP cost in Table III.
    """

    def __init__(self, chunk_elements: int = DEFAULT_CHUNK_ELEMENTS) -> None:
        if chunk_elements <= 0:
            raise KernelError("chunk_elements must be positive")
        self.chunk_elements = chunk_elements
        self.counters = KernelCounters()

    def run(self, compressed: CompressedGradient,
            output: np.ndarray) -> np.ndarray:
        """Decompress into ``output`` (a flat float32 DRAM buffer)."""
        if output.dtype != np.float32 or output.ndim != 1:
            raise KernelError("output buffer must be flat float32")
        if output.size < compressed.original_size:
            raise KernelError(
                f"output buffer of {output.size} elements cannot hold "
                f"decompressed size {compressed.original_size}")
        view = output[:compressed.original_size]
        view[:] = 0.0
        indices = compressed.indices
        values = compressed.values
        # One vectorized bounds check over the whole stream (the hardware
        # validates the index range once at stream setup); the per-chunk
        # loop below is then pure scatter with no reduction passes.
        if indices.size and (int(indices.min()) < 0
                             or int(indices.max())
                             >= compressed.original_size):
            raise KernelError("compressed index out of range")
        for start in range(0, indices.size, self.chunk_elements):
            stop = min(start + self.chunk_elements, indices.size)
            view[indices[start:stop]] = values[start:stop]
        self.counters.invocations += 1
        self.counters.elements_processed += compressed.original_size
        self.counters.bytes_streamed += (compressed.nbytes
                                         + 4 * compressed.original_size)
        return view


@dataclass
class KernelTimings:
    """Modelled execution times of the kernels on a given FPGA.

    Functional kernels compute results; timing comes from the calibrated
    FPGA spec (Fig. 14 reports updater > 7 GB/s and decompressor slightly
    above SSD read bandwidth).
    """

    updater_bandwidth: float
    decompressor_bandwidth: float
    launch_latency: float = 30e-6

    def updater_time(self, subgroup_bytes: float) -> float:
        """Seconds for the updater to stream ``subgroup_bytes`` of state."""
        return self.launch_latency + subgroup_bytes / self.updater_bandwidth

    def decompressor_time(self, decompressed_bytes: float) -> float:
        """Seconds to produce ``decompressed_bytes`` of dense gradients."""
        return (self.launch_latency
                + decompressed_bytes / self.decompressor_bandwidth)
