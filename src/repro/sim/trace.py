"""Timeline and bottleneck analysis over simulated channels.

The experiments mostly report phase totals; this module answers the
next question an architect asks: *which channel is the bottleneck?*
It aggregates the per-transfer records every :class:`Channel` keeps into
utilization and byte summaries, finds the busiest resource, and can render
a coarse ASCII timeline — the tooling behind the bottleneck statements in
the paper's narrative (shared link for the baseline, NAND write for
SmartUpdate, upstream for SmartComp).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .resources import Channel, TransferRecord


@dataclass(frozen=True)
class ChannelSummary:
    """Aggregated activity of one channel over a simulation run."""

    name: str
    bandwidth: float
    busy_time: float
    bytes_total: float
    ops_total: int
    utilization: float

    @property
    def achieved_bandwidth(self) -> float:
        """Average delivered bytes/s while busy."""
        if self.busy_time <= 0:
            return 0.0
        return self.bytes_total / self.busy_time


def summarize_channels(channels: Iterable[Channel],
                       horizon: Optional[float] = None
                       ) -> List[ChannelSummary]:
    """Summaries for every channel, sorted by busy time (descending)."""
    summaries = []
    for channel in channels:
        busy = channel.busy_time()
        end = horizon if horizon is not None else channel.sim.now
        summaries.append(ChannelSummary(
            name=channel.name,
            bandwidth=channel.bandwidth,
            busy_time=busy,
            bytes_total=channel.bytes_total,
            ops_total=channel.ops_total,
            utilization=min(1.0, busy / end) if end > 0 else 0.0,
        ))
    summaries.sort(key=lambda s: s.busy_time, reverse=True)
    return summaries


def iter_transfer_records(channels: Iterable[Channel]
                          ) -> List[Tuple[TransferRecord, Channel]]:
    """Every transfer record across ``channels`` with its owning channel,
    globally ordered by (start, end).

    Ties keep each channel's own FIFO record order (Python's sort is
    stable), which is what lets the dependency-graph builder
    (:mod:`repro.telemetry.critpath`) treat the returned order as a
    topological order of the measured schedule.
    """
    pairs: List[Tuple[TransferRecord, Channel]] = []
    for channel in channels:
        for record in channel.records:
            pairs.append((record, channel))
    pairs.sort(key=lambda pair: (pair[0].start, pair[0].end))
    return pairs


def bottleneck(channels: Iterable[Channel],
               horizon: Optional[float] = None) -> ChannelSummary:
    """The channel with the most cumulative busy time."""
    summaries = summarize_channels(channels, horizon=horizon)
    if not summaries:
        raise ValueError("no channels to analyse")
    return summaries[0]


def busy_in_window(records: Sequence[TransferRecord], start: float,
                   end: float) -> float:
    """Seconds of the window [start, end) covered by transfers."""
    if end <= start:
        return 0.0
    total = 0.0
    for record in records:
        lo = max(record.start, start)
        hi = min(record.end, end)
        if hi > lo:
            total += hi - lo
    return total


def render_timeline(channels: Sequence[Channel], horizon: float,
                    width: int = 60) -> str:
    """A coarse ASCII Gantt view: one row per channel, ``width`` buckets.

    Bucket glyphs: ``' '`` idle, ``'.'`` <50% busy, ``'#'`` >=50% busy.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if width <= 0:
        raise ValueError("width must be positive")
    bucket = horizon / width
    label_width = max((len(c.name) for c in channels), default=0)
    lines = [f"timeline over {horizon:.3f}s "
             f"({bucket * 1000:.1f} ms/char)"]
    for channel in channels:
        cells = []
        for index in range(width):
            start = index * bucket
            busy = busy_in_window(channel.records, start, start + bucket)
            fraction = busy / bucket
            if fraction < 1e-9:
                cells.append(" ")
            elif fraction < 0.5:
                cells.append(".")
            else:
                cells.append("#")
        lines.append(f"{channel.name.ljust(label_width)} |"
                     + "".join(cells) + "|")
    return "\n".join(lines)


def traffic_by_tag(channels: Iterable[Channel]) -> Dict[str, float]:
    """Total bytes per transfer tag across all channels."""
    totals: Dict[str, float] = {}
    for channel in channels:
        for record in channel.records:
            totals[record.tag] = totals.get(record.tag, 0.0) + record.nbytes
    return totals


def phase_channel_matrix(channels: Iterable[Channel],
                         phases: Dict[str, Tuple[float, float]]
                         ) -> Dict[str, Dict[str, float]]:
    """Busy seconds per (phase, channel) — who is loaded when."""
    matrix: Dict[str, Dict[str, float]] = {}
    for phase, (start, end) in phases.items():
        row = {}
        for channel in channels:
            row[channel.name] = busy_in_window(channel.records, start, end)
        matrix[phase] = row
    return matrix
