"""Generator-based discrete-event simulation kernel.

This is the substrate under every performance experiment in the paper
reproduction.  The design follows the classic coroutine style (as in SimPy):
model code is written as Python generators that ``yield`` *events*; the
simulator advances virtual time by popping a time-ordered heap of scheduled
events and resuming the processes waiting on them.

Only the features the Smart-Infinity performance model needs are implemented:

* :class:`Event` — one-shot triggerable with a value and callbacks.
* :class:`Timeout` — an event scheduled ``delay`` seconds in the future.
* :class:`Process` — wraps a generator; is itself an event that triggers when
  the generator returns (so processes can ``yield`` other processes to join).
* :class:`AllOf` — barrier over several events.
* :class:`Simulator` — the event loop with deterministic FIFO tie-breaking.

Determinism matters: two events scheduled for the same instant fire in the
order they were scheduled, so simulated breakdowns are exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..errors import SimulationError

#: Type of the generators that implement simulation processes.
ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* exactly once via
    :meth:`succeed` (or :meth:`fail`), and then invokes its callbacks in
    registration order.  Processes wait on events by yielding them.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self.failed = False
        self._callbacks: List[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with ``value`` and run its callbacks."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as a failure carrying ``exception``."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.failed = True
        return self.succeed(exception)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when triggered (immediately if already)."""
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "timeout") -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=name)
        sim._schedule(sim.now + delay, self, value)


class AllOf(Event):
    """Barrier event: triggers once every child event has triggered.

    The value is the list of child values in the order the children were
    given.  An empty iterable triggers immediately.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 name: str = "all_of") -> None:
        super().__init__(sim, name=name)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            sim._schedule(sim.now, self, [])
            return
        for child in self._children:
            child.add_callback(self._child_done)

    def _child_done(self, _event: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([child.value for child in self._children])


class Process(Event):
    """A running simulation coroutine.

    Wraps a generator: each yielded :class:`Event` suspends the process until
    that event triggers, at which point the event's value is sent back into
    the generator.  When the generator returns, the process (itself an event)
    triggers with the return value, so other processes can join it with
    ``yield process``.
    """

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "process") -> None:
        super().__init__(sim, name=name)
        self._generator = generator
        # Start on the next simulator dispatch at the current time so that
        # process creation order, not generator body order, stays the only
        # source of interleaving.
        bootstrap = Event(sim, name=f"{name}/start")
        bootstrap.add_callback(self._resume)
        sim._schedule(sim.now, bootstrap, None)

    def _resume(self, event: Event) -> None:
        if event.failed:
            try:
                target = self._generator.throw(event.value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                raise
        else:
            try:
                target = self._generator.send(event.value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                # Model-code bug: mark the process failed (so joiners are
                # notified) and surface the error to the caller of run().
                self.fail(exc)
                raise
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances")
        target.add_callback(self._resume)


class Simulator:
    """The discrete-event loop.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 1.0 and proc.value == "done"
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Any] = []
        self._sequence = itertools.count()
        self._processed = 0

    # ------------------------------------------------------------------
    # time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (useful for budget checks)."""
        return self._processed

    def _schedule(self, when: float, event: Event, value: Any) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self._now}")
        heapq.heappush(self._heap, (when, next(self._sequence), event, value))

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self, name: str = "event") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value=value)

    def process(self, generator: ProcessGenerator,
                name: str = "process") -> Process:
        """Start ``generator`` as a process and return its handle."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create a barrier that triggers once all ``events`` have."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: int = 50_000_000) -> float:
        """Dispatch events until the heap drains (or ``until`` is reached).

        Returns the final simulated time.  ``max_events`` guards against
        accidental infinite event loops in model code.
        """
        budget = max_events
        while self._heap:
            when, _seq, event, value = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = when
            self._processed += 1
            budget -= 1
            if budget < 0:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a runaway "
                    "simulation loop")
            if not event.triggered:
                event.succeed(value)
        if until is not None and until > self._now:
            self._now = until
        return self._now
