"""Shared resources for the simulation kernel: channels, semaphores, stores.

The central abstraction is :class:`Channel`, a bandwidth-limited link that
serializes transfers (FIFO).  Every PCIe link, SSD interface, and compute
engine in the Smart-Infinity performance model is a channel; contention on
the shared host interconnect versus the private CSD-internal switches — the
phenomenon the whole paper is about — falls directly out of which channel a
transfer is enqueued on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional, Tuple

from ..errors import SimulationError
from .core import Event, Simulator


@dataclass(frozen=True)
class TransferRecord:
    """One completed channel operation, kept for breakdown analysis."""

    channel: str
    tag: str
    nbytes: float
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Channel:
    """A bandwidth-limited, FIFO-serialized link.

    A transfer of ``nbytes`` occupies the channel for ``latency +
    nbytes / bandwidth`` seconds.  Concurrent requests queue behind each
    other, which is the first-order model of a PCIe link or an SSD interface:
    aggregate throughput never exceeds the channel bandwidth, and transfers
    on *different* channels overlap freely.

    Channels also double as compute engines (e.g. the FPGA updater): a
    "transfer" is then the number of bytes the engine streams through at its
    processing throughput.
    """

    def __init__(self, sim: Simulator, name: str, bandwidth: float,
                 latency: float = 0.0, record: bool = True) -> None:
        if bandwidth <= 0:
            raise SimulationError(
                f"channel {name!r} needs positive bandwidth, got {bandwidth}")
        if latency < 0:
            raise SimulationError(
                f"channel {name!r} needs non-negative latency, got {latency}")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        self._free_at = 0.0
        self._record = record
        self.records: List[TransferRecord] = []
        self.bytes_total = 0.0
        self.ops_total = 0

    def busy_time(self) -> float:
        """Total time this channel has spent occupied by transfers."""
        return sum(rec.duration for rec in self.records)

    def transfer(self, nbytes: float, tag: str = "") -> Event:
        """Enqueue a transfer; returns the event of its completion.

        Zero-byte transfers still pay the channel latency, which models
        command overhead (e.g. an NVMe doorbell) without moving data.
        """
        if nbytes < 0:
            raise SimulationError(
                f"negative transfer size {nbytes} on channel {self.name!r}")
        start = max(self.sim.now, self._free_at)
        duration = self.latency + nbytes / self.bandwidth
        end = start + duration
        self._free_at = end
        self.bytes_total += nbytes
        self.ops_total += 1
        if self._record:
            self.records.append(TransferRecord(
                channel=self.name, tag=tag, nbytes=nbytes,
                start=start, end=end))
        return self.sim.timeout(end - self.sim.now, value=nbytes)

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of ``horizon`` (default: now) the channel was busy."""
        horizon = self.sim.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time() / horizon)


class Semaphore:
    """Counted resource with FIFO acquisition order.

    Used to model exclusive engines (a CPU update thread, a DMA engine) or
    bounded buffer pools (the transfer handler's pre-allocated buffers).
    """

    def __init__(self, sim: Simulator, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(
                f"semaphore {name!r} needs capacity >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self.max_in_use = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> Event:
        """Request a slot; the returned event triggers when granted."""
        event = self.sim.event(name=f"{self.name}/acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            self.max_in_use = max(self.max_in_use, self._in_use)
            self.sim._schedule(self.sim.now, event, None)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(
                f"semaphore {self.name!r} released more than acquired")
        if self._waiters:
            event = self._waiters.popleft()
            self.sim._schedule(self.sim.now, event, None)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO hand-off queue between processes."""

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            event = self._getters.popleft()
            self.sim._schedule(self.sim.now, event, item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Request the next item; the returned event carries it."""
        event = self.sim.event(name=f"{self.name}/get")
        if self._items:
            self.sim._schedule(self.sim.now, event, self._items.popleft())
        else:
            self._getters.append(event)
        return event


@dataclass
class PhaseClock:
    """Accumulates wall-clock time per named phase of a simulated run.

    The experiments report per-phase breakdowns (FW / BW+grad-offload /
    update+optimizer-traffic); model code brackets each phase with
    :meth:`begin`/:meth:`end` and the clock sums durations per label.
    """

    sim: Simulator
    totals: dict = field(default_factory=dict)
    #: Every closed (phase, start, end) interval, in completion order —
    #: the phase windows the Chrome-trace exporter renders as a lane.
    windows: List[Tuple[str, float, float]] = field(default_factory=list)
    _open: dict = field(default_factory=dict)

    def begin(self, phase: str) -> None:
        if phase in self._open:
            raise SimulationError(f"phase {phase!r} already open")
        self._open[phase] = self.sim.now

    def end(self, phase: str) -> None:
        if phase not in self._open:
            raise SimulationError(f"phase {phase!r} was not begun")
        start = self._open.pop(phase)
        self.windows.append((phase, start, self.sim.now))
        self.totals[phase] = self.totals.get(phase, 0.0) + (
            self.sim.now - start)

    def total(self) -> float:
        return sum(self.totals.values())
