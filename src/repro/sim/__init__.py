"""Discrete-event simulation kernel used by the performance model."""

from .core import AllOf, Event, Process, Simulator, Timeout
from .resources import Channel, PhaseClock, Semaphore, Store, TransferRecord
from .trace import (ChannelSummary, bottleneck, busy_in_window,
                    phase_channel_matrix, render_timeline,
                    summarize_channels, traffic_by_tag)

__all__ = [
    "AllOf",
    "Channel",
    "ChannelSummary",
    "Event",
    "PhaseClock",
    "Process",
    "Semaphore",
    "Simulator",
    "Store",
    "Timeout",
    "TransferRecord",
    "bottleneck",
    "busy_in_window",
    "phase_channel_matrix",
    "render_timeline",
    "summarize_channels",
    "traffic_by_tag",
]
