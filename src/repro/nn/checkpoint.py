"""Block-wise activation checkpointing (the Fig. 1 forward/backward).

Storage-offloaded training splits the model into blocks sized to what the
GPU can hold: the forward pass keeps only the *block boundary* activations
(checkpointed "to host memory" in the paper's Fig. 1a), and the backward
pass re-materializes each block's internal graph one block at a time
(Fig. 1b), so peak autograd memory is one block's worth instead of the
whole model's.

Implementation: the forward of every block runs under :func:`no_grad`
(no graph retained) while the boundary inputs are stored; the loss tensor
returned carries a custom backward closure that walks the blocks in
reverse, re-running each block's forward *with* grad from its stored
boundary input and backpropagating the incoming delta through that local
graph into the shared parameters.  Because the recomputation executes the
exact same float ops on the same data, gradients are **bit-identical** to
full-graph training (asserted in tests) — so the engines can adopt it
with a one-line loss_fn change and keep every equivalence guarantee.

Dropout must be disabled (rate 0) for checkpointed models: recomputation
would redraw the masks.  :func:`checkpointed_loss` enforces this.

Boundary activations normally stay in host memory between forward and
backward.  When an activation spill store is active
(:func:`repro.nn.offload.active_spill_store`, entered by the engines via
``TrainingConfig.activation_offload``), the forward writes each boundary
to the SSD-backed spill device instead and the backward async-prefetches
it one block ahead — same float32 bits either way, so spilled training
is bit-identical to recompute-mode training.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..errors import TrainingError
from .modules import Module
from .tensor import Tensor, no_grad
from .transformer import TransformerBackbone


def _block_list(backbone: TransformerBackbone) -> List[Module]:
    return [getattr(backbone, f"block{index}")
            for index in range(backbone._num_blocks)]


def _check_no_dropout(backbone: TransformerBackbone) -> None:
    if backbone.config.dropout != 0.0:
        raise TrainingError(
            "activation checkpointing requires dropout=0 (recomputation "
            "would redraw dropout masks)")


def _embed(backbone: TransformerBackbone, tokens: np.ndarray) -> Tensor:
    x = backbone.token_embed(tokens)
    if backbone.pos_embed is not None:
        x = x + backbone.pos_embed(np.arange(tokens.shape[1]))
    return backbone.drop(x)


def checkpointed_loss(backbone: TransformerBackbone,
                      head_fn: Callable[[Tensor], Tensor],
                      tokens: np.ndarray) -> Tensor:
    """Compute ``head_fn(backbone(tokens))`` with block checkpointing.

    ``head_fn`` maps the final-norm output to a scalar loss (it owns the
    final LayerNorm/classifier/LM head and the loss computation).  The
    returned scalar behaves exactly like a full-graph loss tensor —
    ``backward()`` (including through a loss-scaling multiply) fills every
    parameter's ``.grad`` — but only one block's graph is ever alive.
    """
    from .offload import active_spill_store

    tokens = np.asarray(tokens)
    _check_no_dropout(backbone)
    blocks = _block_list(backbone)
    spill = active_spill_store()

    # Forward: no graph, store block-boundary activations — in host
    # memory, or spilled to the SSD-backed store when one is active.
    boundaries: List[np.ndarray] = []
    with no_grad():
        x = _embed(backbone, tokens)
        for index, block in enumerate(blocks):
            if spill is not None:
                spill.put(index, x.data)
            else:
                boundaries.append(x.data)
            x = block(x)
        backbone_out = x.data

    # Head with grad, from the backbone output as a graph leaf.
    head_leaf = Tensor(backbone_out, requires_grad=True)
    head_loss = head_fn(backbone.ln_final(head_leaf))
    if head_loss.size != 1:
        raise TrainingError("head_fn must return a scalar loss")

    def backward(grad: np.ndarray) -> None:
        # 1. Head backward -> delta at the backbone output.
        head_loss.backward(grad)
        delta = head_leaf.grad
        # 2. Blocks in reverse: recompute with grad, push delta through.
        #    In spill mode, boundary i comes off the spill device and
        #    boundary i-1 is prefetched so its read overlaps this
        #    block's recompute+backward.
        if spill is not None:
            spill.prefetch(len(blocks) - 1)
        for position in range(len(blocks) - 1, -1, -1):
            block = blocks[position]
            if spill is not None:
                boundary = spill.get(position)
                spill.prefetch(position - 1)
            else:
                boundary = boundaries[position]
            leaf = Tensor(boundary, requires_grad=True)
            out = block(leaf)
            out.backward(delta)
            delta = leaf.grad
            if spill is not None:
                spill.release(position)
        # 3. Embedding backward (token + positional tables).
        embed_out = _embed(backbone, tokens)
        embed_out.backward(delta)

    loss = Tensor(head_loss.data.copy(), requires_grad=True)
    loss._parents = ()
    loss._backward = backward
    return loss


def checkpointed_lm_loss(model, tokens: np.ndarray) -> Tensor:
    """Checkpointed next-token loss for a :class:`LanguageModel`."""
    from . import functional as F

    inputs = np.asarray(tokens)[:, :-1]
    targets = np.asarray(tokens)[:, 1:]

    def head(features: Tensor) -> Tensor:
        return F.cross_entropy(model.lm_head(features), targets)

    return checkpointed_loss(model.backbone, head, inputs)


def checkpointed_classifier_loss(model, tokens: np.ndarray,
                                 labels: np.ndarray) -> Tensor:
    """Checkpointed classification loss for a
    :class:`SequenceClassifier`."""
    from . import functional as F

    def head(features: Tensor) -> Tensor:
        pooled = features.mean(axis=1)
        return F.cross_entropy(model.head(pooled), labels)

    return checkpointed_loss(model.backbone, head, tokens)
