"""Tensor parallelism (the §VIII-A multi-GPU substrate).

The congested-topology experiment (Fig. 17) runs 1-3 GPUs with Megatron-
style tensor parallelism.  This module provides the functional substrate:
column-/row-parallel layers whose shards follow the standard recipe —

* **MLP**: the first linear is split by *columns* (each shard computes a
  slice of the hidden activation, GELU is local), the second by *rows*
  (each shard holds a slice of the input dim); partial outputs are summed
  by an **all-reduce**, the communication the shared PCIe link carries in
  the congested topology.
* **Attention**: heads are distributed across shards; each shard computes
  attention for its heads and a row-slice of the output projection, again
  summed by an all-reduce.

A :class:`CommMeter` counts all-reduce bytes with the standard
ring-all-reduce volume ``2 (g-1)/g x nbytes`` so the Fig. 17 traffic
numbers are grounded in the functional layer.  Shard outputs are
numerically equal to the unsharded modules (asserted in tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import TrainingError
from . import functional as F
from .modules import Linear, Module, Parameter
from .tensor import Tensor, concatenate
from .transformer import MultiHeadAttention, TransformerConfig


@dataclass
class CommMeter:
    """Counts tensor-parallel collective traffic."""

    num_shards: int
    allreduce_bytes: float = 0.0
    allreduce_ops: int = 0
    history: List[float] = field(default_factory=list)

    def record_allreduce(self, nbytes: float) -> None:
        """Ring all-reduce moves ``2 (g-1)/g`` of the buffer per rank."""
        wire = 2.0 * (self.num_shards - 1) / self.num_shards * nbytes
        self.allreduce_bytes += wire
        self.allreduce_ops += 1
        self.history.append(wire)


def _allreduce_sum(partials: List[Tensor], meter: CommMeter) -> Tensor:
    """Sum the per-shard partial outputs, metering the collective."""
    total = partials[0]
    for partial in partials[1:]:
        total = total + partial
    meter.record_allreduce(4 * total.size)
    return total


class TensorParallelMLP(Module):
    """Column-then-row parallel MLP, output == the dense MLP's."""

    def __init__(self, dim: int, hidden: int, num_shards: int,
                 rng: np.random.Generator, meter: CommMeter) -> None:
        super().__init__()
        if hidden % num_shards != 0:
            raise TrainingError(
                f"hidden={hidden} not divisible by shards={num_shards}")
        self.num_shards = num_shards
        self.meter = meter
        slice_width = hidden // num_shards
        std1 = 1.0 / math.sqrt(dim)
        std2 = 1.0 / math.sqrt(hidden)
        for shard in range(num_shards):
            setattr(self, f"fc{shard}", Parameter(
                rng.normal(0.0, std1, size=(dim, slice_width))))
            setattr(self, f"fc_bias{shard}",
                    Parameter(np.zeros(slice_width)))
            setattr(self, f"proj{shard}", Parameter(
                rng.normal(0.0, std2, size=(slice_width, dim))))
        self.proj_bias = Parameter(np.zeros(dim))

    @classmethod
    def from_dense(cls, fc: Linear, proj: Linear, num_shards: int,
                   meter: CommMeter) -> "TensorParallelMLP":
        """Shard an existing dense MLP's weights (exact split)."""
        dim, hidden = fc.weight.data.shape
        module = cls(dim, hidden, num_shards, np.random.default_rng(0),
                     meter)
        width = hidden // num_shards
        for shard in range(num_shards):
            cols = slice(shard * width, (shard + 1) * width)
            getattr(module, f"fc{shard}").data = fc.weight.data[:, cols]
            getattr(module, f"fc_bias{shard}").data = fc.bias.data[cols]
            getattr(module, f"proj{shard}").data = proj.weight.data[cols]
        module.proj_bias.data = proj.bias.data.copy()
        return module

    def forward(self, x: Tensor) -> Tensor:
        partials = []
        for shard in range(self.num_shards):
            hidden = F.gelu(x @ getattr(self, f"fc{shard}")
                            + getattr(self, f"fc_bias{shard}"))
            partials.append(hidden @ getattr(self, f"proj{shard}"))
        return _allreduce_sum(partials, self.meter) + self.proj_bias


class TensorParallelAttention(Module):
    """Head-sharded attention, output == the dense attention's.

    Each shard owns the QKV columns of its heads and the matching rows of
    the output projection; the partial projections are all-reduced.
    """

    def __init__(self, config: TransformerConfig, num_shards: int,
                 rng: np.random.Generator, meter: CommMeter) -> None:
        super().__init__()
        if config.num_heads % num_shards != 0:
            raise TrainingError(
                f"heads={config.num_heads} not divisible by "
                f"shards={num_shards}")
        if config.dropout != 0.0:
            raise TrainingError(
                "tensor-parallel attention requires dropout=0")
        self.config = config
        self.num_shards = num_shards
        self.meter = meter
        dim = config.dim
        heads_per_shard = config.num_heads // num_shards
        width = heads_per_shard * config.head_dim
        std = 1.0 / math.sqrt(dim)
        for shard in range(num_shards):
            setattr(self, f"qkv{shard}", Parameter(
                rng.normal(0.0, std, size=(dim, 3 * width))))
            setattr(self, f"qkv_bias{shard}",
                    Parameter(np.zeros(3 * width)))
            setattr(self, f"proj{shard}", Parameter(
                rng.normal(0.0, std, size=(width, dim))))
        self.proj_bias = Parameter(np.zeros(dim))

    @classmethod
    def from_dense(cls, attention: MultiHeadAttention, num_shards: int,
                   meter: CommMeter) -> "TensorParallelAttention":
        """Shard an existing dense attention block's weights."""
        config = attention.config
        module = cls(config, num_shards, np.random.default_rng(0), meter)
        dim = config.dim
        head_dim = config.head_dim
        heads_per_shard = config.num_heads // num_shards
        qkv_w = attention.qkv.weight.data    # (dim, 3*dim)
        qkv_b = attention.qkv.bias.data
        proj_w = attention.proj.weight.data  # (dim, dim)
        for shard in range(num_shards):
            head_lo = shard * heads_per_shard * head_dim
            head_hi = head_lo + heads_per_shard * head_dim
            # Columns of q, k and v for this shard's heads.
            cols = np.concatenate([
                np.arange(part * dim + head_lo, part * dim + head_hi)
                for part in range(3)])
            getattr(module, f"qkv{shard}").data = qkv_w[:, cols].copy()
            getattr(module, f"qkv_bias{shard}").data = qkv_b[cols].copy()
            getattr(module, f"proj{shard}").data = (
                proj_w[head_lo:head_hi].copy())
        module.proj_bias.data = attention.proj.bias.data.copy()
        return module

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _dim = x.shape
        config = self.config
        heads_per_shard = config.num_heads // self.num_shards
        head_dim = config.head_dim
        partials = []
        for shard in range(self.num_shards):
            qkv = (x @ getattr(self, f"qkv{shard}")
                   + getattr(self, f"qkv_bias{shard}"))
            qkv = qkv.reshape(batch, seq, 3, heads_per_shard, head_dim)
            qkv = qkv.transpose(2, 0, 3, 1, 4)
            q, k, v = qkv[0], qkv[1], qkv[2]
            scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(head_dim))
            if config.attention == "causal":
                scores = F.masked_fill(scores,
                                       F.causal_mask(seq)[None, None])
            weights = F.softmax(scores, axis=-1)
            context = (weights @ v).transpose(0, 2, 1, 3).reshape(
                batch, seq, heads_per_shard * head_dim)
            partials.append(context @ getattr(self, f"proj{shard}"))
        return _allreduce_sum(partials, self.meter) + self.proj_bias


def expected_allreduce_bytes(num_shards: int, batch: int, seq: int,
                             dim: int, num_calls: int) -> float:
    """Closed-form wire bytes for ``num_calls`` all-reduces of a
    (batch, seq, dim) fp32 activation."""
    nbytes = 4 * batch * seq * dim
    return num_calls * 2.0 * (num_shards - 1) / num_shards * nbytes
