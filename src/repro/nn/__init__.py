"""Mini deep-learning framework: numpy autograd, modules, transformers."""

from . import functional
from .checkpoint import (checkpointed_classifier_loss, checkpointed_lm_loss,
                         checkpointed_loss)
from .data import (ClassificationDataset, GLUE_TASKS, make_classification_dataset,
                   make_glue_suite, make_lm_dataset)
from .models import ModelSpec, ZOO, get_model, models_by_family
from .modules import (Dropout, Embedding, LayerNorm, Linear, Module,
                      Parameter, Sequential)
from .offload import (ActivationSpillStore, activation_spill_scope,
                      active_spill_store, spill_beats_recompute)
from .parallel import (CommMeter, TensorParallelAttention,
                       TensorParallelMLP, expected_allreduce_bytes)
from .precision import (LossScaler, clip_gradients, from_fp16,
                        global_grad_norm, has_overflow, to_fp16)
from .tensor import (Tensor, concatenate, is_grad_enabled, no_grad,
                     ones, tensor, zeros)
from .transformer import (LanguageModel, MultiHeadAttention, SequenceClassifier,
                          TransformerBackbone, TransformerBlock,
                          TransformerConfig, bert_config, bloom_config,
                          gpt2_config, vit_config)

__all__ = [
    "ActivationSpillStore",
    "ClassificationDataset",
    "CommMeter",
    "activation_spill_scope",
    "active_spill_store",
    "spill_beats_recompute",
    "Dropout",
    "Embedding",
    "GLUE_TASKS",
    "LanguageModel",
    "LayerNorm",
    "Linear",
    "LossScaler",
    "ModelSpec",
    "Module",
    "MultiHeadAttention",
    "Parameter",
    "SequenceClassifier",
    "Sequential",
    "Tensor",
    "TensorParallelAttention",
    "TensorParallelMLP",
    "TransformerBackbone",
    "TransformerBlock",
    "TransformerConfig",
    "ZOO",
    "bert_config",
    "checkpointed_classifier_loss",
    "checkpointed_lm_loss",
    "checkpointed_loss",
    "bloom_config",
    "clip_gradients",
    "concatenate",
    "expected_allreduce_bytes",
    "from_fp16",
    "functional",
    "get_model",
    "global_grad_norm",
    "gpt2_config",
    "has_overflow",
    "is_grad_enabled",
    "make_classification_dataset",
    "make_glue_suite",
    "make_lm_dataset",
    "models_by_family",
    "no_grad",
    "ones",
    "tensor",
    "to_fp16",
    "vit_config",
    "zeros",
]
