"""Differentiable neural-network operations built on :class:`Tensor`.

These are the ops a transformer needs: GELU/ReLU activations, stable
softmax and log-softmax, layer normalization, embedding lookup, dropout,
causal masking, and token-level cross-entropy.  Each op registers a custom
backward closure rather than being composed from primitives where a fused
implementation is clearer or numerically safer.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .tensor import Tensor

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.maximum(0.0)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in GPT-2)."""
    u = x.data
    inner = _SQRT_2_OVER_PI * (u + 0.044715 * u ** 3)
    t = np.tanh(inner)
    result = 0.5 * u * (1.0 + t)

    def backward(grad: np.ndarray) -> None:
        dinner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * u ** 2)
        dt = (1.0 - t ** 2) * dinner
        x._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * u * dt))

    return x._make(result, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    result = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * result * (1.0 - result))

    return x._make(result, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    result = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * result).sum(axis=axis, keepdims=True)
        x._accumulate(result * (grad - dot))

    return x._make(result, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    result = shifted - log_sum
    soft = np.exp(result)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return x._make(result, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor,
               eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension with affine transform."""
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = (x.data - mean) * inv_std
    result = normalized * weight.data + bias.data

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate(
                (grad * normalized).sum(axis=tuple(range(grad.ndim - 1))))
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=tuple(range(grad.ndim - 1))))
        if x.requires_grad:
            gx = grad * weight.data
            mean_gx = gx.mean(axis=-1, keepdims=True)
            mean_gx_n = (gx * normalized).mean(axis=-1, keepdims=True)
            x._accumulate(inv_std * (gx - mean_gx - normalized * mean_gx_n))

    return x._make(result, (x, weight, bias), backward)


def embedding(indices: np.ndarray, table: Tensor) -> Tensor:
    """Row lookup ``table[indices]`` with scatter-add backward."""
    indices = np.asarray(indices)
    result = table.data[indices]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros(table.data.shape, dtype=np.float32)
        np.add.at(full, indices.reshape(-1),
                  grad.reshape(-1, table.data.shape[-1]))
        table._accumulate(full)

    return table._make(result, (table,), backward)


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is false or rate is 0."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    mask = (rng.random(x.data.shape) < keep).astype(np.float32) / keep

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return x._make(x.data * mask, (x,), backward)


def causal_mask(seq_len: int) -> np.ndarray:
    """Additive attention mask: 0 on/below the diagonal, -inf above."""
    mask = np.zeros((seq_len, seq_len), dtype=np.float32)
    mask[np.triu_indices(seq_len, k=1)] = -1e9
    return mask


def masked_fill(x: Tensor, mask: np.ndarray) -> Tensor:
    """Add a (broadcastable) additive mask to ``x`` (for attention)."""
    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad)

    return x._make(x.data + mask, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: Optional[int] = None) -> Tensor:
    """Mean token-level cross entropy.

    ``logits`` has shape ``(..., vocab)``; ``targets`` the matching integer
    shape.  Rows whose target equals ``ignore_index`` contribute nothing.
    """
    targets = np.asarray(targets)
    vocab = logits.data.shape[-1]
    flat_logits = logits.data.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones_like(flat_targets, dtype=bool)
    count = max(int(valid.sum()), 1)

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    picked = log_probs[np.arange(flat_targets.size),
                       np.where(valid, flat_targets, 0)]
    loss_value = -(picked * valid).sum() / count

    def backward(grad: np.ndarray) -> None:
        soft = np.exp(log_probs)
        soft[np.arange(flat_targets.size),
             np.where(valid, flat_targets, 0)] -= 1.0
        soft *= (valid[:, None] / count)
        logits._accumulate(
            (soft * grad).reshape(logits.data.shape).astype(np.float32))

    return logits._make(np.float32(loss_value), (logits,), backward)


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Fraction of argmax predictions matching ``targets``."""
    predictions = logits.data.reshape(-1, logits.data.shape[-1]).argmax(-1)
    return float((predictions == np.asarray(targets).reshape(-1)).mean())
