"""Reverse-mode automatic differentiation over numpy arrays.

This is the library's stand-in for ``torch.Tensor``: enough autograd to
train small transformers end-to-end so that the storage-offloaded training
runtime (`repro.runtime`) exercises the paper's real dataflow — forward,
backward, gradient offload, near-storage update — with genuine gradients.

Design: a thin tape.  Every differentiable operation creates a new
:class:`Tensor` whose ``_parents`` are its inputs and whose ``_backward``
closure scatters the output gradient to the parents.  ``backward()``
topologically sorts the graph and runs the closures in reverse.

Gradients are always accumulated in float32 regardless of the data dtype,
mirroring mixed-precision training where FP16 activations produce FP32
master gradients.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]
TensorLike = Union["Tensor", np.ndarray, Number]

#: Global autograd switch (see :func:`no_grad`).
_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (as in torch).

    Inside the context every op produces plain tensors with no parents and
    no backward closure, so intermediate activations are garbage-collected
    immediately — the enabler for block-wise activation checkpointing
    (Fig. 1's forward pass stores only block boundaries).
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Whether ops currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1
                 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name")

    def __init__(self, data: TensorLike, requires_grad: bool = False,
                 dtype: Optional[np.dtype] = None, name: str = "") -> None:
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if dtype is not None:
            array = array.astype(dtype, copy=False)
        elif array.dtype not in (np.float16, np.float32, np.int32,
                                 np.int64, np.bool_):
            # Default floating dtype is float32 (as in torch.tensor).
            array = array.astype(np.float32)
        self.data: np.ndarray = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() on non-scalar tensor")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        """A view of the same data outside the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype: np.dtype) -> "Tensor":
        """Differentiable dtype cast (used for fp16<->fp32 in mixed
        precision); the gradient is cast back to the source dtype's
        float32 accumulation."""
        out = Tensor(self.data.astype(dtype),
                     requires_grad=_GRAD_ENABLED and self.requires_grad)
        if out.requires_grad:
            out._parents = (self,)

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad.astype(np.float32))

            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    "scalar output")
            grad = np.ones_like(self.data, dtype=np.float32)
        # Topological order via iterative DFS (models can be deep).
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free intermediate gradients eagerly except for leaves.
                if node._parents and node is not self:
                    node.grad = None

    @staticmethod
    def _lift(value: TensorLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: TensorLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(
                grad * exponent * np.power(self.data, exponent - 1))

        return self._make(np.power(self.data, exponent), (self,), backward)

    def __matmul__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    np.matmul(grad, np.swapaxes(other.data, -1, -2)))
            if other.requires_grad:
                other._accumulate(
                    np.matmul(np.swapaxes(self.data, -1, -2), grad))

        return self._make(np.matmul(self.data, other.data), (self, other),
                          backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.swapaxes(grad, axis1, axis2))

        return self._make(np.swapaxes(self.data, axis1, axis2), (self,),
                          backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            full = np.zeros(self.data.shape, dtype=np.float32)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(self.data[index], (self,), backward)

    # ------------------------------------------------------------------
    # reductions and elementwise math
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return self._make(self.data.sum(axis=axis, keepdims=keepdims),
                          (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def exp(self) -> "Tensor":
        result = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * result)

        return self._make(result, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        result = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / result)

        return self._make(result, (self,), backward)

    def tanh(self) -> "Tensor":
        result = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - result ** 2))

        return self._make(result, (self,), backward)

    def maximum(self, value: Number) -> "Tensor":
        mask = self.data > value

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(np.maximum(self.data, value), (self,), backward)


def tensor(data: TensorLike, requires_grad: bool = False,
           dtype: Optional[np.dtype] = None) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(shape: Sequence[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32),
                  requires_grad=requires_grad)


def ones(shape: Sequence[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=np.float32),
                  requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensors)

        def backward(grad: np.ndarray) -> None:
            for child, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if child.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, stop)
                    child._accumulate(grad[tuple(index)])

        out._backward = backward
    return out
