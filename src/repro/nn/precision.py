"""Mixed-precision training utilities.

Storage-offloaded training (Fig. 1 of the paper) keeps an FP16 working copy
of the parameters for forward/backward while the FP32 master copy lives in
the optimizer state on storage.  Two consequences are modelled faithfully:

* Gradients must be scanned for NaN/Inf *before* the update so the dynamic
  loss scaler can skip the step — one of the reasons gradient offload cannot
  simply be overlapped with the update (§IV-C).
* Loss scaling multiplies the loss before backward and the gradients are
  unscaled before clipping/updating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

import numpy as np

from ..errors import TrainingError


def to_fp16(array: np.ndarray) -> np.ndarray:
    """Cast an FP32 array to the FP16 working precision."""
    return np.asarray(array, dtype=np.float32).astype(np.float16)


def from_fp16(array: np.ndarray) -> np.ndarray:
    """Promote an FP16 array back to FP32."""
    return np.asarray(array, dtype=np.float16).astype(np.float32)


def has_overflow(arrays: Iterable[np.ndarray]) -> bool:
    """True when any gradient array contains NaN or +-Inf.

    This is the pre-update scan mixed-precision training requires; in the
    paper it is one of the constraints that forces gradients to be fully
    materialized before the update step starts.
    """
    for array in arrays:
        if not np.all(np.isfinite(array)):
            return True
    return False


def global_grad_norm(arrays: Iterable[np.ndarray]) -> float:
    """L2 norm over the concatenation of all gradient arrays."""
    total = 0.0
    for array in arrays:
        total += float(np.square(array, dtype=np.float64).sum())
    return float(np.sqrt(total))


@dataclass
class LossScaler:
    """Dynamic loss scaling as in NVIDIA AMP / DeepSpeed.

    The scale doubles every ``growth_interval`` successful steps and halves
    on every overflow (with the overflowing step skipped).
    """

    scale: float = 2.0 ** 16
    growth_factor: float = 2.0
    backoff_factor: float = 0.5
    growth_interval: int = 1000
    min_scale: float = 1.0
    max_scale: float = 2.0 ** 24
    _good_steps: int = field(default=0, repr=False)
    #: Number of steps skipped due to overflow (observable for tests).
    skipped_steps: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise TrainingError("loss scale must be positive")

    def scale_loss(self, loss_value: float) -> float:
        return loss_value * self.scale

    def unscale(self, gradients: List[np.ndarray]) -> List[np.ndarray]:
        """Divide gradients by the current scale (in place, returned)."""
        inv = 1.0 / self.scale
        for grad in gradients:
            grad *= inv
        return gradients

    def update(self, overflow: bool) -> bool:
        """Advance scaler state; returns True when the step may proceed."""
        if overflow:
            self.scale = max(self.scale * self.backoff_factor,
                             self.min_scale)
            self._good_steps = 0
            self.skipped_steps += 1
            return False
        self._good_steps += 1
        if self._good_steps >= self.growth_interval:
            self.scale = min(self.scale * self.growth_factor, self.max_scale)
            self._good_steps = 0
        return True


def clip_gradients(arrays: List[np.ndarray], max_norm: float) -> float:
    """Scale gradients in place so their global norm is at most ``max_norm``.

    Returns the pre-clip norm.  Requires the *whole model's* gradients —
    the second constraint (§IV-C) that serializes gradient offload before
    the update phase.
    """
    if max_norm <= 0:
        raise TrainingError("max_norm must be positive")
    norm = global_grad_norm(arrays)
    if norm > max_norm:
        factor = max_norm / (norm + 1e-12)
        for array in arrays:
            array *= factor
    return norm
