"""Model zoo: analytic descriptions of the paper-scale models.

The evaluation sweeps GPT-2 at 1.16B/4.0B/8.4B (Fig. 9), 16.6B/24.6B/33.0B
(Fig. 10), BERT at matching sizes, BLOOM and ViT (Fig. 13).  Models of
this size obviously cannot be instantiated in numpy; the performance model
only needs their *parameter count* (which fixes every traffic volume — see
Table I) and their *FLOP count* per iteration (which fixes GPU compute
time).  :class:`ModelSpec` carries exactly that, derived from standard
transformer arithmetic:

* parameters  ``P = 12 * L * d^2 + vocab * d + seq * d``
* forward FLOPs per token  ``2 * P + 2 * L * seq * d``  (dense + attention)
* backward FLOPs  ``2x`` forward.

Tiny instantiable configs for functional training live in
`repro.nn.transformer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import HardwareConfigError


@dataclass(frozen=True)
class ModelSpec:
    """Analytic description of one large transformer."""

    name: str
    family: str
    hidden_dim: int
    num_layers: int
    vocab_size: int
    seq_len: int

    def __post_init__(self) -> None:
        if min(self.hidden_dim, self.num_layers, self.vocab_size,
               self.seq_len) <= 0:
            raise HardwareConfigError(f"{self.name}: invalid model spec")

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Total trainable parameters (dense blocks + embeddings)."""
        block = 12 * self.num_layers * self.hidden_dim ** 2
        embeddings = (self.vocab_size + self.seq_len) * self.hidden_dim
        return block + embeddings

    @property
    def billions(self) -> float:
        return self.num_parameters / 1e9

    def fp16_bytes(self) -> int:
        """M in the paper's notation: size of the FP16 parameter copy."""
        return 2 * self.num_parameters

    def optimizer_state_bytes(self, states_per_param: int = 3) -> int:
        """FP32 optimizer state (master param + ``states_per_param - 1``
        moments); 6M for Adam, 4M for SGD-momentum/AdaGrad."""
        return 4 * states_per_param * self.num_parameters

    def gradient_bytes(self) -> int:
        """Gradients handled in FP32 by the offload engine: 2M."""
        return 4 * self.num_parameters

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def forward_flops(self, batch_size: int) -> float:
        """FLOPs of one forward pass over ``batch_size`` sequences."""
        tokens = batch_size * self.seq_len
        dense = 2.0 * self.num_parameters * tokens
        attention = 2.0 * self.num_layers * self.seq_len * self.hidden_dim
        return dense + attention * tokens

    def backward_flops(self, batch_size: int) -> float:
        """Backward is ~2x forward for transformer training."""
        return 2.0 * self.forward_flops(batch_size)

    def iteration_flops(self, batch_size: int) -> float:
        return self.forward_flops(batch_size) + self.backward_flops(
            batch_size)


def _gpt2(name: str, dim: int, layers: int) -> ModelSpec:
    return ModelSpec(name=name, family="gpt2", hidden_dim=dim,
                     num_layers=layers, vocab_size=50_257, seq_len=1024)


def _bert(name: str, dim: int, layers: int) -> ModelSpec:
    # The evaluation fixes the training sequence length across families so
    # speedups are comparable (the bottleneck is storage, not attention).
    return ModelSpec(name=name, family="bert", hidden_dim=dim,
                     num_layers=layers, vocab_size=30_522, seq_len=1024)


#: Named entries matching the sizes quoted in the paper's figures.
ZOO: Dict[str, ModelSpec] = {
    # Fig. 9 / Fig. 17 GPT-2 sizes.
    "gpt2-1.16b": _gpt2("gpt2-1.16b", dim=1920, layers=24),
    "gpt2-4.0b": _gpt2("gpt2-4.0b", dim=3072, layers=34),
    "gpt2-8.4b": _gpt2("gpt2-8.4b", dim=4096, layers=41),
    # Fig. 10 large sizes.
    "gpt2-16.6b": _gpt2("gpt2-16.6b", dim=5120, layers=52),
    "gpt2-24.6b": _gpt2("gpt2-24.6b", dim=6144, layers=54),
    "gpt2-33.0b": _gpt2("gpt2-33.0b", dim=7168, layers=53),
    # BERT counterparts used alongside GPT-2 in Fig. 9.
    "bert-1.2b": _bert("bert-1.2b", dim=2048, layers=23),
    "bert-4.0b": _bert("bert-4.0b", dim=3328, layers=30),
    "bert-8.3b": _bert("bert-8.3b", dim=4096, layers=41),
    # Fig. 13 additional families.
    "bloom-7.1b": ModelSpec(name="bloom-7.1b", family="bloom",
                            hidden_dim=4096, num_layers=30,
                            vocab_size=250_880, seq_len=1024),
    "vit-1.9b": ModelSpec(name="vit-1.9b", family="vit", hidden_dim=1792,
                          num_layers=48, vocab_size=1_000, seq_len=577),
    # Table IV fine-tuning checkpoints.
    "bert-0.34b": _bert("bert-0.34b", dim=1024, layers=24),
    "gpt2-0.77b": _gpt2("gpt2-0.77b", dim=1280, layers=36),
    "gpt2-1.6b": _gpt2("gpt2-1.6b", dim=1600, layers=48),
}


def get_model(name: str) -> ModelSpec:
    """Look up a zoo entry by name."""
    try:
        return ZOO[name]
    except KeyError:
        known = ", ".join(sorted(ZOO))
        raise KeyError(f"unknown model {name!r}; known models: {known}")


def models_by_family(family: str) -> List[ModelSpec]:
    """All zoo entries of one family, sorted by size."""
    entries = [spec for spec in ZOO.values() if spec.family == family]
    return sorted(entries, key=lambda spec: spec.num_parameters)
