"""Synthetic datasets for functional training.

The paper fine-tunes on GLUE tasks (MNLI, QQP, SST-2, QNLI) and pre-trains
language models on text corpora.  Without the datasets or pretrained
checkpoints, we substitute *learnable synthetic tasks*: data with planted
structure that a transformer can actually learn, so accuracy comparisons
between exact training and compressed-gradient training (Table IV's claim)
remain meaningful.

* :func:`make_lm_dataset` — Markov-chain token streams: next-token
  prediction has learnable transition structure.
* :func:`make_classification_dataset` — sequence classification where the
  label depends on planted marker tokens, mimicking a GLUE-style task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


@dataclass(frozen=True)
class ClassificationDataset:
    """Token sequences with integer labels, pre-split train/dev."""

    name: str
    train_tokens: np.ndarray
    train_labels: np.ndarray
    dev_tokens: np.ndarray
    dev_labels: np.ndarray
    num_classes: int

    def batches(self, batch_size: int,
                rng: np.random.Generator) -> Iterator[
                    Tuple[np.ndarray, np.ndarray]]:
        """Shuffled mini-batches over the training split (one epoch)."""
        order = rng.permutation(len(self.train_tokens))
        for start in range(0, len(order) - batch_size + 1, batch_size):
            index = order[start:start + batch_size]
            yield self.train_tokens[index], self.train_labels[index]


def make_lm_dataset(num_sequences: int = 128, seq_len: int = 33,
                    vocab_size: int = 64, seed: int = 0) -> np.ndarray:
    """Markov-chain token sequences of shape (num_sequences, seq_len).

    Each token's distribution depends on its predecessor through a sparse
    random transition matrix, giving the LM real structure to learn: the
    loss of a training run must drop well below log(vocab_size).
    """
    rng = np.random.default_rng(seed)
    # Sparse, peaked transition matrix: each token has 4 likely successors.
    transitions = np.full((vocab_size, vocab_size), 1e-3)
    for token in range(vocab_size):
        successors = rng.choice(vocab_size, size=4, replace=False)
        transitions[token, successors] = 1.0
    transitions /= transitions.sum(axis=1, keepdims=True)

    sequences = np.empty((num_sequences, seq_len), dtype=np.int64)
    sequences[:, 0] = rng.integers(0, vocab_size, size=num_sequences)
    for position in range(1, seq_len):
        for row in range(num_sequences):
            prev = sequences[row, position - 1]
            sequences[row, position] = rng.choice(
                vocab_size, p=transitions[prev])
    return sequences


def make_classification_dataset(
        name: str = "synth-mnli", num_train: int = 256, num_dev: int = 128,
        seq_len: int = 32, vocab_size: int = 64, num_classes: int = 3,
        noise: float = 0.0, seed: int = 0) -> ClassificationDataset:
    """A GLUE-like synthetic task.

    Each class is associated with a small set of marker tokens; a sequence's
    label is determined by which class's markers dominate it.  ``noise``
    flips that fraction of labels to make the task imperfectly learnable
    (as real GLUE tasks are).
    """
    rng = np.random.default_rng(seed)
    markers = rng.permutation(vocab_size)[:num_classes * 4].reshape(
        num_classes, 4)

    def sample(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        tokens = rng.integers(0, vocab_size, size=(count, seq_len))
        for row, label in enumerate(labels):
            # Plant 6 marker tokens of the true class at random positions.
            positions = rng.choice(seq_len, size=6, replace=False)
            tokens[row, positions] = rng.choice(markers[label], size=6)
        if noise > 0:
            flips = rng.random(count) < noise
            labels[flips] = rng.integers(0, num_classes,
                                         size=int(flips.sum()))
        return tokens.astype(np.int64), labels.astype(np.int64)

    train_tokens, train_labels = sample(num_train)
    dev_tokens, dev_labels = sample(num_dev)
    return ClassificationDataset(
        name=name, train_tokens=train_tokens, train_labels=train_labels,
        dev_tokens=dev_tokens, dev_labels=dev_labels,
        num_classes=num_classes)


#: The four GLUE development tasks from Table IV, as synthetic stand-ins.
GLUE_TASKS = ("mnli", "qqp", "sst2", "qnli")


def make_glue_suite(seq_len: int = 32, vocab_size: int = 64,
                    seed: int = 0) -> dict:
    """The Table IV task suite: four synthetic classification datasets with
    distinct class counts and noise levels so accuracies differ per task."""
    specs = {
        "mnli": dict(num_classes=3, noise=0.05),
        "qqp": dict(num_classes=2, noise=0.04),
        "sst2": dict(num_classes=2, noise=0.02),
        "qnli": dict(num_classes=2, noise=0.03),
    }
    return {
        task: make_classification_dataset(
            name=f"synth-{task}", seq_len=seq_len, vocab_size=vocab_size,
            seed=seed + index, **kwargs)
        for index, (task, kwargs) in enumerate(specs.items())
    }
