"""Module tree: parameter containers in the style of ``torch.nn``.

A :class:`Module` owns named :class:`Parameter` leaves and child modules and
can enumerate them in a deterministic order — determinism matters because
the offload runtime flattens parameters into a single address space and the
CSD ownership map (§IV-D of the paper) is defined over that flat order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from .tensor import Tensor


class Parameter(Tensor):
    """A trainable leaf tensor."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(np.asarray(data, dtype=np.float32),
                         requires_grad=True, name=name)


class Module:
    """Base class: tracks parameters and submodules by attribute name."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[
            Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` in deterministic order."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _name, param in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # state I/O (used by the offload runtime and checkpoint round-trips)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy()
                for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs "
                    f"{state[name].shape}")
            param.data = state[name].astype(np.float32).copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine transform ``x @ W + b`` with scaled-normal init."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True,
                 init_scale: float = 1.0) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        std = init_scale / np.sqrt(in_features)
        self.weight = Parameter(
            rng.normal(0.0, std, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token/position embedding table."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator, std: float = 0.02) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            rng.normal(0.0, std, size=(num_embeddings, dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(indices, self.weight)


class LayerNorm(Module):
    """Layer normalization with learned affine parameters."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by an explicit RNG for reproducibility."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None
                 ) -> None:
        super().__init__()
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.rng, training=self.training)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x):
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)
