"""SSD-backed activation spill with async prefetch (the SSDTrain idea).

Block-wise activation checkpointing (:mod:`repro.nn.checkpoint`) keeps
every block-boundary activation in host memory between forward and
backward.  For the storage-offloaded regime that is exactly the memory
the hierarchy is short of: SSDTrain (PAPERS.md) shows boundary
activations can instead be *spilled* to NVMe during forward and
async-prefetched back just ahead of the backward pass that consumes
them, at negligible overhead — the read of boundary ``i-1`` overlaps the
recomputation+backward of block ``i``.

:class:`ActivationSpillStore` implements that spill device:

* writes go through a :class:`~repro.storage.tensor_store.TensorStore`
  region per (block, size) on a private
  :class:`~repro.storage.blockdev.FileBlockDevice` — the same storage
  substrate the optimizer-state offload uses;
* reads stage into blocks checked out of a dedicated
  :class:`~repro.memory.BufferArena`; all arena traffic is confined to
  the single prefetch worker thread, so the arena needs no locking and
  steady-state training allocates nothing;
* ``float32`` round-trips through the file bit-exactly, so spilled
  training is **bit-identical** to recompute-mode training (tested).

The forward/backward hook points live in
:func:`repro.nn.checkpoint.checkpointed_loss`; engines activate a store
for their steps with :func:`activation_spill_scope` (installed via
``TrainingConfig.activation_offload``).
"""

from __future__ import annotations

import contextlib
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, Optional, Tuple

import numpy as np

from .. import telemetry
from ..errors import TrainingError
from ..memory import BufferArena
from ..storage.blockdev import FileBlockDevice
from ..storage.tensor_store import TensorStore

#: Default spill-file capacity.  The backing file is sparse, so this is
#: an address-space bound, not an up-front disk cost.
DEFAULT_CAPACITY_BYTES = 512 << 20

#: Telemetry resource label for spill-device busy windows.
SPILL_RESOURCE = "act-spill"


def spill_beats_recompute(boundary_nbytes: int, recompute_seconds: float,
                          write_bandwidth: float = 2.0e9,
                          read_bandwidth: float = 2.5e9) -> bool:
    """The planner's cost model: is spilling one boundary cheaper?

    Spill costs one write during forward plus one (mostly overlapped)
    read before backward; recompute costs re-running the block's
    forward.  With the prefetch overlap the exposed read is ~0, so the
    comparison is write time vs recompute time.  Used by tests and the
    docs' worked example; the engine-level ``auto`` mode short-circuits
    to "spill when a storage device exists" because the functional
    engines' recompute is real CPU work while the spill file is an
    emulated device.
    """
    if boundary_nbytes <= 0:
        return False
    spill_seconds = (boundary_nbytes / write_bandwidth
                     + 0.1 * boundary_nbytes / read_bandwidth)
    return spill_seconds < recompute_seconds


class ActivationSpillStore:
    """Spill device for block-boundary activations, with async prefetch.

    Usage per step (driven by ``checkpointed_loss``):

    1. ``begin_step()`` — reclaim any stragglers from a skipped step;
    2. forward: ``put(i, array)`` per block boundary (synchronous write;
       the array is not retained);
    3. backward: ``prefetch(i)`` hints the next boundary, ``get(i)``
       returns boundary ``i`` (blocking only if its read hasn't
       finished), ``release(i)`` returns the staging block once the
       block's backward is done.

    One prefetch worker serves reads in submission order, so issuing
    ``prefetch(i-1)`` right after ``get(i)`` overlaps the next read with
    the current block's recompute+backward.
    """

    def __init__(self, directory: str,
                 capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
                 name: str = "actspill") -> None:
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, f"{name}.img")
        self._device = FileBlockDevice(self.path, capacity_bytes,
                                       name=name)
        self._store = TensorStore(self._device)
        # (index, nelems) -> region name; a boundary whose shape changes
        # across steps simply gets a fresh region.
        self._regions: Dict[Tuple[int, int], str] = {}
        # index -> (region name, shape, nelems) for the current step.
        self._live: Dict[int, Tuple[str, Tuple[int, ...], int]] = {}
        self._inflight: Dict[int, "Future[np.ndarray]"] = {}
        self._held: Dict[int, np.ndarray] = {}
        # All arena traffic runs on this one worker thread, so the
        # arena needs no lock and its blocks are reused every step.
        self._arena = BufferArena(name="act-spill")
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="act-prefetch")
        self._lock = threading.Lock()
        self._closed = False
        self.spilled_bytes = 0
        self.fetched_bytes = 0
        self.writes = 0
        self.reads = 0

    # ------------------------------------------------------------------
    def _region_for(self, index: int, nelems: int) -> str:
        key = (index, nelems)
        name = self._regions.get(key)
        if name is None:
            name = f"act{index}_{nelems}"
            self._store.allocate(name, nelems)
            self._regions[key] = name
        return name

    def begin_step(self) -> None:
        """Reclaim staging blocks left by an aborted/skipped backward."""
        if self._closed:
            raise TrainingError("activation spill store is closed")
        leftovers, self._inflight = dict(self._inflight), {}
        held, self._held = dict(self._held), {}
        for future in leftovers.values():
            try:
                block = future.result()
            except Exception:
                continue
            self._executor.submit(self._arena.release, block)
        for block in held.values():
            self._executor.submit(self._arena.release, block)
        self._live.clear()

    def put(self, index: int, array: np.ndarray) -> None:
        """Spill one boundary activation (synchronous device write)."""
        if self._closed:
            raise TrainingError("activation spill store is closed")
        array = np.asarray(array)
        if array.dtype != np.float32:
            raise TrainingError(
                f"activation spill expects float32 boundaries, got "
                f"{array.dtype} for block {index} (other dtypes would "
                f"not round-trip bit-exactly)")
        flat = np.ascontiguousarray(array).reshape(-1)
        name = self._region_for(index, flat.size)
        with telemetry.trace_span("act_spill.write", block=index,
                                  resource=SPILL_RESOURCE,
                                  nbytes=4 * flat.size):
            self._store.write_slice(name, 0, flat)
        self._live[index] = (name, array.shape, flat.size)
        self.spilled_bytes += 4 * flat.size
        self.writes += 1

    def _read(self, index: int) -> np.ndarray:
        name, _shape, nelems = self._live[index]
        block = self._arena.acquire(nelems)
        with telemetry.trace_span("act_spill.read", block=index,
                                  resource=SPILL_RESOURCE,
                                  nbytes=4 * nelems):
            self._store.read_slice_into(name, 0, nelems, block)
        return block

    def prefetch(self, index: int) -> None:
        """Hint that boundary ``index`` is needed soon (no-op if unknown,
        already in flight, or already fetched)."""
        if self._closed or index < 0:
            return
        with self._lock:
            if index in self._inflight or index in self._held \
                    or index not in self._live:
                return
            self._inflight[index] = self._executor.submit(
                self._read, index)

    def get(self, index: int) -> np.ndarray:
        """Fetch boundary ``index``, blocking until its read completes.

        The returned array is a view of an arena staging block — valid
        until :meth:`release` of the same index.
        """
        if index not in self._live:
            raise TrainingError(
                f"no spilled activation for block {index} this step")
        with self._lock:
            future = self._inflight.pop(index, None)
            if future is None and index not in self._held:
                future = self._executor.submit(self._read, index)
        if future is not None:
            block = future.result()
            self._held[index] = block
        name, shape, nelems = self._live[index]
        self.fetched_bytes += 4 * nelems
        self.reads += 1
        return self._held[index][:nelems].reshape(shape)

    def release(self, index: int) -> None:
        """Return boundary ``index``'s staging block to the arena."""
        block = self._held.pop(index, None)
        if block is not None:
            self._executor.submit(self._arena.release, block)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Cumulative spill counters (bytes and operations)."""
        return {
            "spilled_bytes": self.spilled_bytes,
            "fetched_bytes": self.fetched_bytes,
            "writes": self.writes,
            "reads": self.reads,
            "regions": len(self._regions),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        self._device.close()

    def __enter__(self) -> "ActivationSpillStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# the active-store scope consumed by checkpointed_loss
# ----------------------------------------------------------------------

_ACTIVE = threading.local()


def active_spill_store() -> Optional[ActivationSpillStore]:
    """The spill store active on this thread, or None (recompute mode)."""
    return getattr(_ACTIVE, "store", None)


@contextlib.contextmanager
def activation_spill_scope(store: ActivationSpillStore):
    """Activate ``store`` for checkpointed forwards on this thread.

    Entered by the engines around each forward/backward;
    :func:`repro.nn.checkpoint.checkpointed_loss` picks the store up via
    :func:`active_spill_store` and routes boundary activations through
    it instead of holding them in host memory.
    """
    previous = getattr(_ACTIVE, "store", None)
    store.begin_step()
    _ACTIVE.store = store
    try:
        yield store
    finally:
        _ACTIVE.store = previous


__all__ = [
    "ActivationSpillStore",
    "DEFAULT_CAPACITY_BYTES",
    "activation_spill_scope",
    "active_spill_store",
    "spill_beats_recompute",
]
