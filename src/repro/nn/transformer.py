"""Transformer building blocks and the four model families of the paper.

The evaluation uses GPT-2 (decoder-only), BERT (encoder-only), BLOOM
(decoder-only with ALiBi attention biases), and ViT (encoder over image
patches).  All four share the same block structure — attention + MLP with
pre- or post-layernorm — so one parametrized implementation covers them.

Instances here are *functional*: small enough to train with numpy autograd.
The large paper-scale configurations (1.16B-33B parameters) are described
analytically in `repro.nn.models` without instantiating weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from . import functional as F
from .modules import Dropout, Embedding, LayerNorm, Linear, Module
from .tensor import Tensor


@dataclass(frozen=True)
class TransformerConfig:
    """Hyperparameters for one transformer model."""

    vocab_size: int
    max_seq_len: int
    dim: int
    num_layers: int
    num_heads: int
    mlp_ratio: int = 4
    dropout: float = 0.0
    #: "causal" for GPT/BLOOM-style decoders, "bidirectional" for BERT/ViT.
    attention: str = "causal"
    #: Use ALiBi positional biases (BLOOM) instead of learned positions.
    alibi: bool = False
    #: Pre-layernorm (GPT-2/ViT/BLOOM) vs post-layernorm (original BERT).
    pre_norm: bool = True

    def __post_init__(self) -> None:
        if self.dim % self.num_heads != 0:
            raise ValueError(
                f"dim={self.dim} not divisible by heads={self.num_heads}")
        if self.attention not in ("causal", "bidirectional"):
            raise ValueError(f"unknown attention kind {self.attention!r}")

    @property
    def head_dim(self) -> int:
        return self.dim // self.num_heads


def alibi_slopes(num_heads: int) -> np.ndarray:
    """Per-head ALiBi slopes as in the BLOOM paper (powers of 2^(-8/n))."""
    base = 2.0 ** (-8.0 / num_heads)
    return np.array([base ** (i + 1) for i in range(num_heads)],
                    dtype=np.float32)


def alibi_bias(num_heads: int, seq_len: int) -> np.ndarray:
    """Additive (head, q, k) attention bias implementing ALiBi."""
    slopes = alibi_slopes(num_heads)
    positions = np.arange(seq_len)
    distance = positions[None, :] - positions[:, None]
    # Only past positions receive the (negative) linear bias.
    bias = np.minimum(distance, 0).astype(np.float32)
    return slopes[:, None, None] * bias[None, :, :]


class MultiHeadAttention(Module):
    """Scaled dot-product attention with optional causal mask and ALiBi."""

    def __init__(self, config: TransformerConfig,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        dim = config.dim
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng,
                           init_scale=1.0 / math.sqrt(2 * config.num_layers))
        self.drop = Dropout(config.dropout, rng=np.random.default_rng(
            rng.integers(0, 2 ** 31)))

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, dim = x.shape
        heads = self.config.num_heads
        head_dim = self.config.head_dim

        qkv = self.qkv(x)  # (batch, seq, 3*dim)
        qkv = qkv.reshape(batch, seq, 3, heads, head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, batch, heads, seq, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(head_dim))
        bias = np.zeros((1, 1, seq, seq), dtype=np.float32)
        if self.config.attention == "causal":
            bias = bias + F.causal_mask(seq)[None, None]
        if self.config.alibi:
            bias = bias + alibi_bias(heads, seq)[None]
        scores = F.masked_fill(scores, bias)
        weights = F.softmax(scores, axis=-1)
        weights = self.drop(weights)

        context = weights @ v  # (batch, heads, seq, head_dim)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        return self.proj(context)


class MLP(Module):
    """Position-wise feed-forward block with GELU."""

    def __init__(self, config: TransformerConfig,
                 rng: np.random.Generator) -> None:
        super().__init__()
        hidden = config.mlp_ratio * config.dim
        self.fc = Linear(config.dim, hidden, rng)
        self.proj = Linear(hidden, config.dim, rng,
                           init_scale=1.0 / math.sqrt(2 * config.num_layers))

    def forward(self, x: Tensor) -> Tensor:
        return self.proj(F.gelu(self.fc(x)))


class TransformerBlock(Module):
    """One attention + MLP block, pre- or post-layernorm."""

    def __init__(self, config: TransformerConfig,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.ln1 = LayerNorm(config.dim)
        self.attn = MultiHeadAttention(config, rng)
        self.ln2 = LayerNorm(config.dim)
        self.mlp = MLP(config, rng)

    def forward(self, x: Tensor) -> Tensor:
        if self.config.pre_norm:
            x = x + self.attn(self.ln1(x))
            x = x + self.mlp(self.ln2(x))
        else:
            x = self.ln1(x + self.attn(x))
            x = self.ln2(x + self.mlp(x))
        return x


class TransformerBackbone(Module):
    """Embedding + stacked blocks + final norm; shared by all families."""

    def __init__(self, config: TransformerConfig, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.token_embed = Embedding(config.vocab_size, config.dim, rng)
        if not config.alibi:
            self.pos_embed = Embedding(config.max_seq_len, config.dim, rng)
        else:
            self.pos_embed = None
        self.drop = Dropout(config.dropout, rng=np.random.default_rng(
            rng.integers(0, 2 ** 31)))
        blocks = [TransformerBlock(config, rng)
                  for _ in range(config.num_layers)]
        for index, block in enumerate(blocks):
            setattr(self, f"block{index}", block)
        self._num_blocks = len(blocks)
        self.ln_final = LayerNorm(config.dim)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (batch, seq), got {tokens.shape}")
        _batch, seq = tokens.shape
        if seq > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {seq} exceeds max {self.config.max_seq_len}")
        x = self.token_embed(tokens)
        if self.pos_embed is not None:
            x = x + self.pos_embed(np.arange(seq))
        x = self.drop(x)
        for index in range(self._num_blocks):
            x = getattr(self, f"block{index}")(x)
        return self.ln_final(x)


class LanguageModel(Module):
    """Decoder LM head over a backbone (GPT-2 / BLOOM style)."""

    def __init__(self, config: TransformerConfig, seed: int = 0) -> None:
        super().__init__()
        if config.attention != "causal":
            raise ValueError("LanguageModel requires causal attention")
        self.backbone = TransformerBackbone(config, seed=seed)
        rng = np.random.default_rng(seed + 1)
        self.lm_head = Linear(config.dim, config.vocab_size, rng, bias=False)

    def forward(self, tokens: np.ndarray) -> Tensor:
        return self.lm_head(self.backbone(tokens))

    def loss(self, tokens: np.ndarray) -> Tensor:
        """Next-token prediction loss over a batch of token sequences."""
        logits = self.forward(tokens[:, :-1])
        return F.cross_entropy(logits, tokens[:, 1:])


class SequenceClassifier(Module):
    """Classification head over pooled backbone features (BERT/ViT style
    fine-tuning, and the model used for the GLUE-like Table IV tasks)."""

    def __init__(self, config: TransformerConfig, num_classes: int,
                 seed: int = 0) -> None:
        super().__init__()
        self.backbone = TransformerBackbone(config, seed=seed)
        rng = np.random.default_rng(seed + 1)
        self.head = Linear(config.dim, num_classes, rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        features = self.backbone(tokens)
        pooled = features.mean(axis=1)
        return self.head(pooled)

    def loss(self, tokens: np.ndarray, labels: np.ndarray) -> Tensor:
        return F.cross_entropy(self.forward(tokens), labels)


def gpt2_config(vocab_size: int = 256, max_seq_len: int = 64, dim: int = 64,
                num_layers: int = 2, num_heads: int = 4,
                dropout: float = 0.0) -> TransformerConfig:
    """A tiny GPT-2-shaped config for functional training tests."""
    return TransformerConfig(
        vocab_size=vocab_size, max_seq_len=max_seq_len, dim=dim,
        num_layers=num_layers, num_heads=num_heads, dropout=dropout,
        attention="causal", pre_norm=True)


def bert_config(vocab_size: int = 256, max_seq_len: int = 64, dim: int = 64,
                num_layers: int = 2, num_heads: int = 4,
                dropout: float = 0.0) -> TransformerConfig:
    """A tiny BERT-shaped config (bidirectional, post-norm)."""
    return TransformerConfig(
        vocab_size=vocab_size, max_seq_len=max_seq_len, dim=dim,
        num_layers=num_layers, num_heads=num_heads, dropout=dropout,
        attention="bidirectional", pre_norm=False)


def bloom_config(vocab_size: int = 256, max_seq_len: int = 64, dim: int = 64,
                 num_layers: int = 2, num_heads: int = 4) -> TransformerConfig:
    """A tiny BLOOM-shaped config (causal with ALiBi biases)."""
    return TransformerConfig(
        vocab_size=vocab_size, max_seq_len=max_seq_len, dim=dim,
        num_layers=num_layers, num_heads=num_heads, attention="causal",
        alibi=True, pre_norm=True)


def vit_config(num_patches: int = 16, num_patch_ids: int = 64, dim: int = 64,
               num_layers: int = 2, num_heads: int = 4) -> TransformerConfig:
    """A tiny ViT-shaped config: bidirectional encoder over patch tokens.

    Synthetic "images" are sequences of quantized patch ids, which keeps the
    pipeline identical to text models while exercising the vision family.
    """
    return TransformerConfig(
        vocab_size=num_patch_ids, max_seq_len=num_patches, dim=dim,
        num_layers=num_layers, num_heads=num_heads,
        attention="bidirectional", pre_norm=True)
