"""Functional software RAID0 (mdadm-style striping) over block devices.

The baseline configuration of the paper runs ZeRO-Infinity over a software
RAID0 of the SmartSSDs' plain NVMe namespaces.  This module implements the
striping arithmetic over :class:`FileBlockDevice` members so the functional
baseline reads/writes through the same address-splitting path.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import StorageError
from .blockdev import FileBlockDevice, IOCounters


class RAID0Volume:
    """Striped volume presenting the union of its members' capacity."""

    def __init__(self, members: Sequence[FileBlockDevice],
                 chunk_bytes: int = 1 << 20) -> None:
        if not members:
            raise StorageError("RAID0 needs at least one member")
        if chunk_bytes <= 0:
            raise StorageError("chunk size must be positive")
        capacities = {member.capacity_bytes for member in members}
        if len(capacities) != 1:
            raise StorageError("RAID0 members must have equal capacity")
        self.members: List[FileBlockDevice] = list(members)
        self.chunk_bytes = chunk_bytes
        self.capacity_bytes = members[0].capacity_bytes * len(members)
        self.name = f"raid0[{len(members)}]"

    def _map(self, offset: int) -> Tuple[int, int, int]:
        """Map a volume offset to (member index, member offset, bytes left
        in this stripe chunk)."""
        chunk_index, within = divmod(offset, self.chunk_bytes)
        member_index = chunk_index % len(self.members)
        member_chunk = chunk_index // len(self.members)
        member_offset = member_chunk * self.chunk_bytes + within
        remaining = self.chunk_bytes - within
        return member_index, member_offset, remaining

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise StorageError("negative offset/length")
        if offset + length > self.capacity_bytes:
            raise StorageError("I/O beyond RAID0 volume end")

    def pread(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes, gathering across stripe chunks."""
        self._check(offset, length)
        parts: List[bytes] = []
        position = offset
        remaining = length
        while remaining > 0:
            member_index, member_offset, in_chunk = self._map(position)
            take = min(remaining, in_chunk)
            parts.append(self.members[member_index].pread(
                member_offset, take))
            position += take
            remaining -= take
        return b"".join(parts)

    def pwrite(self, offset: int, data: bytes) -> int:
        """Write ``data``, scattering across stripe chunks."""
        self._check(offset, len(data))
        position = offset
        cursor = 0
        while cursor < len(data):
            member_index, member_offset, in_chunk = self._map(position)
            take = min(len(data) - cursor, in_chunk)
            self.members[member_index].pwrite(
                member_offset, data[cursor:cursor + take])
            position += take
            cursor += take
        return len(data)

    def counters(self) -> IOCounters:
        """Aggregate I/O counters across members."""
        total = IOCounters()
        for member in self.members:
            snap = member.counters.snapshot()
            total.bytes_read += snap.bytes_read
            total.bytes_written += snap.bytes_written
            total.read_ops += snap.read_ops
            total.write_ops += snap.write_ops
        return total

    def close(self) -> None:
        for member in self.members:
            member.close()

    def __enter__(self) -> "RAID0Volume":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
