"""Functional software RAID0 (mdadm-style striping) over block devices.

The baseline configuration of the paper runs ZeRO-Infinity over a software
RAID0 of the SmartSSDs' plain NVMe namespaces.  This module implements the
striping arithmetic over :class:`FileBlockDevice` members so the functional
baseline reads/writes through the same address-splitting path.

Failure model: RAID0 has no redundancy, so a *permanent* member failure is
unrecoverable in-place — exactly like a real mdadm stripe.  When a member
raises :class:`~repro.errors.DeviceFailedError` (or exhausts its transient
retry budget), the volume enters *degraded mode*: the failed member is
recorded, and every subsequent I/O fails fast with a
:class:`~repro.errors.DeviceFailedError` that names the member and the
recovery story (restore from checkpoint onto a rebuilt volume).  Transient
member faults are already retried inside the member's own fault guard and
never surface here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import DeviceFailedError, RetryExhaustedError, StorageError
from .blockdev import FileBlockDevice, IOCounters


class RAID0Volume:
    """Striped volume presenting the union of its members' capacity."""

    def __init__(self, members: Sequence[FileBlockDevice],
                 chunk_bytes: int = 1 << 20) -> None:
        if not members:
            raise StorageError("RAID0 needs at least one member")
        if chunk_bytes <= 0:
            raise StorageError("chunk size must be positive")
        capacities = {member.capacity_bytes for member in members}
        if len(capacities) != 1:
            raise StorageError("RAID0 members must have equal capacity")
        self.members: List[FileBlockDevice] = list(members)
        self.chunk_bytes = chunk_bytes
        self.capacity_bytes = members[0].capacity_bytes * len(members)
        self.name = f"raid0[{len(members)}]"
        self._failed_member: Optional[int] = None
        self._failed_cause: Optional[BaseException] = None

    @property
    def degraded(self) -> bool:
        """True once a member has permanently failed (fail-stop mode)."""
        return self._failed_member is not None

    @property
    def failed_members(self) -> Tuple[int, ...]:
        if self._failed_member is None:
            return ()
        return (self._failed_member,)

    def _check_degraded(self) -> None:
        if self._failed_member is not None:
            member = self.members[self._failed_member]
            raise DeviceFailedError(
                f"{self.name} is degraded: member {member.name} "
                f"(index {self._failed_member}) failed permanently "
                f"({self._failed_cause}). RAID0 stripes without redundancy, "
                f"so the volume cannot serve I/O; replace the member, "
                f"rebuild the volume, and restore from the latest "
                f"checkpoint (repro.runtime.checkpoint).",
                device=self._failed_member)

    def _member_failed(self, index: int, cause: BaseException) -> None:
        if self._failed_member is None:
            self._failed_member = index
            self._failed_cause = cause
            telemetry.counter("raid_degraded_total", volume=self.name,
                              member=self.members[index].name)

    def _map(self, offset: int) -> Tuple[int, int, int]:
        """Map a volume offset to (member index, member offset, bytes left
        in this stripe chunk)."""
        chunk_index, within = divmod(offset, self.chunk_bytes)
        member_index = chunk_index % len(self.members)
        member_chunk = chunk_index // len(self.members)
        member_offset = member_chunk * self.chunk_bytes + within
        remaining = self.chunk_bytes - within
        return member_index, member_offset, remaining

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise StorageError("negative offset/length")
        if offset + length > self.capacity_bytes:
            raise StorageError("I/O beyond RAID0 volume end")

    def pread(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes, gathering across stripe chunks."""
        self._check(offset, length)
        self._check_degraded()
        parts: List[bytes] = []
        position = offset
        remaining = length
        while remaining > 0:
            member_index, member_offset, in_chunk = self._map(position)
            take = min(remaining, in_chunk)
            try:
                parts.append(self.members[member_index].pread(
                    member_offset, take))
            except (DeviceFailedError, RetryExhaustedError) as exc:
                self._member_failed(member_index, exc)
                self._check_degraded()
            position += take
            remaining -= take
        return b"".join(parts)

    def pread_into(self, offset: int, out) -> int:
        """Zero-copy gather across stripe chunks into ``out``.

        Each stripe chunk is read by its member directly into the
        corresponding slice of ``out`` (memoryview slicing is zero-copy),
        so a striped read costs exactly one data movement per chunk —
        no per-chunk ``bytes`` objects, no final join.
        """
        view = FileBlockDevice._byte_view(out, writable=True)
        length = view.nbytes
        self._check(offset, length)
        self._check_degraded()
        position = offset
        cursor = 0
        while cursor < length:
            member_index, member_offset, in_chunk = self._map(position)
            take = min(length - cursor, in_chunk)
            try:
                self.members[member_index].pread_into(
                    member_offset, view[cursor:cursor + take])
            except (DeviceFailedError, RetryExhaustedError) as exc:
                self._member_failed(member_index, exc)
                self._check_degraded()
            position += take
            cursor += take
        return length

    def pwrite(self, offset: int, data) -> int:
        """Write ``data``, scattering across stripe chunks.

        ``data`` may be ``bytes`` or any C-contiguous buffer; buffers are
        scattered through zero-copy memoryview slices.
        """
        if not isinstance(data, (bytes, bytearray)):
            data = FileBlockDevice._byte_view(data, writable=False)
        length = len(data)
        self._check(offset, length)
        self._check_degraded()
        position = offset
        cursor = 0
        while cursor < length:
            member_index, member_offset, in_chunk = self._map(position)
            take = min(length - cursor, in_chunk)
            try:
                self.members[member_index].pwrite(
                    member_offset, data[cursor:cursor + take])
            except (DeviceFailedError, RetryExhaustedError) as exc:
                self._member_failed(member_index, exc)
                self._check_degraded()
            position += take
            cursor += take
        return length

    def counters(self) -> IOCounters:
        """Aggregate I/O counters across members."""
        total = IOCounters()
        for member in self.members:
            snap = member.counters.snapshot()
            total.bytes_read += snap.bytes_read
            total.bytes_written += snap.bytes_written
            total.read_ops += snap.read_ops
            total.write_ops += snap.write_ops
        return total

    def close(self) -> None:
        for member in self.members:
            member.close()

    def __enter__(self) -> "RAID0Volume":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
