"""Functional storage substrate: block devices, RAID0, tensor regions."""

from .blockdev import FileBlockDevice, IOCounters
from .raid0 import RAID0Volume
from .tensor_store import Region, TensorStore

__all__ = [
    "FileBlockDevice",
    "IOCounters",
    "RAID0Volume",
    "Region",
    "TensorStore",
]
