"""Typed array regions on top of a block device.

The offload runtime persists flat float32 arrays (optimizer state slices,
gradient buffers) at named regions of a device.  A bump allocator assigns
offsets; regions are fixed-size once allocated, mirroring how the paper's
system pre-computes per-subgroup storage layout before training starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from .. import telemetry
from ..errors import StorageError
from .blockdev import FileBlockDevice
from .raid0 import RAID0Volume

Device = Union[FileBlockDevice, RAID0Volume]


@dataclass(frozen=True)
class Region:
    """One named, fixed-size array region on a device."""

    name: str
    offset: int
    num_elements: int
    dtype: np.dtype

    @property
    def nbytes(self) -> int:
        return self.num_elements * np.dtype(self.dtype).itemsize


class TensorStore:
    """Named float array storage with explicit allocation."""

    def __init__(self, device: Device, alignment: int = 4096) -> None:
        if alignment <= 0:
            raise StorageError("alignment must be positive")
        self.device = device
        self.alignment = alignment
        self._regions: Dict[str, Region] = {}
        self._next_offset = 0

    def allocate(self, name: str, num_elements: int,
                 dtype=np.float32) -> Region:
        """Reserve a region; offsets are aligned like direct-I/O buffers."""
        if name in self._regions:
            raise StorageError(f"region {name!r} already allocated")
        if num_elements <= 0:
            raise StorageError("num_elements must be positive")
        dtype = np.dtype(dtype)
        nbytes = num_elements * dtype.itemsize
        offset = self._next_offset
        if offset + nbytes > self.device.capacity_bytes:
            raise StorageError(
                f"device full: need {nbytes} bytes at {offset}, capacity "
                f"{self.device.capacity_bytes}")
        region = Region(name=name, offset=offset, num_elements=num_elements,
                        dtype=dtype)
        self._regions[name] = region
        padded = ((nbytes + self.alignment - 1)
                  // self.alignment) * self.alignment
        self._next_offset += padded
        return region

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise StorageError(f"unknown region {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def write_array(self, name: str, array: np.ndarray) -> None:
        """Persist ``array`` into its region (shape/dtype must match).

        Contiguous arrays are written through the buffer protocol — no
        ``tobytes()`` serialization, no intermediate copy.
        """
        region = self.region(name)
        array = np.ascontiguousarray(array)
        if array.dtype != region.dtype or array.size != region.num_elements:
            raise StorageError(
                f"region {name!r} expects {region.num_elements} x "
                f"{region.dtype}, got {array.size} x {array.dtype}")
        self.device.pwrite(region.offset, array)

    def read_array(self, name: str) -> np.ndarray:
        """Load the region's contents as a fresh (writable) array.

        One copy total: the device reads straight into the returned
        array (the old path materialized ``bytes`` and then copied them
        out of the read-only ``frombuffer`` view — two copies).
        """
        region = self.region(name)
        out = np.empty(region.num_elements, dtype=region.dtype)
        self.read_array_into(name, out)
        return out

    def read_array_into(self, name: str, out: np.ndarray) -> np.ndarray:
        """Zero-copy load of a whole region into a caller-owned buffer."""
        region = self.region(name)
        return self.read_slice_into(name, 0, region.num_elements, out)

    def write_slice(self, name: str, start: int, array: np.ndarray) -> None:
        """Write ``array`` into the region starting at element ``start``.

        Contiguous arrays (the hot path hands in flat buffer views) are
        written without any intermediate ``bytes`` copy.
        """
        region = self.region(name)
        array = np.ascontiguousarray(array, dtype=region.dtype)
        if start < 0 or start + array.size > region.num_elements:
            raise StorageError(
                f"slice [{start}, {start + array.size}) outside region "
                f"{name!r} of {region.num_elements} elements")
        byte_offset = region.offset + start * region.dtype.itemsize
        self.device.pwrite(byte_offset, array)
        if telemetry.enabled():
            telemetry.counter("tensor_store_write_bytes_total",
                              array.size * region.dtype.itemsize,
                              region=name)

    def read_slice(self, name: str, start: int, count: int) -> np.ndarray:
        """Read ``count`` elements starting at element ``start``.

        Returns a fresh writable array filled by a single device read
        (legacy double-copy path removed; prefer :meth:`read_slice_into`
        with a pooled buffer on hot paths).
        """
        if count < 0:
            raise StorageError(
                f"slice [{start}, {start + count}) outside region {name!r}")
        out = np.empty(count, dtype=self.region(name).dtype)
        self.read_slice_into(name, start, count, out)
        return out

    def read_slice_into(self, name: str, start: int, count: int,
                        out: np.ndarray) -> np.ndarray:
        """Read ``count`` elements at ``start`` into ``out[:count]``.

        The zero-copy hot path: the device scatters file bytes directly
        into the caller-owned buffer (e.g. FPGA DRAM or an arena block).
        ``out`` must be flat, C-contiguous, writable, of the region's
        dtype, and hold at least ``count`` elements.  Returns the
        ``out[:count]`` view.
        """
        region = self.region(name)
        if start < 0 or count < 0 or start + count > region.num_elements:
            raise StorageError(
                f"slice [{start}, {start + count}) outside region {name!r}")
        if not isinstance(out, np.ndarray) or out.ndim != 1:
            raise StorageError("destination buffer must be a flat ndarray")
        if out.dtype != region.dtype:
            raise StorageError(
                f"region {name!r} holds {region.dtype}, destination "
                f"buffer is {out.dtype}")
        if out.size < count:
            raise StorageError(
                f"destination buffer of {out.size} elements cannot hold "
                f"{count}")
        view = out[:count]
        byte_offset = region.offset + start * region.dtype.itemsize
        self.device.pread_into(byte_offset, view)
        if telemetry.enabled():
            telemetry.counter("tensor_store_read_bytes_total",
                              count * region.dtype.itemsize, region=name)
        return view
