"""File-backed block devices.

The functional runtime stores optimizer state and gradients on *real files*,
exercising the same pread/pwrite dataflow the paper's system issues against
NVMe namespaces (§VI: "We use pread/pwrite system call to the P2P buffer").
Every device keeps I/O counters, which the traffic experiments read to
verify the Table I byte accounting against actual I/O performed.

Thread model: each CSD owns its *own* backing file, so when the runtime
fans per-device update passes across a worker pool, no two threads ever
issue I/O against the same :class:`FileBlockDevice` — storage I/O across
devices is embarrassingly parallel, exactly like the hardware's private
per-SmartSSD P2P paths.  *Within* one device, two threads do overlap: the
update worker and the device's lazy write-back thread (the transfer
handler's deferred optimizer-state writes).  ``os.pread``/``os.pwrite``
are positioned I/O — no shared file offset — so the data path needs no
lock; the byte/op counters take a small lock so concurrent increments
never lose updates (traffic accounting must stay exact).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from .. import telemetry
from ..errors import StorageError


@dataclass
class IOCounters:
    """Cumulative I/O statistics of one device.

    Increments go through :meth:`add_read`/:meth:`add_write`, which hold a
    lock: counters are shared between an update worker and the device's
    lazy write-back thread, and a lost ``+=`` would silently corrupt the
    Table I accounting the tests assert byte-exactly.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    read_ops: int = 0
    write_ops: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def add_read(self, nbytes: int, ops: int = 1) -> None:
        with self._lock:
            self.bytes_read += nbytes
            self.read_ops += ops

    def add_write(self, nbytes: int, ops: int = 1) -> None:
        with self._lock:
            self.bytes_written += nbytes
            self.write_ops += ops

    def snapshot(self) -> "IOCounters":
        with self._lock:
            return IOCounters(self.bytes_read, self.bytes_written,
                              self.read_ops, self.write_ops)

    def delta(self, earlier: "IOCounters") -> "IOCounters":
        return IOCounters(
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            read_ops=self.read_ops - earlier.read_ops,
            write_ops=self.write_ops - earlier.write_ops,
        )


class FileBlockDevice:
    """A fixed-capacity block device backed by one file.

    Offsets are byte addresses; reads of never-written ranges return zeros
    (as a fresh SSD namespace does).
    """

    def __init__(self, path: str, capacity_bytes: int,
                 name: Optional[str] = None, fault_site=None) -> None:
        if capacity_bytes <= 0:
            raise StorageError("capacity must be positive")
        self.path = path
        self.capacity_bytes = capacity_bytes
        self.name = name or os.path.basename(path)
        self.counters = IOCounters()
        # Optional FaultSite (see repro.faults): consulted before every
        # pread/pwrite so an injected fault never leaves a partial write.
        self.fault_site = fault_site
        self._closed = False
        # O_CREAT semantics: open existing or create sparse.
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        os.ftruncate(self._fd, capacity_bytes)

    def _check_range(self, offset: int, length: int) -> None:
        if self._closed:
            raise StorageError(f"device {self.name} is closed")
        if offset < 0 or length < 0:
            raise StorageError(
                f"negative offset/length: {offset}/{length}")
        if offset + length > self.capacity_bytes:
            raise StorageError(
                f"I/O beyond device end: offset={offset} length={length} "
                f"capacity={self.capacity_bytes}")

    def pread(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``."""
        self._check_range(offset, length)
        if self.fault_site is not None:
            self.fault_site.guard("read")
        timed = telemetry.enabled()
        begin = time.perf_counter() if timed else 0.0
        data = os.pread(self._fd, length, offset)
        if len(data) < length:
            # Sparse tail: fill with zeros up to the requested length.
            data = data + b"\x00" * (length - len(data))
        self.counters.add_read(length)
        if timed:
            telemetry.histogram(
                "storage_pread_latency_us",
                (time.perf_counter() - begin) * 1e6, device=self.name)
            telemetry.counter("storage_read_bytes_total", length,
                              device=self.name)
        return data

    def pread_into(self, offset: int, out) -> int:
        """Read directly into a writable buffer (ndarray/memoryview).

        The zero-copy twin of :meth:`pread`: ``os.preadv`` scatters the
        file bytes straight into ``out``, so no intermediate ``bytes``
        object is ever materialized.  ``out`` must be C-contiguous and
        writable; its whole byte extent is filled (sparse tails read as
        zeros).  Returns the number of bytes filled, always
        ``out.nbytes``.
        """
        view = self._byte_view(out, writable=True)
        length = view.nbytes
        self._check_range(offset, length)
        if self.fault_site is not None:
            self.fault_site.guard("read")
        timed = telemetry.enabled()
        begin = time.perf_counter() if timed else 0.0
        got = os.preadv(self._fd, [view], offset)
        if got < length:
            # Sparse tail: the missing range reads as zeros.
            view[got:] = bytes(length - got)
        self.counters.add_read(length)
        if timed:
            telemetry.histogram(
                "storage_pread_latency_us",
                (time.perf_counter() - begin) * 1e6, device=self.name)
            telemetry.counter("storage_read_bytes_total", length,
                              device=self.name)
            telemetry.counter("copies_elided_total", device=self.name,
                              site="pread_into")
        return length

    def pwrite(self, offset: int, data) -> int:
        """Write ``data`` at ``offset``; returns bytes written.

        ``data`` may be ``bytes`` or any C-contiguous buffer (ndarray,
        memoryview): buffers are written through the buffer protocol
        without an intermediate ``tobytes()`` serialization.
        """
        if isinstance(data, (bytes, bytearray)):
            buf = data
            elided = False
        else:
            buf = self._byte_view(data, writable=False)
            elided = True
        length = len(buf)
        self._check_range(offset, length)
        if self.fault_site is not None:
            self.fault_site.guard("write")
        timed = telemetry.enabled()
        begin = time.perf_counter() if timed else 0.0
        written = os.pwrite(self._fd, buf, offset)
        if written != length:
            raise StorageError(
                f"short write on {self.name}: {written}/{length}")
        self.counters.add_write(written)
        if timed:
            telemetry.histogram(
                "storage_pwrite_latency_us",
                (time.perf_counter() - begin) * 1e6, device=self.name)
            telemetry.counter("storage_write_bytes_total", written,
                              device=self.name)
            if elided:
                telemetry.counter("copies_elided_total", device=self.name,
                                  site="pwrite")
        return written

    @staticmethod
    def _byte_view(buffer, writable: bool) -> memoryview:
        """Flat byte view of a buffer, validating contiguity/writability."""
        view = memoryview(buffer)
        if writable and view.readonly:
            raise StorageError("buffer for pread_into must be writable")
        try:
            return view.cast("B")
        except TypeError:
            raise StorageError(
                "buffer must be C-contiguous for zero-copy I/O")

    def flush(self) -> None:
        os.fsync(self._fd)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    def __enter__(self) -> "FileBlockDevice":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FileBlockDevice({self.name!r}, "
                f"capacity={self.capacity_bytes})")
