"""Deterministic fault injection & resilience for the CSD fleet.

Public surface:

* :class:`FaultPlan` / :class:`FaultRule` — seedable description of what
  can go wrong on which device (JSON round-trip for ``--fault-plan``).
* :class:`RetryPolicy` — exponential backoff budget for transient faults.
* :class:`FaultInjector` / :class:`FaultSite` — runtime evaluation,
  threaded through :class:`~repro.storage.blockdev.FileBlockDevice`,
  :class:`~repro.csd.device.SmartSSDDevice` and the transfer handler.
* :class:`FaultStats` — cumulative accounting (mirrored to telemetry).

The associated error types (:class:`~repro.errors.FaultInjectionError`,
:class:`~repro.errors.DeviceFailedError`,
:class:`~repro.errors.RetryExhaustedError`) live in :mod:`repro.errors`.
"""

from .plan import (KINDS, OPS, TRANSIENT_KINDS, FaultInjector, FaultPlan,
                   FaultRule, FaultSite, FaultStats)
from .retry import RetryPolicy

__all__ = [
    "KINDS",
    "OPS",
    "TRANSIENT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultSite",
    "FaultStats",
    "RetryPolicy",
]
