"""Deterministic, seedable fault plans for the CSD fleet.

A :class:`FaultPlan` describes *what can go wrong* on which device — the
fleet-scale failure modes a rack of SmartSSDs behind a PCIe switch
actually exhibits:

* ``io_error`` — a transient NVMe read/write error (retryable);
* ``latency`` — a latency spike (an SSD garbage-collection pause or a
  congested switch port): the operation succeeds after a stall;
* ``kernel_stall`` — an FPGA kernel pass wedges and must be re-issued
  (retryable; the guard fires *before* the kernel mutates anything, so a
  retried pass runs exactly once);
* ``device_dropout`` — the device drops off the bus permanently.

A :class:`FaultInjector` evaluates the plan at every guarded operation.
Determinism is per-device: each device draws from its own RNG stream
seeded by ``(plan.seed, device_id)``, so the fault sequence a device
sees does not depend on how worker threads interleave across devices —
which is what makes the chaos property test ("transient faults are
semantically invisible") reproducible under the thread pool.

Transient faults are consumed by :meth:`FaultInjector.guard`, which
retries with exponential backoff per the plan's :class:`RetryPolicy` and
raises :class:`~repro.errors.RetryExhaustedError` when the budget runs
out.  Permanent faults raise :class:`~repro.errors.DeviceFailedError`
immediately (and forever after, for that device).  Every injected fault,
retry, backoff sleep and dropout is counted in :class:`FaultStats` and
mirrored into :mod:`repro.telemetry` counters/spans when a telemetry
session is active.
"""

from __future__ import annotations

import contextlib
import json
import random
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import (DeviceFailedError, FaultInjectionError,
                      RetryExhaustedError, TrainingError)
from ..telemetry import flight
from .retry import RetryPolicy

#: Fault kinds a rule may inject.
KINDS = ("io_error", "latency", "kernel_stall", "device_dropout")

#: Operation classes a rule may target ("*" matches every op).
OPS = ("read", "write", "kernel", "*")

#: Kinds that are transient (retryable); ``device_dropout`` is permanent.
TRANSIENT_KINDS = ("io_error", "latency", "kernel_stall")


@dataclass(frozen=True)
class FaultRule:
    """One fault source: what fires, where, and how often.

    ``device=None`` targets every device.  ``probability`` draws per
    guarded operation from the device's seeded stream; ``at_op`` instead
    (or additionally) gates the rule until the device's Nth guarded
    operation (1-based).  A rule with ``probability == 0`` and ``at_op``
    set fires deterministically once eligible.  ``count`` caps how many
    times the rule fires per device (``None`` = unlimited).
    """

    kind: str
    device: Optional[int] = None
    op: str = "*"
    probability: float = 0.0
    at_op: Optional[int] = None
    count: Optional[int] = None
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise TrainingError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if self.op not in OPS:
            raise TrainingError(
                f"unknown fault op {self.op!r}; choose from {OPS}")
        if not 0.0 <= self.probability <= 1.0:
            raise TrainingError(
                f"fault probability must be in [0, 1], got "
                f"{self.probability}")
        if self.probability == 0.0 and self.at_op is None:
            raise TrainingError(
                f"inert fault rule ({self.kind}): set probability > 0 "
                f"and/or at_op")
        if self.at_op is not None and self.at_op < 1:
            raise TrainingError("at_op is 1-based and must be >= 1")
        if self.count is not None and self.count < 1:
            raise TrainingError("count must be >= 1 (or omitted)")
        if self.latency_s < 0:
            raise TrainingError("latency_s must be non-negative")
        if self.kind == "latency" and self.latency_s == 0.0:
            raise TrainingError("latency faults need latency_s > 0")

    def matches(self, device_id: int, op: str) -> bool:
        if self.device is not None and self.device != device_id:
            return False
        return self.op == "*" or self.op == op

    def to_dict(self) -> Dict[str, object]:
        return {field.name: getattr(self, field.name)
                for field in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultRule":
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise TrainingError(
                f"unknown fault-rule keys: {sorted(unknown)}; known: "
                f"{sorted(known)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seedable set of fault rules plus the retry policy for transients.

    Round-trips through plain dicts and JSON files (the same
    DeepSpeed-config idiom :class:`~repro.runtime.engine.TrainingConfig`
    uses), so a chaos scenario is one ``--fault-plan plan.json`` flag.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan re-seeded (the ``--chaos-seed`` override)."""
        return FaultPlan(rules=self.rules, seed=seed, retry=self.retry)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "retry": self.retry.to_dict(),
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        known = {"seed", "retry", "rules"}
        unknown = set(data) - known
        if unknown:
            raise TrainingError(
                f"unknown fault-plan keys: {sorted(unknown)}; known: "
                f"{sorted(known)}")
        retry = data.get("retry", {})
        if isinstance(retry, dict):
            retry = RetryPolicy.from_dict(retry)
        rules = tuple(
            rule if isinstance(rule, FaultRule) else
            FaultRule.from_dict(rule)
            for rule in data.get("rules", ()))
        return cls(rules=rules, seed=int(data.get("seed", 0)), retry=retry)

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def to_json_file(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    @classmethod
    def default_chaos(cls, seed: int = 0,
                      probability: float = 0.05) -> "FaultPlan":
        """A generic transient-chaos plan over every device.

        Used by ``--chaos-seed`` without an explicit ``--fault-plan``:
        I/O errors and kernel stalls on every device, plus occasional
        sub-millisecond latency spikes.  Transient-only, so training
        output stays bit-identical to the fault-free run.
        """
        return cls(seed=seed, rules=(
            FaultRule(kind="io_error", probability=probability),
            FaultRule(kind="kernel_stall", op="kernel",
                      probability=probability),
            FaultRule(kind="latency", probability=probability / 2,
                      latency_s=0.0002),
        ))


#: HELP text for the fault metric families (Prometheus exposition).
_FAULT_METRIC_HELP = {
    "faults_injected_total": "Faults injected by the chaos plan, by kind.",
    "faults_retries_total": "Guarded operations retried after a "
                            "transient fault.",
    "faults_retry_exhausted_total": "Retry budgets exhausted (device "
                                    "treated as failed).",
    "faults_backoff_seconds_total": "Seconds slept in retry backoff.",
    "faults_latency_seconds_total": "Seconds stalled by injected "
                                    "latency spikes.",
    "faults_dropouts_total": "Devices permanently dropped off the bus.",
}


def _fault_counter(name: str, amount: float = 1.0,
                   **labels: object) -> None:
    """Increment a fault counter in the active telemetry session.

    Chaos accounting lands in the same exposition as everything else —
    one scrape shows channel traffic, attribution, and fault activity
    side by side.  No-op when telemetry is off — except that every fault
    event is also appended to the installed flight recorder, which works
    with or without a telemetry session (the black box must capture the
    seconds before a dropout even when nobody asked for a trace).
    """
    if flight._recorder is not None:
        flight._recorder.record("fault", name,
                                dict(labels, amount=amount))
    session = telemetry.active()
    if session is None:
        return
    session.registry.describe(name, _FAULT_METRIC_HELP[name])
    session.registry.counter(name, **labels).inc(amount)


@dataclass
class FaultStats:
    """Cumulative, thread-safe accounting of everything the injector did."""

    injected: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    retries_exhausted: int = 0
    backoff_seconds: float = 0.0
    latency_seconds: float = 0.0
    dropouts: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def count_injection(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + 1

    def count_retry(self, backoff_s: float) -> None:
        with self._lock:
            self.retries += 1
            self.backoff_seconds += backoff_s

    def count_exhausted(self) -> None:
        with self._lock:
            self.retries_exhausted += 1

    def count_latency(self, seconds: float) -> None:
        with self._lock:
            self.latency_seconds += seconds

    def count_dropout(self) -> None:
        with self._lock:
            self.dropouts += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "injected": dict(self.injected),
                "retries": self.retries,
                "retries_exhausted": self.retries_exhausted,
                "backoff_seconds": self.backoff_seconds,
                "latency_seconds": self.latency_seconds,
                "dropouts": self.dropouts,
            }


class _DeviceFaultState:
    """Per-device injector state: RNG stream, op counter, rule fire counts."""

    def __init__(self, seed: int, device_id: int) -> None:
        self.lock = threading.Lock()
        self.rng = random.Random(f"faults:{seed}:{device_id}")
        self.op_index = 0
        self.fires: Dict[int, int] = {}
        self.dead = False
        self.dead_reason = ""


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at every guarded operation.

    One injector serves a whole fleet; devices are identified by the
    integer ids the storage layer already uses (``csd0`` -> 0, RAID
    member ``ssd2`` -> 2).  ``sleep`` is injectable so tests can use a
    fake clock for backoff/latency timing.
    """

    def __init__(self, plan: FaultPlan,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._sleep = sleep
        self._devices: Dict[int, _DeviceFaultState] = {}
        self._devices_lock = threading.Lock()
        self._bypass = threading.local()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def site(self, device_id: int) -> "FaultSite":
        """A device-bound view, attachable to one block device / CSD."""
        return FaultSite(self, device_id)

    def _state(self, device_id: int) -> _DeviceFaultState:
        with self._devices_lock:
            state = self._devices.get(device_id)
            if state is None:
                state = _DeviceFaultState(self.plan.seed, device_id)
                self._devices[device_id] = state
            return state

    @contextlib.contextmanager
    def maintenance(self) -> Iterator[None]:
        """Suspend injection on the calling thread.

        Used for setup traffic (initial state placement) and for the
        engine's salvage reads during demotion — the emulated maintenance
        path that reads a wedged device's NVMe namespace directly.
        """
        previous = getattr(self._bypass, "active", False)
        self._bypass.active = True
        try:
            yield
        finally:
            self._bypass.active = previous

    def is_dead(self, device_id: int) -> bool:
        return self._state(device_id).dead

    def fail_device(self, device_id: int,
                    reason: str = "operator-declared failure") -> None:
        """Mark a device permanently failed (tests / manual chaos)."""
        state = self._state(device_id)
        with state.lock:
            if not state.dead:
                state.dead = True
                state.dead_reason = reason
                self.stats.count_dropout()
                _fault_counter("faults_dropouts_total", device=device_id)

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def check(self, device_id: int, op: str) -> None:
        """Evaluate the plan for one operation; raise or stall as planned.

        Raises :class:`FaultInjectionError` for a transient fault,
        :class:`DeviceFailedError` for (or after) a permanent dropout;
        latency spikes sleep and return.  The decision is drawn under the
        device lock; sleeping happens outside it.
        """
        if getattr(self._bypass, "active", False):
            return
        state = self._state(device_id)
        stall = 0.0
        transient: Optional[Tuple[FaultRule, int]] = None
        with state.lock:
            if state.dead:
                raise DeviceFailedError(
                    f"device {device_id} is failed ({state.dead_reason})",
                    device=device_id)
            state.op_index += 1
            for index, rule in enumerate(self.plan.rules):
                if not rule.matches(device_id, op):
                    continue
                if rule.at_op is not None and state.op_index < rule.at_op:
                    continue
                if (rule.count is not None
                        and state.fires.get(index, 0) >= rule.count):
                    continue
                if rule.probability > 0.0:
                    if state.rng.random() >= rule.probability:
                        continue
                state.fires[index] = state.fires.get(index, 0) + 1
                self.stats.count_injection(rule.kind)
                _fault_counter("faults_injected_total", kind=rule.kind,
                               device=device_id, op=op)
                if rule.kind == "device_dropout":
                    state.dead = True
                    state.dead_reason = (
                        f"injected dropout at op {state.op_index}")
                    self.stats.count_dropout()
                    _fault_counter("faults_dropouts_total",
                                   device=device_id)
                    raise DeviceFailedError(
                        f"device {device_id} dropped out "
                        f"(injected at op {state.op_index})",
                        device=device_id)
                if rule.kind == "latency":
                    stall += rule.latency_s
                    continue
                transient = (rule, state.op_index)
                break
        if stall > 0.0:
            self.stats.count_latency(stall)
            _fault_counter("faults_latency_seconds_total", stall,
                           device=device_id, op=op)
            with telemetry.trace_span("fault.latency_spike",
                                      device=device_id, op=op,
                                      seconds=stall):
                self._sleep(stall)
        if transient is not None:
            rule, op_index = transient
            raise FaultInjectionError(
                f"injected {rule.kind} on device {device_id} "
                f"op {op}#{op_index}", kind=rule.kind, device=device_id,
                op=op)

    def guard(self, device_id: int, op: str) -> None:
        """``check`` wrapped in the plan's retry-with-backoff policy.

        Transient faults are retried (each retry sleeps the next backoff
        delay and is counted); a permanent failure propagates untouched;
        exhausting the budget raises :class:`RetryExhaustedError` — the
        signal the engine treats as the device having effectively failed.
        """
        policy = self.plan.retry
        delays = policy.delays()
        attempts = 0
        while True:
            attempts += 1
            try:
                self.check(device_id, op)
                return
            except FaultInjectionError as fault:
                delay = next(delays, None)
                if delay is None:
                    self.stats.count_exhausted()
                    _fault_counter("faults_retry_exhausted_total",
                                   device=device_id, op=op)
                    raise RetryExhaustedError(
                        f"device {device_id} op {op}: {attempts} attempts "
                        f"exhausted; last fault: {fault}",
                        attempts=attempts, last_fault=fault) from fault
                self.stats.count_retry(delay)
                _fault_counter("faults_retries_total",
                               device=device_id, op=op)
                _fault_counter("faults_backoff_seconds_total", delay,
                               device=device_id, op=op)
                with telemetry.trace_span("fault.backoff",
                                          device=device_id, op=op,
                                          attempt=attempts,
                                          seconds=delay):
                    self._sleep(delay)


class FaultSite:
    """A (injector, device) binding the storage/CSD layers hold on to."""

    __slots__ = ("injector", "device_id")

    def __init__(self, injector: FaultInjector, device_id: int) -> None:
        self.injector = injector
        self.device_id = device_id

    def check(self, op: str) -> None:
        self.injector.check(self.device_id, op)

    def guard(self, op: str) -> None:
        self.injector.guard(self.device_id, op)

    def maintenance(self):
        return self.injector.maintenance()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSite(device={self.device_id})"
