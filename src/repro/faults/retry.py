"""Exponential-backoff retry policy for transient injected faults.

The policy is pure data plus arithmetic: it never sleeps or catches
anything itself.  The :class:`~repro.faults.plan.FaultInjector` owns the
retry *loop* (so retries, backoff sleeps and exhaustion are counted in
one place); callers that want their own loop can iterate
:meth:`RetryPolicy.delays` with any clock, which is exactly what the
fake-clock tests do.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterator

from ..errors import TrainingError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a delay cap.

    ``max_attempts`` counts *total* tries of the guarded operation; a
    policy of 4 attempts sleeps at most 3 times.  Defaults are tuned for
    the functional repro (milliseconds, not seconds): chaos test runs
    inject hundreds of faults and must still finish quickly.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.002
    multiplier: float = 2.0
    max_delay_s: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise TrainingError("retry max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise TrainingError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise TrainingError("retry multiplier must be >= 1")

    def delays(self) -> Iterator[float]:
        """Backoff sleep before each re-attempt: base, base*m, ... capped."""
        delay = self.base_delay_s
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_delay_s)
            delay *= self.multiplier

    def to_dict(self) -> Dict[str, object]:
        return {field.name: getattr(self, field.name)
                for field in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RetryPolicy":
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise TrainingError(
                f"unknown retry-policy keys: {sorted(unknown)}; known: "
                f"{sorted(known)}")
        return cls(**data)
