"""Single source of truth for the package version.

The canonical version lives in ``pyproject.toml``; an installed package
reads it back through :mod:`importlib.metadata`, so bumping the project
file is the whole release step.  Source-tree runs (``PYTHONPATH=src``
with no install, the way the test suite and CI run) have no
distribution metadata — they fall back to the literal below, which is
kept in sync with ``pyproject.toml``.
"""

try:
    from importlib.metadata import PackageNotFoundError, version
except ImportError:  # pragma: no cover - Python < 3.8 has neither
    PackageNotFoundError = Exception  # type: ignore[assignment,misc]
    version = None  # type: ignore[assignment]

#: Fallback for uninstalled source-tree runs; mirrors pyproject.toml.
_FALLBACK_VERSION = "1.0.0"

if version is None:
    __version__ = _FALLBACK_VERSION
else:
    try:
        __version__ = version("repro")
    except PackageNotFoundError:
        __version__ = _FALLBACK_VERSION
