"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An inconsistency inside the discrete-event simulation kernel."""


class HardwareConfigError(ReproError):
    """An invalid hardware description (bandwidths, topology, resources)."""


class CapacityError(ReproError):
    """A device buffer or memory capacity was exceeded."""


class StorageError(ReproError):
    """A failure in the functional storage substrate (block devices, RAID)."""


class KernelError(ReproError):
    """A CSD kernel was misconfigured or failed its sanity check."""


class PartitionError(ReproError):
    """Parameter flattening/partitioning produced an inconsistent layout."""


class TelemetryError(ReproError):
    """Telemetry misuse (metric kind clash, double-ended span, bad buckets)."""


class ArenaError(ReproError):
    """Buffer-arena misuse (bad checkout size, foreign/double release)."""


class FaultError(ReproError):
    """Base class for injected-fault conditions (see :mod:`repro.faults`)."""


class FaultInjectionError(FaultError):
    """A *transient* injected fault (I/O error, stuck kernel pass).

    Transient faults are retryable: the storage and CSD layers wrap the
    faulted operation in an exponential-backoff retry loop, so a
    transient fault that clears is invisible to training semantics.
    """

    def __init__(self, message: str, kind: str = "io_error",
                 device: object = None, op: str = "*") -> None:
        super().__init__(message)
        self.kind = kind
        self.device = device
        self.op = op


class DeviceFailedError(FaultError):
    """A device dropped out *permanently* (dead CSD, failed RAID member).

    Not retryable.  The Smart-Infinity engine responds by demoting the
    device's shard to the host-CPU update path; RAID0 responds by
    entering degraded mode (fail-stop, restore from checkpoint).
    """

    def __init__(self, message: str, device: object = None) -> None:
        super().__init__(message)
        self.device = device


class RetryExhaustedError(FaultError):
    """Transient faults persisted beyond the retry budget.

    Carries the last transient fault as ``last_fault``; the engines treat
    an exhausted device like a failed one (next rung of the degradation
    ladder).
    """

    def __init__(self, message: str, attempts: int = 0,
                 last_fault: object = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_fault = last_fault


class WorkerCrashError(FaultError):
    """A pool worker process died unexpectedly (crash, OOM-kill, signal).

    Raised by :class:`~repro.runtime.parallel.ProcessCSDWorkerPool` when a
    child process exits without answering an outstanding task.  It is a
    :class:`FaultError` on purpose: a dead worker process is the software
    analogue of a dead CSD, and the engines treat it with the same
    degradation ladder instead of hanging on a silent pipe.
    """

    def __init__(self, message: str, worker: object = None) -> None:
        super().__init__(message)
        self.worker = worker


class TrainingError(ReproError):
    """A failure inside the training runtime (engine misuse, divergence)."""


class GradientOverflowError(TrainingError):
    """Gradients contained NaN/Inf after unscaling; the step must be skipped."""


class ScenarioError(ReproError):
    """A malformed or failed chaos/workload campaign (see :mod:`repro.scenarios`)."""
