"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An inconsistency inside the discrete-event simulation kernel."""


class HardwareConfigError(ReproError):
    """An invalid hardware description (bandwidths, topology, resources)."""


class CapacityError(ReproError):
    """A device buffer or memory capacity was exceeded."""


class StorageError(ReproError):
    """A failure in the functional storage substrate (block devices, RAID)."""


class KernelError(ReproError):
    """A CSD kernel was misconfigured or failed its sanity check."""


class PartitionError(ReproError):
    """Parameter flattening/partitioning produced an inconsistent layout."""


class TelemetryError(ReproError):
    """Telemetry misuse (metric kind clash, double-ended span, bad buckets)."""


class TrainingError(ReproError):
    """A failure inside the training runtime (engine misuse, divergence)."""


class GradientOverflowError(TrainingError):
    """Gradients contained NaN/Inf after unscaling; the step must be skipped."""
