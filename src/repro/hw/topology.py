"""System topology descriptions.

Two PCIe topologies from the paper are expressible:

* **Default** — the GPU sits on its own root port; the CSDs/SSDs sit behind
  an H3 Falcon-style PCIe expansion whose uplink to the host is the shared
  interconnect every storage byte crosses.
* **Congested** (§VIII-A, Fig. 17) — one to three single-slot GPUs are
  plugged *into the expansion chassis itself*, so GPU traffic (parameters,
  activations, tensor-parallel exchanges) shares the very same uplink as
  storage traffic.

A topology is declarative; `repro.perf.fabric` instantiates simulation
channels from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import HardwareConfigError
from .csd import CSDSpec, smartssd
from .gpu import GPUSpec, a5000
from .host import CPUSpec, HostMemorySpec, host_dram_1tb, xeon_gold_6342
from .pcie import PCIeLink, gen3_x16


@dataclass(frozen=True)
class SystemSpec:
    """One complete training machine."""

    name: str
    cpu: CPUSpec
    host_memory: HostMemorySpec
    gpus: List[GPUSpec]
    csds: List[CSDSpec]
    #: The shared host<->expansion interconnect all storage traffic crosses.
    host_link: PCIeLink
    #: Per-GPU link to the host (dedicated root port in default topology).
    gpu_link: PCIeLink
    #: True when GPUs share the expansion uplink with the storage devices.
    gpus_on_expansion: bool = False
    #: Base platform cost (chassis, CPU, RAM, expansion), for Fig. 15.
    server_cost_usd: float = 45_000.0

    def __post_init__(self) -> None:
        if not self.gpus:
            raise HardwareConfigError(f"{self.name}: needs at least one GPU")
        if not self.csds:
            raise HardwareConfigError(
                f"{self.name}: needs at least one storage device")

    @property
    def num_csds(self) -> int:
        return len(self.csds)

    @property
    def aggregate_internal_read_bandwidth(self) -> float:
        """Sum of SSD->FPGA internal bandwidth across CSDs.

        This is the quantity that scales linearly with device count while
        :attr:`host_link` stays constant — the core argument of the paper.
        """
        return sum(csd.p2p_read_bandwidth for csd in self.csds)

    @property
    def aggregate_ssd_read_bandwidth(self) -> float:
        return sum(csd.ssd.read_bandwidth for csd in self.csds)

    @property
    def aggregate_ssd_write_bandwidth(self) -> float:
        return sum(csd.ssd.write_bandwidth for csd in self.csds)

    def total_cost_usd(self, as_plain_ssds: bool = False) -> float:
        """System cost; with ``as_plain_ssds`` CSDs are priced as plain SSDs
        of the same capacity (the baseline configuration of Fig. 15)."""
        storage = sum(
            (csd.ssd.cost_usd if as_plain_ssds else csd.cost_usd)
            for csd in self.csds)
        return (self.server_cost_usd + storage
                + sum(gpu.cost_usd for gpu in self.gpus))


def default_system(num_csds: int = 6, gpu: GPUSpec = None,
                   csd: CSDSpec = None) -> SystemSpec:
    """The paper's default machine: one GPU on its own root port, ``num_csds``
    SmartSSDs behind a PCIe Gen3 x16 expansion uplink."""
    gpu = gpu or a5000()
    csd = csd or smartssd()
    return SystemSpec(
        name=f"default-{num_csds}csd-{gpu.name}",
        cpu=xeon_gold_6342(),
        host_memory=host_dram_1tb(),
        gpus=[gpu],
        csds=[csd] * num_csds,
        host_link=gen3_x16(),
        gpu_link=gen3_x16(),
        gpus_on_expansion=False,
    )


def congested_system(num_gpus: int, num_csds: int = 10,
                     gpu: GPUSpec = None, csd: CSDSpec = None) -> SystemSpec:
    """The §VIII-A alternative: 1-3 single-slot GPUs inside the expansion,
    sharing its uplink with the CSDs (Fig. 17)."""
    from .gpu import a4000

    if not 1 <= num_gpus <= 3:
        raise HardwareConfigError(
            "congested topology supports 1-3 GPUs (chassis limit)")
    gpu = gpu or a4000()
    csd = csd or smartssd()
    return SystemSpec(
        name=f"congested-{num_gpus}gpu-{num_csds}csd",
        cpu=xeon_gold_6342(),
        host_memory=host_dram_1tb(),
        gpus=[gpu] * num_gpus,
        csds=[csd] * num_csds,
        host_link=gen3_x16(),
        gpu_link=gen3_x16(),
        gpus_on_expansion=True,
    )
