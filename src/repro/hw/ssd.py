"""NVMe SSD device model.

The model is a pair of bandwidths (sequential read / sequential write) plus a
fixed per-command latency.  Storage-offloaded training issues large
sequential transfers (whole optimizer-state subgroups), so sequential
bandwidth is the regime that matters; the paper's observation that "the
write bandwidth is often far lower than that of the read" is captured by the
asymmetric defaults.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareConfigError

GB = 1e9
TB = 1e12


@dataclass(frozen=True)
class SSDSpec:
    """Performance/capacity description of one NVMe SSD."""

    name: str
    capacity_bytes: float
    read_bandwidth: float
    write_bandwidth: float
    #: Per-command latency (queueing + flash access) in seconds.
    latency: float = 60e-6
    cost_usd: float = 400.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise HardwareConfigError(f"{self.name}: capacity must be > 0")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise HardwareConfigError(
                f"{self.name}: bandwidths must be positive")
        if self.latency < 0:
            raise HardwareConfigError(f"{self.name}: negative latency")

    def read_time(self, nbytes: float) -> float:
        """Seconds to sequentially read ``nbytes``."""
        return self.latency + nbytes / self.read_bandwidth

    def write_time(self, nbytes: float) -> float:
        """Seconds to sequentially write ``nbytes``."""
        return self.latency + nbytes / self.write_bandwidth


def smartssd_nand() -> SSDSpec:
    """The 4TB NVMe SSD inside a Samsung SmartSSD (calibrated to Fig. 14)."""
    return SSDSpec(
        name="SmartSSD-NAND-4TB",
        capacity_bytes=4 * TB,
        read_bandwidth=3.2 * GB,
        write_bandwidth=3.0 * GB,
    )
