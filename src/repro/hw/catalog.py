"""Extended parts catalog: alternative CSD products.

The paper targets SmartSSD but notes its approach "is not limited to
certain products" and cites other commercial CSDs ([22] ScaleFlux
CSD 3000, [86] Eideticom NoLoad, [85] NGD Newport).  Public specs for the
compute engines of these parts are sparse; the entries below are
*representative* configurations used by the sensitivity study
(`repro.experiments.ext_csd_sensitivity`) to show how Smart-Infinity's
speedup responds to internal bandwidth and engine throughput — the design
dimensions a CSD vendor controls.
"""

from __future__ import annotations

from .csd import CSDSpec
from .fpga import FPGAResources, FPGASpec
from .pcie import PCIeGen, PCIeLink
from .ssd import SSDSpec

GB = 1e9
TB = 1e12


def scaleflux_csd3000() -> CSDSpec:
    """A ScaleFlux CSD-3000-style device: Gen4 NVMe with a beefier
    internal path and an ASIC compute engine."""
    ssd = SSDSpec(name="CSD3000-NAND-8TB", capacity_bytes=8 * TB,
                  read_bandwidth=6.5 * GB, write_bandwidth=5.0 * GB,
                  cost_usd=900.0)
    engine = FPGASpec(
        name="CSD3000-engine",
        resources=FPGAResources(luts=300_000, brams=600, urams=96,
                                dsps=1200),
        dram_bytes=8 * GB,
        updater_bandwidth=12.0 * GB,
        decompressor_bandwidth=7.0 * GB,
    )
    link = PCIeLink(PCIeGen.GEN4, 4)
    return CSDSpec(name="CSD3000", ssd=ssd, fpga=engine,
                   internal_link=link, external_link=link,
                   cost_usd=3600.0)


def noload_csp() -> CSDSpec:
    """An Eideticom NoLoad-style computational storage processor:
    modest flash, strong accelerator."""
    ssd = SSDSpec(name="NoLoad-NAND-4TB", capacity_bytes=4 * TB,
                  read_bandwidth=3.0 * GB, write_bandwidth=2.2 * GB,
                  cost_usd=500.0)
    engine = FPGASpec(
        name="NoLoad-U2",
        resources=FPGAResources(luts=400_000, brams=800, urams=128,
                                dsps=1500),
        dram_bytes=8 * GB,
        updater_bandwidth=9.0 * GB,
        decompressor_bandwidth=4.5 * GB,
    )
    link = PCIeLink(PCIeGen.GEN3, 4)
    return CSDSpec(name="NoLoad", ssd=ssd, fpga=engine,
                   internal_link=link, external_link=link,
                   cost_usd=2800.0)


def hypothetical_gen5_csd() -> CSDSpec:
    """A forward-looking Gen5 CSD (the §VIII-C storage-pooling trend):
    faster flash and internal path, same shared-host-link pressure."""
    ssd = SSDSpec(name="Gen5-NAND-8TB", capacity_bytes=8 * TB,
                  read_bandwidth=12.0 * GB, write_bandwidth=10.0 * GB,
                  cost_usd=1200.0)
    engine = FPGASpec(
        name="Gen5-engine",
        resources=FPGAResources(luts=800_000, brams=1600, urams=256,
                                dsps=3000),
        dram_bytes=16 * GB,
        updater_bandwidth=25.0 * GB,
        decompressor_bandwidth=14.0 * GB,
    )
    link = PCIeLink(PCIeGen.GEN5, 4)
    return CSDSpec(name="Gen5-CSD", ssd=ssd, fpga=engine,
                   internal_link=link, external_link=link,
                   cost_usd=4500.0)


#: All alternative devices, by name.
ALTERNATIVE_CSDS = {
    "smartssd": None,  # filled lazily to avoid an import cycle
    "csd3000": scaleflux_csd3000,
    "noload": noload_csp,
    "gen5": hypothetical_gen5_csd,
}


def get_csd(name: str) -> CSDSpec:
    """Look up a CSD product by catalog name."""
    if name == "smartssd":
        from .csd import smartssd
        return smartssd()
    try:
        return ALTERNATIVE_CSDS[name]()
    except KeyError:
        known = ", ".join(sorted(ALTERNATIVE_CSDS))
        raise KeyError(f"unknown CSD {name!r}; known: {known}")
