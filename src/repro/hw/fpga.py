"""FPGA accelerator model for the CSD's near-storage compute engine.

Two concerns are modelled separately:

* **Resources** (:class:`FPGAResources`) — LUT/BRAM/URAM/DSP counts, used by
  the HLS resource estimator (`repro.csd.hls`) to reproduce the utilization
  table (Table III) and to reject kernels that do not fit.
* **Throughput** (:class:`FPGASpec`) — bytes/s the updater and decompressor
  pipelines stream, calibrated to the paper's Fig. 14 (updater > 7 GB/s,
  decompressor slightly above SSD read bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareConfigError

GB = 1e9


@dataclass(frozen=True)
class FPGAResources:
    """Resource inventory of an FPGA part."""

    luts: int
    brams: int
    urams: int
    dsps: int

    def __post_init__(self) -> None:
        if min(self.luts, self.brams, self.urams, self.dsps) < 0:
            raise HardwareConfigError("FPGA resource counts must be >= 0")

    def fits(self, usage: "FPGAResources") -> bool:
        """Whether ``usage`` fits inside this inventory."""
        return (usage.luts <= self.luts and usage.brams <= self.brams
                and usage.urams <= self.urams and usage.dsps <= self.dsps)

    def __add__(self, other: "FPGAResources") -> "FPGAResources":
        return FPGAResources(
            luts=self.luts + other.luts,
            brams=self.brams + other.brams,
            urams=self.urams + other.urams,
            dsps=self.dsps + other.dsps,
        )

    def utilization_of(self, total: "FPGAResources") -> dict:
        """Percent utilization of each resource class against ``total``."""
        def pct(used: int, avail: int) -> float:
            return 100.0 * used / avail if avail else 0.0

        return {
            "LUT": pct(self.luts, total.luts),
            "BRAM": pct(self.brams, total.brams),
            "URAM": pct(self.urams, total.urams),
            "DSP": pct(self.dsps, total.dsps),
        }


@dataclass(frozen=True)
class FPGASpec:
    """One FPGA accelerator as found inside a SmartSSD."""

    name: str
    resources: FPGAResources
    dram_bytes: float
    #: Streaming throughput of the optimizer-update pipeline, bytes/s.
    updater_bandwidth: float
    #: Streaming throughput of the Top-K decompressor, bytes/s of output.
    decompressor_bandwidth: float
    #: Kernel launch overhead per invocation, seconds.
    kernel_launch_latency: float = 30e-6

    def __post_init__(self) -> None:
        if self.dram_bytes <= 0:
            raise HardwareConfigError(f"{self.name}: DRAM must be > 0")
        if self.updater_bandwidth <= 0 or self.decompressor_bandwidth <= 0:
            raise HardwareConfigError(
                f"{self.name}: pipeline bandwidths must be positive")


def ku15p() -> FPGASpec:
    """Xilinx Kintex UltraScale+ KU15P, the SmartSSD's FPGA.

    Resource counts follow the paper (~522K LUTs, 984 BRAMs, 128 URAMs,
    1968 DSPs, 4 GB DDR4); pipeline throughputs follow Fig. 14.
    """
    return FPGASpec(
        name="KU15P",
        resources=FPGAResources(luts=522_000, brams=984, urams=128,
                                dsps=1968),
        dram_bytes=4 * GB,
        updater_bandwidth=7.2 * GB,
        decompressor_bandwidth=3.5 * GB,
    )
