"""Software RAID0 bandwidth model (the mdadm setup of the baseline).

RAID0 stripes data across ``n`` member devices, so the array's raw
sequential bandwidth is ``n`` times the member bandwidth — but every byte
still crosses the *shared* host interconnect, so delivered bandwidth is
clamped by the host link.  This clamp is the saturation the paper's Fig. 3b
demonstrates: beyond four SSDs, adding members buys nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareConfigError
from .ssd import SSDSpec


@dataclass(frozen=True)
class RAID0Spec:
    """A striped array of identical member SSDs."""

    member: SSDSpec
    num_members: int
    #: Bandwidth of the shared path to the host in bytes/s.
    host_link_bandwidth: float
    #: Striping overhead factor (request splitting, md layer CPU).
    efficiency: float = 0.97

    def __post_init__(self) -> None:
        if self.num_members < 1:
            raise HardwareConfigError("RAID0 needs at least one member")
        if self.host_link_bandwidth <= 0:
            raise HardwareConfigError("host link bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise HardwareConfigError("RAID efficiency must be in (0, 1]")

    @property
    def capacity_bytes(self) -> float:
        return self.member.capacity_bytes * self.num_members

    @property
    def read_bandwidth(self) -> float:
        """Delivered sequential read bandwidth at the host."""
        raw = self.member.read_bandwidth * self.num_members * self.efficiency
        return min(raw, self.host_link_bandwidth)

    @property
    def write_bandwidth(self) -> float:
        """Delivered sequential write bandwidth at the host."""
        raw = self.member.write_bandwidth * self.num_members * self.efficiency
        return min(raw, self.host_link_bandwidth)

    @property
    def saturated(self) -> bool:
        """Whether the host link, not the members, limits read bandwidth."""
        raw = self.member.read_bandwidth * self.num_members * self.efficiency
        return raw >= self.host_link_bandwidth

    def read_time(self, nbytes: float) -> float:
        return self.member.latency + nbytes / self.read_bandwidth

    def write_time(self, nbytes: float) -> float:
        return self.member.latency + nbytes / self.write_bandwidth


def saturation_point(member: SSDSpec, host_link_bandwidth: float,
                     efficiency: float = 0.97) -> int:
    """Smallest member count at which RAID0 reads saturate the host link."""
    count = 1
    while (member.read_bandwidth * count * efficiency
           < host_link_bandwidth):
        count += 1
    return count
