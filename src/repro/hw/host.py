"""Host-side components: CPU update engine and host DRAM.

In the ZeRO-Infinity baseline the *CPU* executes the optimizer step with an
AVX-vectorized kernel.  That kernel is memory-bandwidth-bound (it streams
parameter, momentum, variance and gradient vectors), so we model it as a
bytes/s engine over the touched optimizer bytes, the same way the FPGA
updater is modelled — which makes CPU-vs-FPGA update comparisons direct.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareConfigError

GB = 1e9


@dataclass(frozen=True)
class CPUSpec:
    """Host CPU as an optimizer-update engine."""

    name: str
    cores: int
    #: Effective streaming throughput of the AVX Adam kernel, bytes/s of
    #: optimizer state touched.  DeepSpeed's CPU-Adam reaches roughly DRAM
    #: bandwidth over a handful of cores.
    update_bandwidth: float
    cost_usd: float = 0.0

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.update_bandwidth <= 0:
            raise HardwareConfigError(f"{self.name}: invalid CPU spec")

    def update_time(self, nbytes: float) -> float:
        """Seconds for the AVX kernel to stream ``nbytes`` of state."""
        return nbytes / self.update_bandwidth


@dataclass(frozen=True)
class HostMemorySpec:
    """Host DRAM capacity/bandwidth."""

    capacity_bytes: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth <= 0:
            raise HardwareConfigError("invalid host memory spec")


def xeon_gold_6342() -> CPUSpec:
    """Dual Xeon Gold 6342 (2 x 24C/48T), the paper's host CPU."""
    return CPUSpec(name="Xeon-Gold-6342-2S", cores=96,
                   update_bandwidth=24 * GB, cost_usd=0.0)


def host_dram_1tb() -> HostMemorySpec:
    """32 x 32 GB DDR4-3200, the paper's host memory configuration."""
    return HostMemorySpec(capacity_bytes=1024 * GB, bandwidth=200 * GB)
