"""GPU device model.

For storage-offloaded training the GPU matters through two numbers: how fast
it executes the transformer forward/backward FLOPs (mixed-precision tensor
throughput times an achievable-efficiency factor) and how much memory it has
(which bounds the block size the runtime streams through it).  The specs
below are the three GPUs used in the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareConfigError

GB = 1e9
TFLOP = 1e12


@dataclass(frozen=True)
class GPUSpec:
    """Compute/memory description of one GPU."""

    name: str
    memory_bytes: float
    #: Peak mixed-precision (FP16 tensor-core) throughput in FLOP/s.
    peak_flops: float
    #: Fraction of peak achieved on transformer training kernels.
    efficiency: float = 0.65
    cost_usd: float = 2000.0

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.peak_flops <= 0:
            raise HardwareConfigError(f"{self.name}: invalid GPU spec")
        if not 0 < self.efficiency <= 1:
            raise HardwareConfigError(
                f"{self.name}: efficiency must be in (0, 1]")

    @property
    def sustained_flops(self) -> float:
        """Achievable FLOP/s on transformer training workloads."""
        return self.peak_flops * self.efficiency

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise HardwareConfigError(f"negative flops: {flops}")
        return flops / self.sustained_flops


def a5000() -> GPUSpec:
    """NVIDIA RTX A5000 (24 GB), the paper's default training GPU."""
    return GPUSpec(name="RTX-A5000", memory_bytes=24 * GB,
                   peak_flops=111 * TFLOP, cost_usd=2000.0)


def a100_40g() -> GPUSpec:
    """NVIDIA A100 40 GB, the paper's higher-end GPU.

    Achievable efficiency is set below the A5000's: at the batch size of 4
    used throughout the evaluation, the larger tensor-core array is harder
    to saturate.
    """
    return GPUSpec(name="A100-40GB", memory_bytes=40 * GB,
                   peak_flops=312 * TFLOP, efficiency=0.5,
                   cost_usd=7000.0)


def a4000() -> GPUSpec:
    """NVIDIA RTX A4000 (16 GB, single-slot), used in the congested
    multi-GPU expansion topology of the paper's discussion section."""
    return GPUSpec(name="RTX-A4000", memory_bytes=16 * GB,
                   peak_flops=76 * TFLOP, cost_usd=1100.0)
