"""PCIe link modelling.

Bandwidth figures are per-lane effective data rates after 128b/130b (Gen3+)
or 8b/10b (Gen1/2) encoding.  Real links additionally lose a few percent to
TLP/DLLP framing overhead, which the ``efficiency`` factor captures; the
default of 0.82 reproduces the commonly measured ~12.8 GB/s on a Gen3 x16
link — exactly the host interconnect ceiling the paper's RAID0 experiment
(Fig. 3b) saturates against at four SSDs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import HardwareConfigError

GB = 1e9

#: Per-lane raw data rate in bytes/s after line encoding, by generation.
_LANE_RATE = {
    1: 0.25 * GB,
    2: 0.5 * GB,
    3: 0.985 * GB,
    4: 1.969 * GB,
    5: 3.938 * GB,
}

#: Default protocol efficiency (TLP headers, flow control, ACKs).
DEFAULT_EFFICIENCY = 0.82

_VALID_WIDTHS = (1, 2, 4, 8, 16)


class PCIeGen(enum.IntEnum):
    """PCI Express generation."""

    GEN1 = 1
    GEN2 = 2
    GEN3 = 3
    GEN4 = 4
    GEN5 = 5

    @property
    def lane_rate(self) -> float:
        """Raw bytes/s per lane after line encoding."""
        return _LANE_RATE[int(self)]


@dataclass(frozen=True)
class PCIeLink:
    """A point-to-point PCIe link of a given generation and width."""

    gen: PCIeGen
    lanes: int
    efficiency: float = DEFAULT_EFFICIENCY
    #: One-way command latency in seconds (doorbell + completion).
    latency: float = 1e-6

    def __post_init__(self) -> None:
        if self.lanes not in _VALID_WIDTHS:
            raise HardwareConfigError(
                f"invalid PCIe width x{self.lanes}; must be one of "
                f"{_VALID_WIDTHS}")
        if not 0 < self.efficiency <= 1:
            raise HardwareConfigError(
                f"PCIe efficiency must be in (0, 1], got {self.efficiency}")
        if self.latency < 0:
            raise HardwareConfigError("PCIe latency must be non-negative")

    @property
    def bandwidth(self) -> float:
        """Effective one-direction bandwidth in bytes/s."""
        return self.gen.lane_rate * self.lanes * self.efficiency

    def label(self) -> str:
        return f"PCIe Gen{int(self.gen)} x{self.lanes}"


def gen3_x4() -> PCIeLink:
    """The SmartSSD's internal/external link: PCIe Gen3 x4 (~3.2 GB/s)."""
    return PCIeLink(PCIeGen.GEN3, 4)


def gen3_x16() -> PCIeLink:
    """A host CPU root-port link: PCIe Gen3 x16 (~12.9 GB/s effective)."""
    return PCIeLink(PCIeGen.GEN3, 16)
