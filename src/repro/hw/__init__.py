"""Hardware component models: PCIe, SSDs, GPUs, FPGAs, CSDs, topologies."""

from .csd import CSDSpec, smartssd
from .fpga import FPGAResources, FPGASpec, ku15p
from .gpu import GPUSpec, a100_40g, a4000, a5000
from .host import (CPUSpec, HostMemorySpec, host_dram_1tb, xeon_gold_6342)
from .pcie import PCIeGen, PCIeLink, gen3_x4, gen3_x16
from .raid import RAID0Spec, saturation_point
from .ssd import SSDSpec, smartssd_nand
from .topology import SystemSpec, congested_system, default_system

__all__ = [
    "CPUSpec",
    "CSDSpec",
    "FPGAResources",
    "FPGASpec",
    "GPUSpec",
    "HostMemorySpec",
    "PCIeGen",
    "PCIeLink",
    "RAID0Spec",
    "SSDSpec",
    "SystemSpec",
    "a100_40g",
    "a4000",
    "a5000",
    "congested_system",
    "default_system",
    "gen3_x4",
    "gen3_x16",
    "host_dram_1tb",
    "ku15p",
    "saturation_point",
    "smartssd",
    "smartssd_nand",
    "xeon_gold_6342",
]
