"""Computational storage device (SmartSSD) composition.

A CSD packages an NVMe SSD, a lightweight FPGA, and an *internal* PCIe
switch behind a single external PCIe Gen3 x4 connector.  The internal switch
gives the SSD and FPGA a private peer-to-peer path: traffic between them
never crosses the shared host interconnect.  This is the property the whole
system exploits — per-device internal bandwidth aggregates linearly with the
number of CSDs while the host link stays constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fpga import FPGASpec, ku15p
from .pcie import PCIeLink, gen3_x4
from .ssd import SSDSpec, smartssd_nand


@dataclass(frozen=True)
class CSDSpec:
    """One computational storage device."""

    name: str
    ssd: SSDSpec
    fpga: FPGASpec
    #: SSD <-> FPGA path through the device-internal PCIe switch.
    internal_link: PCIeLink
    #: Device <-> host path (shares the host interconnect with siblings).
    external_link: PCIeLink
    cost_usd: float = 2400.0

    @property
    def p2p_read_bandwidth(self) -> float:
        """SSD -> FPGA effective bandwidth over the internal path."""
        return min(self.ssd.read_bandwidth, self.internal_link.bandwidth)

    @property
    def p2p_write_bandwidth(self) -> float:
        """FPGA -> SSD effective bandwidth over the internal path."""
        return min(self.ssd.write_bandwidth, self.internal_link.bandwidth)


def smartssd() -> CSDSpec:
    """Samsung SmartSSD: 4TB NVMe + KU15P behind a Gen3 x4 switch.

    The paper quotes ~$2,400 per device, 6x the cost of the same-capacity
    plain SSD — the input to the cost-efficiency analysis (Fig. 15).
    """
    return CSDSpec(
        name="SmartSSD",
        ssd=smartssd_nand(),
        fpga=ku15p(),
        internal_link=gen3_x4(),
        external_link=gen3_x4(),
        cost_usd=2400.0,
    )
