"""Campaign execution: seeded replayable runs with an event log.

:class:`ScenarioRunner` executes a :class:`~repro.scenarios.spec.Scenario`
against any :func:`repro.api.create_engine` mode and either parallel
backend.  The run is fully deterministic given the effective seed: the
model init, every batch, and every fault stream derive from it, the SLO
rule set is restricted to schedule-independent signals
(:data:`SCENARIO_SLO_RULES`), and the emitted
``smart-infinity/scenario/v1`` event log carries no wall-clock fields —
so the same seed reproduces a byte-identical log, which is what
``python -m repro scenario replay`` asserts.

Fault-plan splices happen at phase boundaries via the checkpoint path:
the engine's full state (masters, moments, error-feedback residual,
loss scaler, step counter) is saved, the engine is torn down, and a
fresh engine with the new plan restores from the checkpoint.  The
no-fault *reference* run — used by ``bit_identical_to_reference``
expectations — mirrors the exact same segmentation with every plan
stripped, so the only difference between the two runs is the injected
faults; bit-identity at the recovery boundary is then precisely the
paper's graceful-degradation claim.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import shutil
import tempfile
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError, ScenarioError
from ..faults import FaultPlan
from ..runtime.checkpoint import load_checkpoint, save_checkpoint
from ..runtime.engine import TrainingConfig
from ..telemetry.health import DEFAULT_SLO_RULES
from .spec import PhaseSpec, Scenario

#: Event-log schema marker (shared with the scenario file schema).
EVENT_SCHEMA = "smart-infinity/scenario/v1"

#: Signals whose values depend on wall-clock or process-global state;
#: rules over them would make the event log timing-dependent.
_NONDETERMINISTIC_SIGNALS = ("steps_per_s", "step_seconds",
                             "arena_hit_rate", "backoff_s_step")

#: The default SLO rules minus wall-clock-dependent ones — the subset a
#: replayable campaign can assert on (loss finiteness/divergence,
#: dropouts, retry storms).  Scenario engines default to these.
SCENARIO_SLO_RULES: Tuple[Dict[str, object], ...] = tuple(
    rule for rule in DEFAULT_SLO_RULES
    if rule["signal"] not in _NONDETERMINISTIC_SIGNALS)


def _checksum(params: np.ndarray) -> str:
    """Stable digest of the trained parameters (bit-identity witness)."""
    return hashlib.sha256(params.tobytes()).hexdigest()[:16]


def _loss_fn(model, tokens, labels):
    return model.loss(tokens, labels)


@dataclass
class _Ledger:
    """Campaign-cumulative accounting across engine rebuilds.

    Fault-plan splices tear engines down, so per-engine counters reset;
    the ledger absorbs each closed engine's totals and exposes a merged
    view over (closed engines + the live one).
    """

    injected: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    retries_exhausted: int = 0
    dropouts: int = 0
    demotions: int = 0
    degraded_steps: int = 0
    alerts: List[str] = field(default_factory=list)
    dumps: int = 0

    def absorb(self, engine) -> None:
        stats = engine.fault_stats()
        for kind, count in stats["injected"].items():
            self.injected[kind] = self.injected.get(kind, 0) + int(count)
        self.retries += int(stats["retries"])
        self.retries_exhausted += int(stats["retries_exhausted"])
        self.dropouts += int(stats["dropouts"])
        self.demotions += int(stats["demotions"])
        self.degraded_steps += int(stats["degraded_steps"])
        self.alerts.extend(alert.rule for alert in engine.alerts)
        self.dumps += len(engine.flight_dumps())

    def view(self, engine=None) -> Dict[str, object]:
        """Merged totals including the live engine (if any)."""
        merged = _Ledger(injected=dict(self.injected),
                         retries=self.retries,
                         retries_exhausted=self.retries_exhausted,
                         dropouts=self.dropouts,
                         demotions=self.demotions,
                         degraded_steps=self.degraded_steps,
                         alerts=list(self.alerts), dumps=self.dumps)
        if engine is not None:
            merged.absorb(engine)
        return {
            "injected": merged.injected,
            "retries": merged.retries,
            "retries_exhausted": merged.retries_exhausted,
            "dropouts": merged.dropouts,
            "demotions": merged.demotions,
            "degraded_steps": merged.degraded_steps,
            "alerts": merged.alerts,
            "dumps": merged.dumps,
        }


def _delta(before: Dict[str, object],
           after: Dict[str, object]) -> Dict[str, object]:
    """Phase-local counter movement between two ledger views."""
    injected = {
        kind: int(after["injected"].get(kind, 0)) - int(count)
        for kind, count in before["injected"].items()
    }
    injected.update({kind: int(count)
                     for kind, count in after["injected"].items()
                     if kind not in before["injected"]})
    return {
        "injected": {k: v for k, v in injected.items() if v},
        "retries": after["retries"] - before["retries"],
        "retries_exhausted": (after["retries_exhausted"]
                              - before["retries_exhausted"]),
        "dropouts": after["dropouts"] - before["dropouts"],
        "demotions": after["demotions"] - before["demotions"],
        "alerts": after["alerts"][len(before["alerts"]):],
        "dumps": after["dumps"] - before["dumps"],
    }


@dataclass(frozen=True)
class CheckResult:
    """One evaluated expectation."""

    check: str
    expected: object
    actual: object
    ok: bool

    def to_dict(self) -> Dict[str, object]:
        return {"check": self.check, "expected": self.expected,
                "actual": self.actual, "ok": self.ok}


@dataclass
class PhaseReport:
    """Per-phase outcome: steps run plus every check's verdict."""

    name: str
    kind: str
    steps: int
    checks: List[CheckResult] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def passed(self) -> bool:
        return self.error is None and all(c.ok for c in self.checks)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name, "kind": self.kind, "steps": self.steps,
            "passed": self.passed,
            "checks": [c.to_dict() for c in self.checks],
        }
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class CampaignReport:
    """One sweep point's outcome: its phases plus final state."""

    label: str
    phases: List[PhaseReport] = field(default_factory=list)
    final_checksum: Optional[str] = None
    reference_checksums: Dict[str, str] = field(default_factory=dict)
    counters: Dict[str, object] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(phase.passed for phase in self.phases)

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label, "passed": self.passed,
            "phases": [phase.to_dict() for phase in self.phases],
            "final_checksum": self.final_checksum,
            "reference_checksums": self.reference_checksums,
            "counters": self.counters,
        }


@dataclass
class ScenarioReport:
    """A full run: every campaign plus the serialized event log."""

    scenario: str
    seed: int
    campaigns: List[CampaignReport] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)
    log_path: Optional[str] = None

    @property
    def passed(self) -> bool:
        return all(campaign.passed for campaign in self.campaigns)

    @property
    def log_text(self) -> str:
        """The event log as canonical JSONL (what replay byte-compares)."""
        return "".join(json.dumps(event, sort_keys=True) + "\n"
                       for event in self.events)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": EVENT_SCHEMA,
            "scenario": self.scenario, "seed": self.seed,
            "passed": self.passed,
            "campaigns": [c.to_dict() for c in self.campaigns],
            "events": len(self.events),
            "log_path": self.log_path,
        }


class ScenarioRunner:
    """Executes a campaign deterministically and evaluates expectations.

    Parameters
    ----------
    scenario:
        The campaign to run.
    workdir:
        Directory for engine storage, checkpoints, flight dumps, and the
        default event-log location.  None uses a temporary directory
        removed after the run (dump *counts* are still recorded in the
        log).
    backend:
        Override ``config.parallel_backend`` (the CLI ``--backend``
        flag); None keeps the scenario's setting.
    chaos_seed:
        Override the scenario seed (the CLI ``--chaos-seed`` flag); the
        effective seed drives model init, batches, and fault streams.
    log_path:
        Where to write the JSONL event log; None writes
        ``<workdir>/events.jsonl`` when a workdir was given, else keeps
        the log in memory only.
    workers:
        Override ``config.parallel_csds`` (the CLI ``--workers`` flag);
        None keeps the scenario's setting.  Bit-identity makes this a
        pure throughput knob.
    slo_rules:
        Override the SLO rule set (the CLI ``--slo`` flag) on every
        campaign, including the reference run; None keeps the
        scenario's rules (default: :data:`SCENARIO_SLO_RULES`).
    fault_plan:
        Override the scenario-level (pre-splice) fault plan (the CLI
        ``--fault-plan`` flag); None keeps the scenario's plan.
    schedule:
        Override ``config.schedule`` (the CLI ``--schedule`` flag);
        None keeps the scenario's setting.  Bit-identity between the
        phased and interleaved pipelines makes this a pure throughput
        knob, like ``workers``.
    activation_offload:
        Override ``config.activation_offload`` (the CLI
        ``--activation-offload`` flag); None keeps the scenario's
        setting.
    """

    def __init__(self, scenario: Scenario,
                 workdir: Optional[str] = None,
                 backend: Optional[str] = None,
                 chaos_seed: Optional[int] = None,
                 log_path: Optional[str] = None,
                 workers: Optional[int] = None,
                 slo_rules: Optional[List[Dict[str, object]]] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 schedule: Optional[str] = None,
                 activation_offload: Optional[str] = None) -> None:
        if fault_plan is not None:
            scenario = scenario.with_base_fault_plan(fault_plan)
        self.scenario = (scenario if chaos_seed is None
                         else scenario.with_seed(chaos_seed))
        self.seed = self.scenario.seed
        self.backend = backend
        self.workers = workers
        self.slo_rules = slo_rules
        self.schedule = schedule
        self.activation_offload = activation_offload
        self._workdir = workdir
        self._log_path = log_path
        self._events: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    def run(self) -> ScenarioReport:
        """Run every campaign (one per sweep point) and evaluate checks."""
        scenario = self.scenario
        from ..api import ENGINE_MODES
        if scenario.engine not in ENGINE_MODES:
            raise ScenarioError(
                f"scenario {scenario.name!r}: unknown engine mode "
                f"{scenario.engine!r}; choose from {ENGINE_MODES}")
        owns_workdir = self._workdir is None
        workdir = self._workdir or tempfile.mkdtemp(prefix="scenario-")
        self._events = []
        report = ScenarioReport(scenario=scenario.name, seed=self.seed)
        self._emit("scenario_begin", schema=EVENT_SCHEMA,
                   scenario=scenario.name, seed=self.seed,
                   engine=scenario.engine,
                   backend=self.backend or
                   scenario.config.parallel_backend,
                   campaigns=[label for label, _
                              in scenario.campaign_configs()])
        try:
            for index, (label, config) in \
                    enumerate(scenario.campaign_configs()):
                campaign_dir = os.path.join(workdir, f"campaign{index}")
                os.makedirs(campaign_dir, exist_ok=True)
                report.campaigns.append(
                    self._run_campaign(label, config, campaign_dir))
        finally:
            report.events = self._events
            self._emit("scenario_end", scenario=scenario.name,
                       passed=report.passed)
            report.events = self._events
            report.log_path = self._write_log(workdir, owns_workdir)
            if owns_workdir:
                shutil.rmtree(workdir, ignore_errors=True)
        return report

    def _write_log(self, workdir: str, owns_workdir: bool
                   ) -> Optional[str]:
        path = self._log_path
        if path is None:
            if owns_workdir:
                return None
            path = os.path.join(workdir, "events.jsonl")
        with open(path, "w") as handle:
            for event in self._events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return path

    def _emit(self, event: str, **fields: object) -> None:
        self._events.append({"event": event, **fields})

    # ------------------------------------------------------------------
    # engine lifecycle
    # ------------------------------------------------------------------
    def _campaign_config(self, config: TrainingConfig, dump_dir: str,
                         faulted: bool) -> TrainingConfig:
        """The effective engine config for one campaign run."""
        overrides: Dict[str, object] = {}
        if self.backend is not None:
            overrides["parallel_backend"] = self.backend
        if self.workers is not None:
            overrides["parallel_csds"] = self.workers
        if self.schedule is not None:
            overrides["schedule"] = self.schedule
        if self.activation_offload is not None:
            overrides["activation_offload"] = self.activation_offload
        if self.slo_rules is not None:
            overrides["slo_rules"] = [dict(rule)
                                      for rule in self.slo_rules]
        elif config.slo_rules is None:
            # Replayability: only schedule-independent rules by default.
            overrides["slo_rules"] = [dict(rule)
                                      for rule in SCENARIO_SLO_RULES]
        wants_dumps = any(
            phase.expect.dumps_written for phase in self.scenario.phases)
        if faulted and wants_dumps and config.flight_dump_dir is None:
            overrides["flight_dump_dir"] = dump_dir
        if not faulted:
            # The reference run must not burn dump-file budget or count
            # chaos alerts; it exists purely as a bit-identity oracle.
            overrides["flight_dump_dir"] = None
        if overrides:
            config = replace(config, **overrides)
        return config

    def _build_engine(self, config: TrainingConfig,
                      plan: Optional[FaultPlan], storage_dir: str):
        from ..api import create_engine
        plan = plan.with_seed(self.seed) if plan is not None else None
        config = replace(config, fault_plan=plan)
        os.makedirs(storage_dir, exist_ok=True)
        model = self.scenario.workload.make_model(self.seed)
        return create_engine(self.scenario.engine, model, _loss_fn,
                             storage_dir, config=config)

    def _splice(self, engine, ledger: _Ledger, config: TrainingConfig,
                plan: Optional[FaultPlan], segment_dir: str):
        """Swap the fault plan via checkpoint -> rebuild -> restore."""
        os.makedirs(segment_dir, exist_ok=True)
        ckpt = os.path.join(segment_dir, "splice.npz")
        save_checkpoint(engine, ckpt)
        ledger.absorb(engine)
        engine.close()
        rebuilt = self._build_engine(config, plan,
                                     os.path.join(segment_dir, "storage"))
        load_checkpoint(rebuilt, ckpt)
        return rebuilt

    # ------------------------------------------------------------------
    # campaign execution
    # ------------------------------------------------------------------
    def _run_campaign(self, label: str, config: TrainingConfig,
                      campaign_dir: str) -> CampaignReport:
        scenario = self.scenario
        report = CampaignReport(label=label)
        self._emit("campaign_begin", campaign=label,
                   phases=[phase.name for phase in scenario.phases])
        if scenario.needs_reference:
            report.reference_checksums = self._run_reference(
                label, config, os.path.join(campaign_dir, "reference"))
            self._emit("reference", campaign=label,
                       checksums=report.reference_checksums)

        chaos_config = self._campaign_config(
            config, os.path.join(campaign_dir, "dumps"), faulted=True)
        ledger = _Ledger()
        engine = self._build_engine(
            chaos_config, chaos_config.fault_plan,
            os.path.join(campaign_dir, "segment0", "storage"))
        global_step = 0
        segment = 0
        try:
            for phase in scenario.phases:
                if phase.splices:
                    segment += 1
                    engine = self._splice(
                        engine, ledger, chaos_config, phase.fault_plan,
                        os.path.join(campaign_dir, f"segment{segment}"))
                before = ledger.view(engine)
                self._emit("phase_begin", campaign=label,
                           phase=phase.name, kind=phase.kind,
                           steps=phase.steps, splice=phase.splices)
                phase_report = PhaseReport(name=phase.name,
                                           kind=phase.kind,
                                           steps=phase.steps)
                report.phases.append(phase_report)
                try:
                    losses, global_step = self._run_steps(
                        engine, phase, label, global_step)
                except ReproError as exc:
                    phase_report.error = \
                        f"{type(exc).__name__}: {exc}"
                    self._emit("phase_end", campaign=label,
                               phase=phase.name, passed=False,
                               error=phase_report.error)
                    break
                after = ledger.view(engine)
                checksum = _checksum(engine.space.gather_params())
                self._check_phase(
                    phase, phase_report, label,
                    delta=_delta(before, after), cumulative=after,
                    losses=losses, checksum=checksum,
                    reference=report.reference_checksums.get(phase.name))
                self._emit("phase_end", campaign=label,
                           phase=phase.name,
                           passed=phase_report.passed,
                           checksum=checksum,
                           counters=_delta(before, after))
            report.final_checksum = \
                _checksum(engine.space.gather_params())
            report.counters = ledger.view(engine)
        finally:
            ledger.absorb(engine)
            engine.close()
        self._emit("campaign_end", campaign=label, passed=report.passed,
                   checksum=report.final_checksum)
        return report

    def _run_reference(self, label: str, config: TrainingConfig,
                       reference_dir: str) -> Dict[str, str]:
        """The no-fault oracle: same schedule and segmentation, faults
        stripped; returns the per-phase parameter checksums."""
        scenario = self.scenario
        ref_config = self._campaign_config(config, reference_dir,
                                           faulted=False)
        ledger = _Ledger()
        engine = self._build_engine(
            ref_config, None,
            os.path.join(reference_dir, "segment0", "storage"))
        checksums: Dict[str, str] = {}
        global_step = 0
        segment = 0
        try:
            for phase in scenario.phases:
                if phase.splices:
                    # Mirror the chaos run's engine lifecycle exactly —
                    # a rebuild must not be the source of a divergence.
                    segment += 1
                    engine = self._splice(
                        engine, ledger, ref_config, None,
                        os.path.join(reference_dir,
                                     f"segment{segment}"))
                _, global_step = self._run_steps(
                    engine, phase, f"{label}/reference", global_step,
                    emit=False)
                checksums[phase.name] = \
                    _checksum(engine.space.gather_params())
        finally:
            engine.close()
        return checksums

    def _run_steps(self, engine, phase: PhaseSpec, label: str,
                   global_step: int,
                   emit: bool = True) -> Tuple[List[float], int]:
        workload = self.scenario.workload
        batch = phase.batch or workload.batch
        losses: List[float] = []
        for _ in range(phase.steps):
            batches = workload.make_batches(
                self.seed, global_step, batch, phase.micro_batches)
            if phase.micro_batches > 1:
                result = engine.train_step_accumulated(batches)
            else:
                result = engine.train_step(*batches[0])
            global_step += 1
            losses.append(result.loss)
            if emit:
                self._emit("step", campaign=label, phase=phase.name,
                           global_step=global_step,
                           engine_step=result.step, loss=result.loss,
                           overflow=result.overflow)
        return losses, global_step

    # ------------------------------------------------------------------
    # expectation evaluation
    # ------------------------------------------------------------------
    def _check_phase(self, phase: PhaseSpec, report: PhaseReport,
                     label: str, delta: Dict[str, object],
                     cumulative: Dict[str, object],
                     losses: Sequence[float], checksum: str,
                     reference: Optional[str]) -> None:
        expect = phase.expect

        def add(check: str, expected: object, actual: object,
                ok: bool) -> None:
            result = CheckResult(check=check, expected=expected,
                                 actual=actual, ok=bool(ok))
            report.checks.append(result)
            self._emit("check", campaign=label, phase=phase.name,
                       **result.to_dict())

        injected_total = sum(delta["injected"].values())
        if expect.min_injected is not None:
            add("min_injected", expect.min_injected, injected_total,
                injected_total >= expect.min_injected)
        if expect.max_injected is not None:
            add("max_injected", expect.max_injected, injected_total,
                injected_total <= expect.max_injected)
        for kind in expect.injected_include:
            add("injected_include", kind,
                sorted(delta["injected"]),
                kind in delta["injected"])
        if expect.min_retries is not None:
            add("min_retries", expect.min_retries, delta["retries"],
                delta["retries"] >= expect.min_retries)
        if expect.min_demotions is not None:
            add("min_demotions", expect.min_demotions,
                cumulative["demotions"],
                cumulative["demotions"] >= expect.min_demotions)
        if expect.max_demotions is not None:
            add("max_demotions", expect.max_demotions,
                cumulative["demotions"],
                cumulative["demotions"] <= expect.max_demotions)
        for rule in expect.alerts_include:
            add("alerts_include", rule, sorted(set(delta["alerts"])),
                rule in delta["alerts"])
        if expect.no_new_alerts:
            add("no_new_alerts", [], sorted(set(delta["alerts"])),
                not delta["alerts"])
        if expect.dumps_written is not None:
            add("dumps_written", expect.dumps_written, delta["dumps"],
                (delta["dumps"] > 0) == expect.dumps_written)
        if expect.loss_finite is not None:
            finite = all(math.isfinite(loss) for loss in losses)
            add("loss_finite", expect.loss_finite, finite,
                finite == expect.loss_finite)
        if expect.max_loss is not None:
            worst = max(losses) if losses else None
            add("max_loss", expect.max_loss, worst,
                worst is None or worst <= expect.max_loss)
        if expect.bit_identical_to_reference is not None:
            if reference is None:
                add("bit_identical_to_reference",
                    expect.bit_identical_to_reference, None, False)
            else:
                identical = checksum == reference
                add("bit_identical_to_reference",
                    expect.bit_identical_to_reference,
                    {"run": checksum, "reference": reference},
                    identical == expect.bit_identical_to_reference)
        if expect.whatif_error is not None:
            # Gate the what-if projection engine against a DES re-run.
            # The check is pure simulation (seed-independent and free of
            # wall-clock state), so the event log stays byte-identical
            # across replays; the error is rounded for log stability.
            from ..telemetry.critpath import validate_scale
            spec = expect.whatif_error
            max_error = float(spec.get("max_error", 0.05))
            validation = validate_scale(
                str(spec["channel"]), float(spec["factor"]),
                model=str(spec.get("model", "gpt2-1.16b")),
                csds=int(spec.get("csds", 4)),
                method=str(spec.get("method", "su_o_c")),
                gpu=str(spec.get("gpu", "a5000")),
                ratio=float(spec.get("ratio", 0.02)))
            error = round(validation.error, 6)
            add("whatif_error", max_error, error, error <= max_error)
