"""Declarative campaign specifications: phases, expectations, sweeps.

A :class:`Scenario` is a named, seeded sequence of phases — ``setup``,
free-form ``workload`` phases, ``anomaly``, ``detection``, ``recovery``
— declared in JSON/dict form (the same DeepSpeed-config idiom
:class:`~repro.runtime.engine.TrainingConfig` and
:class:`~repro.faults.FaultPlan` use).  Each phase can

* run a number of training steps with its own workload shape (batch
  burst via ``batch``, traffic burst via ``micro_batches`` gradient
  accumulation);
* splice a :class:`~repro.faults.FaultPlan` in (``"fault_plan": {...}``)
  or out (``"fault_plan": null``) — phases without the key inherit the
  currently-active plan;
* assert on the campaign's observable health via an ``expect`` block:
  injected-fault/retry/demotion counters, fired alerts,
  flight-recorder incident dumps, loss finiteness, and bit-identity of
  the trained parameters against a no-fault reference run of the same
  schedule.

A scenario may also declare a one-axis config ``sweep`` (e.g. a
SmartComp ``compression_ratio`` sweep); the whole phase list then runs
once per swept value, each with its own engine and reference run.

Files carry ``schema`` (``smart-infinity/scenario/v1``) and
``schema_version`` markers; a newer ``schema_version`` parses with a
forward-compatibility warning, and unknown keys at every nesting level
fail loudly with did-you-mean suggestions — a typo'd expectation must
not silently pass a chaos campaign.
"""

from __future__ import annotations

import difflib
import json
import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScenarioError
from ..faults import FaultPlan
from ..runtime.engine import TrainingConfig

#: Schema marker shared by scenario files and the runner's event log.
SCENARIO_SCHEMA = "smart-infinity/scenario/v1"

#: Version of the scenario file format this build reads and writes.
SCENARIO_SCHEMA_VERSION = 1

#: Phase kinds (Snippet-3-style campaign staging).  ``workload`` phases
#: are free-form; the others name the chaos-campaign stages.
PHASE_KINDS = ("setup", "workload", "anomaly", "detection", "recovery")

#: Sentinel for "this phase does not change the active fault plan" —
#: distinct from an explicit ``"fault_plan": null`` splice-out.
UNCHANGED = object()


def _check_keys(what: str, data: Dict, known: Sequence[str]) -> None:
    """Reject unknown keys with close-match suggestions."""
    if not isinstance(data, dict):
        raise ScenarioError(
            f"{what} must be a JSON object, got {type(data).__name__}")
    unknown = set(data) - set(known)
    if unknown:
        hints = []
        for key in sorted(unknown):
            close = difflib.get_close_matches(key, known, n=1)
            hints.append(f"{key!r}" + (f" (did you mean {close[0]!r}?)"
                                       if close else ""))
        raise ScenarioError(
            f"{what} has unknown key(s): {', '.join(hints)}; known keys: "
            f"{sorted(known)}")


def check_schema_version(what: str, data: Dict,
                         current: int = SCENARIO_SCHEMA_VERSION) -> int:
    """Validate a document's ``schema_version`` (forward-compatible).

    Older and current versions parse silently; a *newer* version parses
    with a warning (a newer writer may rely on fields this build does
    not understand).  Non-integer or non-positive versions are rejected.
    """
    version = data.get("schema_version", 1)
    if not isinstance(version, int) or isinstance(version, bool) \
            or version < 1:
        raise ScenarioError(
            f"{what}: schema_version must be a positive integer, "
            f"got {version!r}")
    if version > current:
        warnings.warn(
            f"{what} has schema_version {version}, newer than this "
            f"build's {current}; fields introduced after version "
            f"{current} may be ignored", stacklevel=3)
    return version


@dataclass(frozen=True)
class WorkloadSpec:
    """The scenario's model + data shape (one tiny transformer family).

    The model and every batch are derived deterministically from the
    scenario seed, so the chaos run, its no-fault reference, and any
    replay see byte-identical inputs.
    """

    dim: int = 32
    num_layers: int = 2
    vocab_size: int = 64
    seq_len: int = 16
    batch: int = 4
    num_heads: int = 2

    def __post_init__(self) -> None:
        for name in ("dim", "num_layers", "vocab_size", "seq_len",
                     "batch", "num_heads"):
            if int(getattr(self, name)) < 1:
                raise ScenarioError(
                    f"workload.{name} must be >= 1, "
                    f"got {getattr(self, name)}")

    def make_model(self, seed: int):
        from ..nn import SequenceClassifier, bert_config
        return SequenceClassifier(
            bert_config(vocab_size=self.vocab_size, dim=self.dim,
                        num_layers=self.num_layers,
                        num_heads=self.num_heads,
                        max_seq_len=self.seq_len),
            num_classes=2, seed=seed)

    def make_batches(self, seed: int, step: int, batch: int,
                     micro_batches: int) -> List[Tuple[np.ndarray,
                                                       np.ndarray]]:
        """Micro-batches for one global step, keyed on (seed, step)."""
        rng = np.random.default_rng([seed, step])
        return [(rng.integers(0, self.vocab_size,
                              size=(batch, self.seq_len)),
                 rng.integers(0, 2, size=batch))
                for _ in range(micro_batches)]

    def to_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict) -> "WorkloadSpec":
        known = [f.name for f in fields(cls)]
        _check_keys("workload", data, known)
        return cls(**{key: int(value) for key, value in data.items()})


#: Expectation keys, their value checkers, and a short description each
#: (used for validation errors and the docs table).
_EXPECT_KEYS = (
    "min_injected", "max_injected", "injected_include", "min_retries",
    "min_demotions", "max_demotions", "alerts_include", "no_new_alerts",
    "dumps_written", "loss_finite", "max_loss",
    "bit_identical_to_reference", "whatif_error",
)

#: Sub-keys of the ``whatif_error`` expectation (see
#: :mod:`repro.telemetry.critpath`): required ``channel``/``factor``
#: pick the scaling to validate, ``max_error`` the tolerated relative
#: projection error, and the rest the simulated configuration.
_WHATIF_KEYS = ("channel", "factor", "max_error", "model", "csds",
                "method", "gpu", "ratio")


@dataclass(frozen=True)
class Expectations:
    """Assertions evaluated at the end of a phase.

    Counter bounds (``min_injected``/``max_injected``/``min_retries``
    and ``injected_include``) apply to the *phase delta*; demotion
    bounds apply to the campaign-cumulative count (a demotion is
    permanent).  ``alerts_include`` names alert rules/incidents that
    must have fired during the phase; ``bit_identical_to_reference``
    compares the trained parameters against a no-fault reference run at
    the same point in the schedule.  ``whatif_error`` gates the
    critical-path projection engine: it projects a channel scaling over
    the DES dependency DAG, re-runs the DES with the scaling genuinely
    applied, and checks the relative projection error stays within
    ``max_error`` (both runs are deterministic, so the check is
    seed-stable and keeps the event log byte-identical).
    """

    min_injected: Optional[int] = None
    max_injected: Optional[int] = None
    injected_include: Tuple[str, ...] = ()
    min_retries: Optional[int] = None
    min_demotions: Optional[int] = None
    max_demotions: Optional[int] = None
    alerts_include: Tuple[str, ...] = ()
    no_new_alerts: bool = False
    dumps_written: Optional[bool] = None
    loss_finite: Optional[bool] = None
    max_loss: Optional[float] = None
    bit_identical_to_reference: Optional[bool] = None
    whatif_error: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "injected_include",
                           tuple(self.injected_include))
        object.__setattr__(self, "alerts_include",
                           tuple(self.alerts_include))

    @property
    def empty(self) -> bool:
        return self == Expectations()

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            default = f.default if f.default is not None else None
            if isinstance(value, tuple):
                if value:
                    out[f.name] = list(value)
            elif value is not None and value != default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict, where: str) -> "Expectations":
        _check_keys(f"{where}.expect", data, _EXPECT_KEYS)
        kwargs = dict(data)
        for key in ("injected_include", "alerts_include"):
            if key in kwargs:
                value = kwargs[key]
                if (not isinstance(value, (list, tuple))
                        or not all(isinstance(v, str) for v in value)):
                    raise ScenarioError(
                        f"{where}.expect.{key} must be a list of "
                        f"strings, got {value!r}")
                kwargs[key] = tuple(value)
        if kwargs.get("whatif_error") is not None:
            value = kwargs["whatif_error"]
            if not isinstance(value, dict):
                raise ScenarioError(
                    f"{where}.expect.whatif_error must be an object, "
                    f"got {value!r}")
            _check_keys(f"{where}.expect.whatif_error", value,
                        _WHATIF_KEYS)
            for required in ("channel", "factor"):
                if required not in value:
                    raise ScenarioError(
                        f"{where}.expect.whatif_error is missing "
                        f"required key {required!r}")
        return cls(**kwargs)


_PHASE_KEYS = ("name", "kind", "steps", "batch", "micro_batches",
               "fault_plan", "expect")


@dataclass(frozen=True)
class PhaseSpec:
    """One stage of a campaign: workload shape, fault splice, checks."""

    name: str
    kind: str = "workload"
    steps: int = 1
    #: Batch-size override for this phase (burst traffic); None keeps
    #: the scenario workload's batch.
    batch: Optional[int] = None
    #: Gradient-accumulation micro-batches per step (>1 models a
    #: traffic burst without changing update semantics).
    micro_batches: int = 1
    #: Fault splice: :data:`UNCHANGED` inherits the active plan, None
    #: splices faults out, a :class:`FaultPlan` splices one in.
    fault_plan: object = UNCHANGED
    expect: Expectations = field(default_factory=Expectations)

    def __post_init__(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise ScenarioError(
                f"phase {self.name!r}: unknown kind {self.kind!r}; "
                f"choose from {PHASE_KINDS}")
        if self.steps < 0:
            raise ScenarioError(
                f"phase {self.name!r}: steps must be >= 0")
        if self.batch is not None and self.batch < 1:
            raise ScenarioError(
                f"phase {self.name!r}: batch must be >= 1")
        if self.micro_batches < 1:
            raise ScenarioError(
                f"phase {self.name!r}: micro_batches must be >= 1")

    @property
    def splices(self) -> bool:
        return self.fault_plan is not UNCHANGED

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"name": self.name, "kind": self.kind,
                                  "steps": self.steps}
        if self.batch is not None:
            out["batch"] = self.batch
        if self.micro_batches != 1:
            out["micro_batches"] = self.micro_batches
        if self.splices:
            out["fault_plan"] = (None if self.fault_plan is None
                                 else self.fault_plan.to_dict())
        expect = self.expect.to_dict()
        if expect:
            out["expect"] = expect
        return out

    @classmethod
    def from_dict(cls, data: Dict, index: int) -> "PhaseSpec":
        where = f"phase[{index}]"
        _check_keys(where, data, _PHASE_KEYS)
        if "name" not in data:
            raise ScenarioError(f"{where} is missing required key 'name'")
        name = str(data["name"])
        fault_plan: object = UNCHANGED
        if "fault_plan" in data:
            raw = data["fault_plan"]
            if raw is None:
                fault_plan = None
            elif isinstance(raw, FaultPlan):
                fault_plan = raw
            else:
                fault_plan = FaultPlan.from_dict(raw)
        expect = Expectations.from_dict(data.get("expect", {}) or {},
                                        f"phase {name!r}")
        return cls(name=name, kind=str(data.get("kind", "workload")),
                   steps=int(data.get("steps", 1)),
                   batch=(int(data["batch"])
                          if data.get("batch") is not None else None),
                   micro_batches=int(data.get("micro_batches", 1)),
                   fault_plan=fault_plan, expect=expect)


_SCENARIO_KEYS = ("schema", "schema_version", "name", "description",
                  "seed", "engine", "config", "workload", "sweep",
                  "phases")


@dataclass(frozen=True)
class Scenario:
    """A named, seeded, replayable chaos/workload campaign."""

    name: str
    description: str = ""
    seed: int = 0
    engine: str = "smart"
    config: TrainingConfig = field(default_factory=TrainingConfig)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    #: One-axis config sweep: the whole phase list runs once per value.
    sweep: Dict[str, Tuple] = field(default_factory=dict)
    phases: Tuple[PhaseSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))
        if not self.name:
            raise ScenarioError("scenario needs a non-empty name")
        if not self.phases:
            raise ScenarioError(
                f"scenario {self.name!r} needs at least one phase")
        names = [phase.name for phase in self.phases]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ScenarioError(
                f"scenario {self.name!r} has duplicate phase name(s): "
                f"{sorted(duplicates)}")
        if len(self.sweep) > 1:
            raise ScenarioError(
                f"scenario {self.name!r}: sweep must cover exactly one "
                f"config axis, got {sorted(self.sweep)}")
        config_fields = {f.name for f in fields(TrainingConfig)}
        for axis, values in self.sweep.items():
            if axis not in config_fields:
                close = difflib.get_close_matches(axis, config_fields,
                                                  n=1)
                raise ScenarioError(
                    f"scenario {self.name!r}: sweep axis {axis!r} is "
                    f"not a TrainingConfig field"
                    + (f" (did you mean {close[0]!r}?)" if close else ""))
            if not values:
                raise ScenarioError(
                    f"scenario {self.name!r}: sweep over {axis!r} "
                    f"needs at least one value")
            object.__setattr__(
                self, "sweep", {axis: tuple(values)})

    @property
    def needs_reference(self) -> bool:
        """Does any phase assert bit-identity against a no-fault run?"""
        return any(phase.expect.bit_identical_to_reference
                   for phase in self.phases)

    def campaign_configs(self) -> List[Tuple[str, TrainingConfig]]:
        """(label, config) per campaign: one entry, or one per sweep
        value."""
        if not self.sweep:
            return [("default", self.config)]
        ((axis, values),) = self.sweep.items()
        return [(f"{axis}={value}", replace(self.config,
                                            **{axis: value}))
                for value in values]

    def with_seed(self, seed: int) -> "Scenario":
        """The same campaign re-seeded (the ``--chaos-seed`` override)."""
        return replace(self, seed=int(seed))

    def with_base_fault_plan(self, plan: Optional[FaultPlan]
                             ) -> "Scenario":
        """Replace the scenario-level (pre-splice) fault plan."""
        return replace(self, config=replace(self.config,
                                            fault_plan=plan))

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCENARIO_SCHEMA,
            "schema_version": SCENARIO_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "engine": self.engine,
            "config": self.config.to_dict(),
            "workload": self.workload.to_dict(),
            "sweep": {axis: list(values)
                      for axis, values in self.sweep.items()},
            "phases": [phase.to_dict() for phase in self.phases],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Scenario":
        _check_keys("scenario", data, _SCENARIO_KEYS)
        schema = data.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ScenarioError(
                f"not a scenario file: schema is {schema!r}, expected "
                f"{SCENARIO_SCHEMA!r}")
        check_schema_version(f"scenario {data.get('name', '?')!r}", data)
        if "name" not in data:
            raise ScenarioError("scenario is missing required key 'name'")
        raw_phases = data.get("phases")
        if not isinstance(raw_phases, list):
            raise ScenarioError(
                f"scenario {data['name']!r} needs a 'phases' list")
        config = data.get("config", {})
        if isinstance(config, dict):
            config = TrainingConfig.from_dict(config)
        workload = data.get("workload", {})
        if isinstance(workload, dict):
            workload = WorkloadSpec.from_dict(workload)
        sweep = data.get("sweep", {}) or {}
        if not isinstance(sweep, dict):
            raise ScenarioError(
                f"scenario {data['name']!r}: sweep must be an object "
                f"mapping one config field to a list of values")
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            seed=int(data.get("seed", 0)),
            engine=str(data.get("engine", "smart")),
            config=config, workload=workload,
            sweep={axis: tuple(values)
                   for axis, values in sweep.items()},
            phases=tuple(PhaseSpec.from_dict(raw, index)
                         for index, raw in enumerate(raw_phases)))

    @classmethod
    def from_json_file(cls, path: str) -> "Scenario":
        with open(path) as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ScenarioError(
                    f"scenario file {path!r} is not valid JSON: "
                    f"{exc}") from exc
        return cls.from_dict(document)

    def to_json_file(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def load_scenario(path: str) -> Scenario:
    """Load a campaign from a JSON file (the CLI entry point)."""
    return Scenario.from_json_file(path)
