"""Declarative chaos + workload campaigns (``python -m repro scenario``).

A :class:`Scenario` names a sequence of phases — setup, anomaly,
detection, recovery, free-form workload — declared in JSON; the
:class:`ScenarioRunner` executes it deterministically against any
engine mode and parallel backend, evaluates per-phase expectations
(fault counters, alerts, flight dumps, bit-identity against a no-fault
reference), and emits a seeded ``smart-infinity/scenario/v1`` event log
(same seed, byte-identical log).  Bundled campaigns live under
``examples/scenarios/``.
"""

from .spec import (Expectations, PHASE_KINDS, PhaseSpec, SCENARIO_SCHEMA,
                   SCENARIO_SCHEMA_VERSION, Scenario, WorkloadSpec,
                   load_scenario)
from .runner import (CampaignReport, CheckResult, EVENT_SCHEMA,
                     PhaseReport, SCENARIO_SLO_RULES, ScenarioReport,
                     ScenarioRunner)

__all__ = [
    "CampaignReport",
    "CheckResult",
    "EVENT_SCHEMA",
    "Expectations",
    "PHASE_KINDS",
    "PhaseReport",
    "PhaseSpec",
    "SCENARIO_SCHEMA",
    "SCENARIO_SCHEMA_VERSION",
    "SCENARIO_SLO_RULES",
    "Scenario",
    "ScenarioReport",
    "ScenarioRunner",
    "WorkloadSpec",
    "load_scenario",
]
