"""Table IV — fine-tuning accuracy and speedup per method.

The paper fine-tunes BERT-345M / GPT-2 on four GLUE tasks and shows:

* SmartUpdate (SU+O) is algorithmically identical to the baseline, so its
  accuracy is *exactly* the baseline's;
* SmartComp's lossy Top-K compression (10% down to 1%) costs little or no
  accuracy while adding speedup.

Without GLUE or pretrained checkpoints we train tiny transformers on
synthetic classification tasks (see `repro.nn.data`) through the *real*
functional engines — storage offload, near-storage update, compression and
all — and report dev accuracy per method, plus the speedup column from the
performance model at 6 SSDs for the paper's three checkpoint sizes.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..hw.topology import default_system
from ..nn import functional as F
from ..nn.data import ClassificationDataset, make_glue_suite
from ..nn.models import get_model
from ..nn.transformer import SequenceClassifier, bert_config
from ..perf.scenarios import simulate_iteration
from ..perf.workload import make_workload
from ..api import create_engine
from ..runtime.engine import TrainingConfig
from .report import render_table

FINETUNE_MODELS = ("bert-0.34b", "gpt2-0.77b", "gpt2-1.6b")
COMPRESSION_RATIOS = (0.10, 0.05, 0.02, 0.01)
METHOD_ORDER = ("baseline", "su_o", "comp_10", "comp_5", "comp_2", "comp_1")

_METHOD_RATIO = {
    "comp_10": 0.10, "comp_5": 0.05, "comp_2": 0.02, "comp_1": 0.01,
}


@dataclass(frozen=True)
class Table4Result:
    """Dev accuracy per (task, method) + modelled speedups per checkpoint."""

    accuracies: Dict[Tuple[str, str], float]
    speedups: Dict[Tuple[str, str], float]
    tasks: Tuple[str, ...]

    def su_matches_baseline(self) -> bool:
        """SU+O must reproduce the baseline accuracy exactly."""
        return all(
            self.accuracies[(task, "su_o")]
            == self.accuracies[(task, "baseline")]
            for task in self.tasks)

    def compression_accuracy_drop(self, method: str) -> float:
        """Mean accuracy drop of a compressed method vs baseline."""
        drops = [self.accuracies[(task, "baseline")]
                 - self.accuracies[(task, method)]
                 for task in self.tasks]
        return float(np.mean(drops))

    def render(self) -> str:
        methods = [m for m in METHOD_ORDER
                   if any((task, m) in self.accuracies
                          for task in self.tasks)]
        rows = []
        for method in methods:
            rows.append((method,
                         *(f"{self.accuracies[(task, method)]:.2%}"
                           for task in self.tasks)))
        part_a = render_table(("method", *self.tasks), rows,
                              title="Table IV: dev accuracy "
                                    "(functional engines, synthetic GLUE)")
        rows_b = []
        for (model, method), speedup in sorted(self.speedups.items()):
            rows_b.append((model, method, f"{speedup:.2f}x"))
        part_b = render_table(("checkpoint", "method", "speedup @6 SSDs"),
                              rows_b,
                              title="Table IV: modelled speedup column")
        return part_a + "\n\n" + part_b


def _evaluate(model: SequenceClassifier,
              dataset: ClassificationDataset) -> float:
    model.eval()
    logits = model(dataset.dev_tokens)
    accuracy = F.accuracy(logits, dataset.dev_labels)
    model.train()
    return accuracy


def _finetune(dataset: ClassificationDataset, method: str, epochs: int,
              batch_size: int, seed: int) -> float:
    """Train one tiny classifier through the matching functional engine."""
    config_kwargs = dict(optimizer="adam", optimizer_kwargs={"lr": 5e-3},
                         subgroup_elements=8192)
    ratio: Optional[float] = _METHOD_RATIO.get(method)
    model = SequenceClassifier(
        bert_config(vocab_size=64, dim=48, num_layers=2, num_heads=4,
                    max_seq_len=dataset.train_tokens.shape[1]),
        num_classes=dataset.num_classes, seed=seed)

    def loss_fn(m, tokens, labels):
        return m.loss(tokens, labels)

    with tempfile.TemporaryDirectory() as workdir:
        if method == "baseline":
            engine = create_engine(
                "baseline", model, loss_fn, workdir,
                config=TrainingConfig(**config_kwargs, raid_members=2))
        else:
            engine = create_engine(
                "smart", model, loss_fn, workdir,
                config=TrainingConfig(**config_kwargs, num_csds=3,
                                      compression_ratio=ratio))
        for epoch in range(epochs):
            rng = np.random.default_rng(1000 + epoch)
            for tokens, labels in dataset.batches(batch_size, rng):
                engine.train_step(tokens, labels)
        accuracy = _evaluate(model, dataset)
        engine.close()
    return accuracy


def run(tasks=("mnli", "qqp", "sst2", "qnli"), epochs: int = 3,
        batch_size: int = 8, seed: int = 0,
        methods=METHOD_ORDER) -> Table4Result:
    """Regenerate Table IV: functional accuracy + modelled speedups."""
    suite = make_glue_suite(seed=seed)
    accuracies: Dict[Tuple[str, str], float] = {}
    for task in tasks:
        dataset = suite[task]
        for method in methods:
            accuracies[(task, method)] = _finetune(
                dataset, method, epochs=epochs, batch_size=batch_size,
                seed=seed)

    speedups: Dict[Tuple[str, str], float] = {}
    system = default_system(num_csds=6)
    for model_name in FINETUNE_MODELS:
        workload = make_workload(get_model(model_name), batch_size=4)
        base = simulate_iteration(system, workload, "baseline").total
        speedups[(model_name, "su_o")] = base / simulate_iteration(
            system, workload, "su_o").total
        for ratio in COMPRESSION_RATIOS:
            smart = simulate_iteration(system, workload, "su_o_c",
                                       compression_ratio=ratio).total
            speedups[(model_name, f"comp_{int(ratio * 100)}")] = (
                base / smart)
    return Table4Result(accuracies=accuracies, speedups=speedups,
                        tasks=tuple(tasks))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
