"""Fig. 13 — applying Smart-Infinity to BLOOM and ViT.

The speedup trend carries over to other transformer families (the paper
reports 1.32x-1.85x) because the bottleneck is storage bandwidth, which
depends only on parameter count.  The functional side also trains tiny
BLOOM (ALiBi) and ViT configurations through the Smart-Infinity engine to
show the runtime really is architecture-agnostic.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..hw.topology import default_system
from ..nn.data import make_classification_dataset, make_lm_dataset
from ..nn.models import get_model
from ..nn.transformer import (LanguageModel, SequenceClassifier,
                              bloom_config, vit_config)
from ..perf.scenarios import simulate_iteration
from ..perf.workload import make_workload
from ..api import create_engine
from ..runtime.engine import TrainingConfig
from .report import render_table

MODELS = ("bloom-7.1b", "vit-1.9b")


@dataclass(frozen=True)
class Fig13Result:
    """Modelled speedups plus functional-training loss drops."""

    speedups: Dict[str, Dict[int, float]]
    functional_loss: Dict[str, Dict[str, float]]

    def all_in_paper_band(self, low: float = 1.2, high: float = 2.2) -> bool:
        return all(low <= value <= high
                   for cell in self.speedups.values()
                   for value in cell.values())

    def render(self) -> str:
        counts = sorted(next(iter(self.speedups.values())))
        rows = [(name, *(f"{self.speedups[name][n]:.2f}x" for n in counts))
                for name in self.speedups]
        part_a = render_table(
            ("model", *(f"speedup @{n} SSDs" for n in counts)), rows,
            title="Fig 13: Smart-Infinity on BLOOM and ViT")
        rows_b = [(name, f"{losses['first']:.3f}", f"{losses['last']:.3f}")
                  for name, losses in self.functional_loss.items()]
        part_b = render_table(
            ("tiny model", "first loss", "last loss"), rows_b,
            title="Functional training through the Smart-Infinity engine")
        return part_a + "\n\n" + part_b


def _train_tiny_bloom() -> Dict[str, float]:
    model = LanguageModel(bloom_config(vocab_size=32, dim=32, num_layers=2,
                                       num_heads=2, max_seq_len=16), seed=0)
    data = make_lm_dataset(num_sequences=16, seq_len=17, vocab_size=32,
                           seed=2)

    def loss_fn(m, tokens):
        return m.loss(tokens)

    with tempfile.TemporaryDirectory() as workdir:
        engine = create_engine(
            "smart", model, loss_fn, workdir,
            config=TrainingConfig(optimizer="adam",
                                  optimizer_kwargs={"lr": 1e-2},
                                  subgroup_elements=4096, num_csds=2))
        losses = [engine.train_step(data[:4]).loss for _ in range(12)]
        engine.close()
    return {"first": losses[0], "last": losses[-1]}


def _train_tiny_vit() -> Dict[str, float]:
    config = vit_config(num_patches=16, num_patch_ids=32, dim=32,
                        num_layers=2, num_heads=2)
    model = SequenceClassifier(config, num_classes=3, seed=0)
    data = make_classification_dataset(num_train=32, seq_len=16,
                                       vocab_size=32, seed=4)

    def loss_fn(m, tokens, labels):
        return m.loss(tokens, labels)

    with tempfile.TemporaryDirectory() as workdir:
        engine = create_engine(
            "smart", model, loss_fn, workdir,
            config=TrainingConfig(optimizer="adam",
                                  optimizer_kwargs={"lr": 1e-2},
                                  subgroup_elements=4096, num_csds=2))
        rng = np.random.default_rng(0)
        losses = []
        for _epoch in range(4):
            for tokens, labels in data.batches(8, rng):
                losses.append(engine.train_step(tokens, labels).loss)
        engine.close()
    return {"first": losses[0], "last": losses[-1]}


def run(ssd_counts=(6, 10), batch_size: int = 4,
        train_functional: bool = True) -> Fig13Result:
    """Regenerate Fig. 13 plus the functional cross-family check."""
    speedups: Dict[str, Dict[int, float]] = {}
    for model_name in MODELS:
        workload = make_workload(get_model(model_name),
                                 batch_size=batch_size)
        speedups[model_name] = {}
        for count in ssd_counts:
            system = default_system(num_csds=count)
            base = simulate_iteration(system, workload, "baseline").total
            smart = simulate_iteration(system, workload, "su_o_c").total
            speedups[model_name][count] = base / smart
    functional = {}
    if train_functional:
        functional["bloom-tiny"] = _train_tiny_bloom()
        functional["vit-tiny"] = _train_tiny_vit()
    return Fig13Result(speedups=speedups, functional_loss=functional)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
