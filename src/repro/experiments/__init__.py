"""Per-experiment reproduction modules (one per paper table/figure)."""

from . import (ext_bottlenecks, ext_csd_sensitivity, ext_modelcomp, fig3,
               fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16,
               fig17, table1, table3, table4)
from .report import fmt_bytes, render_table

#: Extension studies beyond the paper's evaluation section.
EXTENSION_EXPERIMENTS = {
    "ext_bottlenecks": ext_bottlenecks,
    "ext_csd_sensitivity": ext_csd_sensitivity,
    "ext_modelcomp": ext_modelcomp,
}

#: Experiment registry: id -> module (each has run() and Result.render()).
ALL_EXPERIMENTS = {
    "fig3": fig3,
    "table1": table1,
    "table3": table3,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "table4": table4,
}

__all__ = (["ALL_EXPERIMENTS", "EXTENSION_EXPERIMENTS", "fmt_bytes",
            "render_table"] + sorted(ALL_EXPERIMENTS)
           + sorted(EXTENSION_EXPERIMENTS))
