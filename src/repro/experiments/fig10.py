"""Fig. 10 — scalability to larger models (16.6B to 33.0B).

Smart-Infinity's speedup over the baseline stays stable as the model grows
because every traffic term is linear in the parameter count; the paper
quotes 1.37x (6 SSDs) and 1.88x (10 SSDs) even at GPT-2 33.0B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..hw.topology import default_system
from ..nn.models import get_model
from ..perf.scenarios import simulate_iteration
from ..perf.workload import make_workload
from .report import render_table

LARGE_MODELS = ("gpt2-16.6b", "gpt2-24.6b", "gpt2-33.0b")
SSD_COUNTS = (6, 10)


@dataclass(frozen=True)
class Fig10Result:
    """speedups[(model, num_ssds)] = Smart-Infinity speedup over BASE."""

    speedups: Dict[Tuple[str, int], float]
    totals: Dict[Tuple[str, int], Tuple[float, float]]

    def spread(self, num_ssds: int) -> float:
        """Max - min speedup across model sizes (stability check)."""
        values = [s for (_m, n), s in self.speedups.items()
                  if n == num_ssds]
        return max(values) - min(values)

    def render(self) -> str:
        rows = []
        for (model, num_ssds), speedup in sorted(self.speedups.items()):
            base_total, smart_total = self.totals[(model, num_ssds)]
            rows.append((model, num_ssds, f"{base_total:.1f}s",
                         f"{smart_total:.1f}s", f"{speedup:.2f}x"))
        return render_table(
            ("model", "#SSD", "BASE iter", "Smart-Infinity iter",
             "speedup"),
            rows, title="Fig 10: scalability to larger models")


def run(models=LARGE_MODELS, ssd_counts=SSD_COUNTS,
        batch_size: int = 4) -> Fig10Result:
    """Regenerate Fig. 10 (full Smart-Infinity = SU+O+C vs BASE)."""
    speedups = {}
    totals = {}
    for model_name in models:
        workload = make_workload(get_model(model_name),
                                 batch_size=batch_size)
        for num_ssds in ssd_counts:
            system = default_system(num_csds=num_ssds)
            base = simulate_iteration(system, workload, "baseline")
            smart = simulate_iteration(system, workload, "su_o_c")
            speedups[(model_name, num_ssds)] = base.total / smart.total
            totals[(model_name, num_ssds)] = (base.total, smart.total)
    return Fig10Result(speedups=speedups, totals=totals)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
