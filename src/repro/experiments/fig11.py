"""Fig. 11 — scaling with the number of CSDs and GPU grade.

(a) Throughput (normalized to the 1-SSD baseline) as devices scale from 1
to 10, for the A5000 and A100 systems: the baseline saturates once RAID0
reads hit the shared interconnect (~4 SSDs) while Smart-Infinity keeps
scaling almost linearly with its aggregate internal bandwidth.

(b) Phase breakdown with ten devices on both GPUs: the faster GPU shrinks
FW/BW, making the transfer phases relatively larger, so Smart-Infinity's
speedup is *higher* on the A100 — up to the paper's headline 2.11x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..hw.gpu import GPUSpec, a100_40g, a5000
from ..hw.topology import default_system
from ..nn.models import get_model
from ..perf.scenarios import PhaseBreakdown, simulate_iteration
from ..perf.workload import make_workload
from .report import render_table

MODEL = "gpt2-4.0b"


@dataclass(frozen=True)
class Fig11Result:
    """Normalized scaling series per GPU plus 10-SSD breakdowns."""

    #: series[gpu_name][method] = list over 1..max_ssds of normalized
    #: throughput (1-SSD baseline == 1.0).
    series: Dict[str, Dict[str, List[float]]]
    #: breakdowns[gpu_name][method] at the maximum device count.
    breakdowns: Dict[str, Dict[str, PhaseBreakdown]]

    def speedup_at(self, gpu_name: str, num_ssds: int) -> float:
        cell = self.series[gpu_name]
        return (cell["smart"][num_ssds - 1]
                / cell["baseline"][num_ssds - 1])

    def baseline_saturates(self, gpu_name: str,
                           tolerance: float = 0.03) -> bool:
        """Baseline gains < tolerance from 6 to 10 devices."""
        curve = self.series[gpu_name]["baseline"]
        return curve[-1] <= curve[5] * (1 + tolerance)

    def smart_scales(self, gpu_name: str) -> bool:
        """Smart-Infinity at 10 devices is >= 1.8x its 4-device point."""
        curve = self.series[gpu_name]["smart"]
        return curve[9] >= 1.8 * curve[3]

    def render(self) -> str:
        parts = []
        for gpu_name, cell in self.series.items():
            rows = [(n + 1, f"{cell['baseline'][n]:.2f}",
                     f"{cell['smart'][n]:.2f}",
                     f"{cell['smart'][n] / cell['baseline'][n]:.2f}x")
                    for n in range(len(cell["baseline"]))]
            parts.append(render_table(
                ("#SSDs", "BASE", "Smart-Infinity", "speedup"), rows,
                title=f"Fig 11(a): normalized throughput, {gpu_name}"))
        rows_b = []
        for gpu_name, cell in self.breakdowns.items():
            for method, breakdown in cell.items():
                rows_b.append((gpu_name, method,
                               f"{breakdown.forward:.2f}",
                               f"{breakdown.backward_grad:.2f}",
                               f"{breakdown.update:.2f}",
                               f"{breakdown.total:.2f}"))
        parts.append(render_table(
            ("GPU", "method", "FW", "BW+Grad", "Update", "total"),
            rows_b, title="Fig 11(b): breakdown with 10 SSDs"))
        return "\n\n".join(parts)


def run(max_ssds: int = 10, batch_size: int = 4,
        gpus: Tuple[GPUSpec, ...] = None) -> Fig11Result:
    """Regenerate both panels of Fig. 11."""
    gpus = gpus or (a5000(), a100_40g())
    workload = make_workload(get_model(MODEL), batch_size=batch_size)
    series: Dict[str, Dict[str, List[float]]] = {}
    breakdowns: Dict[str, Dict[str, PhaseBreakdown]] = {}
    for gpu in gpus:
        base_times = []
        smart_times = []
        for count in range(1, max_ssds + 1):
            system = default_system(num_csds=count, gpu=gpu)
            base_times.append(
                simulate_iteration(system, workload, "baseline").total)
            smart_times.append(
                simulate_iteration(system, workload, "su_o_c").total)
        reference = base_times[0]
        series[gpu.name] = {
            "baseline": [reference / t for t in base_times],
            "smart": [reference / t for t in smart_times],
        }
        system = default_system(num_csds=max_ssds, gpu=gpu)
        breakdowns[gpu.name] = {
            "baseline": simulate_iteration(system, workload, "baseline"),
            "smart": simulate_iteration(system, workload, "su_o_c"),
        }
    return Fig11Result(series=series, breakdowns=breakdowns)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
