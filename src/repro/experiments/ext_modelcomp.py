"""Extension experiment — model compression on Smart-Infinity (§VIII-B).

The paper's discussion predicts that using Smart-Infinity for model
compression (quantization/pruning fine-tuning) brings *further* speedup,
because the CSD can upload the compressed model, shrinking the remaining
upstream bottleneck.  This experiment implements that future-work item:

* **functional** — fine-tune through the engine with CSD-side int8
  quantization of the upstream masters (STE on the host) and with a 50%
  magnitude-pruning mask; measure upstream traffic and dev accuracy;
* **modelled** — the ``su_o_c_q`` DES method vs plain ``su_o_c``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..hw.topology import default_system
from ..nn import functional as F
from ..nn.data import make_classification_dataset
from ..nn.models import get_model
from ..nn.transformer import SequenceClassifier, bert_config
from ..perf.scenarios import simulate_iteration
from ..perf.workload import make_workload
from ..api import create_engine
from ..runtime.engine import TrainingConfig
from .report import render_table


@dataclass(frozen=True)
class ModelCompResult:
    """Functional accuracy/traffic plus modelled speedups."""

    accuracies: Dict[str, float]
    upstream_bytes: Dict[str, int]
    modelled_speedup: Dict[str, float]
    pruned_zero_fraction: float

    def quantization_cuts_upstream_4x(self) -> bool:
        return self.upstream_bytes["fp32"] > 3.5 * self.upstream_bytes[
            "int8"]

    def render(self) -> str:
        rows = [
            (variant, f"{self.accuracies[variant]:.2%}",
             f"{self.upstream_bytes[variant]:,} B"
             if variant in self.upstream_bytes else "(as fp32)")
            for variant in self.accuracies
        ]
        part_a = render_table(
            ("variant", "dev accuracy", "upstream/iter"), rows,
            title="§VIII-B functional: fine-tuning with compressed "
                  "upstream")
        rows_b = [(m, f"{v:.2f}x") for m, v in
                  self.modelled_speedup.items()]
        part_b = render_table(("method", "speedup @10 CSDs"), rows_b,
                              title="§VIII-B modelled: quantized upstream")
        return part_a + "\n\n" + part_b


def _loss_fn(model, tokens, labels):
    return model.loss(tokens, labels)


def _finetune(dataset, config: TrainingConfig, epochs: int = 3):
    model = SequenceClassifier(
        bert_config(vocab_size=64, dim=48, num_layers=2, num_heads=4,
                    max_seq_len=dataset.train_tokens.shape[1]),
        num_classes=dataset.num_classes, seed=4)
    with tempfile.TemporaryDirectory() as workdir:
        engine = create_engine("smart", model, _loss_fn, workdir,
                               config=config)
        upstream = 0
        for epoch in range(epochs):
            rng = np.random.default_rng(50 + epoch)
            for tokens, labels in dataset.batches(8, rng):
                result = engine.train_step(tokens, labels)
                upstream = result.traffic.host_reads
        model.eval()
        accuracy = F.accuracy(model(dataset.dev_tokens),
                              dataset.dev_labels)
        working = engine.space.gather_params()
        zero_fraction = float((working == 0).mean())
        engine.close()
    return accuracy, upstream, zero_fraction


def run(epochs: int = 5) -> ModelCompResult:
    """Run the §VIII-B extension study."""
    dataset = make_classification_dataset(num_train=192, num_dev=96,
                                          seq_len=32, vocab_size=64,
                                          noise=0.03, seed=9)
    base_kwargs = dict(optimizer="adam", optimizer_kwargs={"lr": 5e-3},
                       subgroup_elements=8192, compression_ratio=0.05,
                       num_csds=2)

    accuracies: Dict[str, float] = {}
    upstream: Dict[str, int] = {}

    acc, up, _zeros = _finetune(dataset, TrainingConfig(**base_kwargs),
                                epochs=epochs)
    accuracies["fp32"], upstream["fp32"] = acc, up

    acc, up, _zeros = _finetune(
        dataset, TrainingConfig(**base_kwargs, quantized_upstream=True,
                                quantization_group=1024),
        epochs=epochs)
    accuracies["int8"], upstream["int8"] = acc, up

    acc, _up, zeros = _finetune(
        dataset, TrainingConfig(**base_kwargs, pruning_sparsity=0.5),
        epochs=epochs)
    accuracies["pruned-50%"] = acc

    workload = make_workload(get_model("gpt2-8.4b"))
    system = default_system(num_csds=10)
    base = simulate_iteration(system, workload, "baseline").total
    modelled = {
        "su_o_c": base / simulate_iteration(system, workload,
                                            "su_o_c").total,
        "su_o_c_q": base / simulate_iteration(system, workload,
                                              "su_o_c_q").total,
    }
    return ModelCompResult(accuracies=accuracies, upstream_bytes=upstream,
                           modelled_speedup=modelled,
                           pruned_zero_fraction=zeros)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
