"""Fig. 3 — motivation: (a) baseline time breakdown, (b) RAID0 saturation.

(a) With a single NVMe SSD, the update phase (including optimizer-state
upload/offload) consumes the overwhelming majority of training time across
model sizes — the paper reports over 80% and "more than 88% of total
training time is consumed transferring data from/to the storage".

(b) Throwing more SSDs at the problem via software RAID0 saturates once
the aggregate member bandwidth reaches the shared host interconnect
(around four SSDs) — the motivation for going near-storage at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..hw.topology import default_system
from ..nn.models import get_model
from ..perf.scenarios import PhaseBreakdown, simulate_iteration
from ..perf.workload import make_workload
from .report import render_table

MOTIVATION_MODELS = ("gpt2-1.16b", "gpt2-4.0b", "gpt2-8.4b")


@dataclass(frozen=True)
class Fig3Result:
    """Breakdown per model (a) and RAID0 speedup series (b)."""

    breakdowns: Dict[str, PhaseBreakdown]
    raid_speedups: List[float]

    def update_fraction(self, model_name: str) -> float:
        return self.breakdowns[model_name].fractions()["update"]

    def saturation_ssd_count(self, tolerance: float = 0.02) -> int:
        """First SSD count whose speedup is within ``tolerance`` of the
        10-SSD plateau."""
        plateau = self.raid_speedups[-1]
        for index, speedup in enumerate(self.raid_speedups):
            if speedup >= plateau * (1.0 - tolerance):
                return index + 1
        return len(self.raid_speedups)

    def render(self) -> str:
        rows_a = []
        for name, breakdown in self.breakdowns.items():
            frac = breakdown.fractions()
            rows_a.append((name, f"{breakdown.total:.2f}s",
                           f"{frac['forward']:.1%}",
                           f"{frac['backward_grad']:.1%}",
                           f"{frac['update']:.1%}"))
        part_a = render_table(
            ("model", "iter time", "FW", "BW+Grad", "Update+Opt"),
            rows_a, title="Fig 3(a): baseline breakdown, 1 SSD")
        rows_b = [(n + 1, f"{speedup:.2f}x")
                  for n, speedup in enumerate(self.raid_speedups)]
        part_b = render_table(("#SSDs (RAID0)", "speedup"), rows_b,
                              title="Fig 3(b): RAID0 scaling of baseline")
        return part_a + "\n\n" + part_b


def run(max_ssds: int = 10, batch_size: int = 4) -> Fig3Result:
    """Regenerate both panels of Fig. 3."""
    breakdowns = {}
    for name in MOTIVATION_MODELS:
        workload = make_workload(get_model(name), batch_size=batch_size)
        breakdowns[name] = simulate_iteration(
            default_system(num_csds=1), workload, "baseline")

    workload = make_workload(get_model("gpt2-4.0b"), batch_size=batch_size)
    times = [
        simulate_iteration(default_system(num_csds=n), workload,
                           "baseline").total
        for n in range(1, max_ssds + 1)
    ]
    speedups = [times[0] / t for t in times]
    return Fig3Result(breakdowns=breakdowns, raid_speedups=speedups)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
