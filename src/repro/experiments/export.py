"""Machine-readable export of experiment results.

Downstream users (plotting scripts, regression dashboards) want the
regenerated figure data as JSON, not rendered text.  ``export_result``
converts any experiment's dataclass result into plain JSON types
(dataclasses -> dicts, numpy scalars/arrays -> Python numbers/lists,
tuple keys -> joined strings) and ``export_all`` runs a set of
experiments into one directory.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, Iterable, Optional

import numpy as np

from . import ALL_EXPERIMENTS


def to_jsonable(value: Any) -> Any:
    """Recursively convert experiment results to JSON-compatible types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: to_jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {_key(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Fall back to the repr for exotic leaves rather than failing.
    return repr(value)


def _key(key: Any) -> str:
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def export_result(result: Any, path: str) -> None:
    """Write one experiment result as JSON."""
    payload = to_jsonable(result)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def export_scenario_trace(path: str, system, workload, method: str,
                          compression_ratio: float = 0.02) -> str:
    """Run one DES scenario and export its Chrome trace-event JSON.

    The written file opens in Perfetto / chrome://tracing: one ``sim-time``
    process with a lane per fabric channel plus a phase-window lane.
    Returns ``path``.
    """
    from ..perf.scenarios import trace_scenario
    from ..telemetry import write_chrome_trace
    trace = trace_scenario(system, workload, method,
                           compression_ratio=compression_ratio)
    return write_chrome_trace(
        path,
        channels=trace.fabric.all_channels(),
        phases=trace.phase_windows,
        metadata={"method": method,
                  "iteration_seconds": trace.breakdown.total})


def export_all(output_dir: str,
               experiment_ids: Optional[Iterable[str]] = None,
               ) -> Dict[str, str]:
    """Run experiments and export each result; returns id -> file path.

    By default runs every paper experiment; pass ``experiment_ids`` to
    restrict (e.g. skip the slow Table IV fine-tuning run).
    """
    os.makedirs(output_dir, exist_ok=True)
    ids = list(experiment_ids) if experiment_ids is not None else sorted(
        ALL_EXPERIMENTS)
    paths = {}
    for experiment_id in ids:
        module = ALL_EXPERIMENTS[experiment_id]
        result = module.run()
        path = os.path.join(output_dir, f"{experiment_id}.json")
        export_result(result, path)
        paths[experiment_id] = path
    return paths
