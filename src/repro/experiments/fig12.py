"""Fig. 12 — applying SmartUpdate to other optimizers.

SGD-with-momentum and AdaGrad keep one moment instead of Adam's two, so
their offload volume is 3/4 of Adam's (4M vs 6M of optimizer state) — less
traffic for SmartUpdate to eliminate, hence slightly lower speedup.  The
functional kernels for all three pass the same bitwise sanity check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..csd.hls import sanity_check_updater
from ..hw.topology import default_system
from ..nn.models import get_model
from ..optim import make_optimizer
from ..perf.scenarios import simulate_iteration
from ..perf.workload import make_workload
from .report import render_table

MODEL = "gpt2-4.0b"
OPTIMIZERS = ("adam", "sgd", "adagrad")


@dataclass(frozen=True)
class Fig12Result:
    """Speedup of full Smart-Infinity per optimizer (and states/param)."""

    speedups: Dict[str, Dict[int, float]]
    states_per_param: Dict[str, int]

    def adam_wins(self) -> bool:
        """Adam's extra state volume means the largest speedup (paper)."""
        return all(
            self.speedups["adam"][n] >= self.speedups[opt][n]
            for opt in ("sgd", "adagrad") for n in self.speedups["adam"])

    def render(self) -> str:
        counts = sorted(next(iter(self.speedups.values())))
        rows = [
            (opt, self.states_per_param[opt],
             *(f"{self.speedups[opt][n]:.2f}x" for n in counts))
            for opt in self.speedups
        ]
        return render_table(
            ("optimizer", "fp32 words/param",
             *(f"speedup @{n} SSDs" for n in counts)),
            rows, title="Fig 12: SmartUpdate with other optimizers")


def run(ssd_counts=(6, 10), batch_size: int = 4,
        verify_kernels: bool = True) -> Fig12Result:
    """Regenerate Fig. 12; optionally bit-verify each updater kernel."""
    speedups: Dict[str, Dict[int, float]] = {}
    states: Dict[str, int] = {}
    spec = get_model(MODEL)
    for optimizer_name in OPTIMIZERS:
        if verify_kernels:
            sanity_check_updater(make_optimizer(optimizer_name),
                                 num_elements=1024, num_steps=2)
        workload = make_workload(spec, batch_size=batch_size,
                                 optimizer=optimizer_name)
        states[optimizer_name] = workload.states_per_param
        speedups[optimizer_name] = {}
        for count in ssd_counts:
            system = default_system(num_csds=count)
            base = simulate_iteration(system, workload, "baseline").total
            smart = simulate_iteration(system, workload, "su_o_c").total
            speedups[optimizer_name][count] = base / smart
    return Fig12Result(speedups=speedups, states_per_param=states)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
