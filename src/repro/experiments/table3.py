"""Table III — FPGA resource utilization of the composed designs.

The HLS resource estimator composes the Adam updater (and the Top-K
decompressor on top) from component costs and reports utilization on the
SmartSSD's KU15P.  The paper's numbers:

===============  ======  ======  ======  ======
module           LUT     BRAM    URAM    DSP
===============  ======  ======  ======  ======
Adam             33.66%  27.13%  34.38%  11.03%
Adam w/ Top-K    34.12%  27.13%  35.94%  11.03%
===============  ======  ======  ======  ======
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..csd.hls import updater_design
from ..hw.fpga import ku15p
from .report import render_table

#: The published utilization percentages.
PAPER_UTILIZATION = {
    "adam": {"LUT": 33.66, "BRAM": 27.13, "URAM": 34.38, "DSP": 11.03},
    "adam+topk": {"LUT": 34.12, "BRAM": 27.13, "URAM": 35.94, "DSP": 11.03},
}


@dataclass(frozen=True)
class Table3Result:
    """Estimated utilization per design vs the published numbers."""

    estimated: Dict[str, Dict[str, float]]

    def max_abs_error(self) -> float:
        """Largest |estimated - paper| percentage point across all cells."""
        worst = 0.0
        for design, cells in PAPER_UTILIZATION.items():
            for resource, paper_value in cells.items():
                worst = max(worst, abs(
                    self.estimated[design][resource] - paper_value))
        return worst

    def render(self) -> str:
        rows = []
        for design, cells in self.estimated.items():
            rows.append((design,
                         *(f"{cells[r]:.2f}% (paper {PAPER_UTILIZATION[design][r]:.2f}%)"
                           for r in ("LUT", "BRAM", "URAM", "DSP"))))
        return render_table(("module", "LUT", "BRAM", "URAM", "DSP"), rows,
                            title="Table III: KU15P resource utilization")


def run() -> Table3Result:
    """Regenerate Table III from the component-cost estimator."""
    fpga = ku15p()
    return Table3Result(estimated={
        "adam": updater_design("adam").utilization(fpga),
        "adam+topk": updater_design(
            "adam", with_decompressor=True).utilization(fpga),
    })


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
