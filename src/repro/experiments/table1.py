"""Table I — system-interconnect traffic per method.

Two reproductions in one:

* **analytic** — the closed forms (6M/2M etc.) for a paper-scale model;
* **measured** — a tiny transformer trained for one step through each
  *functional* engine, with every byte crossing the host path metered.
  The measured numbers must equal the closed forms exactly.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Dict

from ..api import create_engine
from ..nn.data import make_classification_dataset
from ..nn.models import get_model
from ..nn.transformer import SequenceClassifier, bert_config
from ..runtime.engine import TrainingConfig
from ..runtime.partition import distribute_shards
from ..runtime.stats import expected_traffic
from .report import render_table

METHOD_LABELS = {
    "baseline": "ZeRO-Inf",
    "smartupdate": "SmartUpdate",
    "smartcomp": "SmartComp (2%)",
}


@dataclass(frozen=True)
class Table1Result:
    """Analytic and measured per-iteration host traffic (bytes)."""

    model_name: str
    num_params_analytic: int
    analytic: Dict[str, Dict[str, int]]
    num_params_measured: int
    measured: Dict[str, Dict[str, int]]

    def matches(self) -> bool:
        """Measured == closed-form for every method."""
        for method, expected in self.measured.items():
            reference = expected_traffic(
                self.num_params_measured, method,
                shard_sizes=self._shard_sizes() if method == "smartcomp"
                else None)
            if expected != reference:
                return False
        return True

    def _shard_sizes(self):
        return [shard.count for shard in
                distribute_shards(self.num_params_measured, 3)]

    def render(self) -> str:
        m_bytes = 2 * self.num_params_analytic
        rows = []
        for method, traffic in self.analytic.items():
            rows.append((METHOD_LABELS[method],
                         f"{traffic['host_reads'] / m_bytes:.2f}M",
                         f"{traffic['host_writes'] / m_bytes:.2f}M"))
        part_a = render_table(
            ("method", "SSD read", "SSD write"), rows,
            title=(f"Table I (analytic, {self.model_name}, "
                   "M = fp16 model size)"))
        rows_m = [
            (METHOD_LABELS[method], traffic["host_reads"],
             traffic["host_writes"])
            for method, traffic in self.measured.items()
        ]
        part_b = render_table(
            ("method", "bytes read", "bytes written"), rows_m,
            title=(f"Table I (measured, functional engines, "
                   f"P={self.num_params_measured})"))
        return part_a + "\n\n" + part_b


def _loss_fn(model, tokens, labels):
    return model.loss(tokens, labels)


def run(model_name: str = "gpt2-4.0b") -> Table1Result:
    """Regenerate Table I analytically and by functional measurement."""
    spec = get_model(model_name)
    analytic = {
        method: expected_traffic(spec.num_parameters, method)
        for method in ("baseline", "smartupdate", "smartcomp")
    }

    data = make_classification_dataset(num_train=8, seq_len=16,
                                       vocab_size=32, seed=0)
    config_kwargs = dict(optimizer="adam",
                         optimizer_kwargs={"lr": 1e-3},
                         subgroup_elements=4096)
    measured: Dict[str, Dict[str, int]] = {}
    num_params = 0

    def tiny_model():
        return SequenceClassifier(
            bert_config(vocab_size=32, dim=32, num_layers=2, num_heads=2,
                        max_seq_len=16), num_classes=3, seed=1)

    engines = {
        "baseline": lambda d: create_engine(
            "baseline", tiny_model(), _loss_fn, d,
            config=TrainingConfig(**config_kwargs, raid_members=3)),
        "smartupdate": lambda d: create_engine(
            "smart", tiny_model(), _loss_fn, d,
            config=TrainingConfig(**config_kwargs, num_csds=3)),
        "smartcomp": lambda d: create_engine(
            "smart", tiny_model(), _loss_fn, d,
            config=TrainingConfig(**config_kwargs, num_csds=3,
                                  compression_ratio=0.02)),
    }
    for method, factory in engines.items():
        with tempfile.TemporaryDirectory() as workdir:
            engine = factory(workdir)
            result = engine.train_step(data.train_tokens[:4],
                                       data.train_labels[:4])
            num_params = engine.num_params
            measured[method] = {
                "host_reads": result.traffic.host_reads,
                "host_writes": result.traffic.host_writes,
            }
            engine.close()

    return Table1Result(
        model_name=model_name,
        num_params_analytic=spec.num_parameters,
        analytic=analytic,
        num_params_measured=num_params,
        measured=measured,
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
