"""Fig. 16 — training-time sensitivity to the Top-K compression ratio.

Lower ratios (less data on the wire) buy gradually more speedup; the paper
sweeps 1-10% volume and finds the curve flattens near the default 2%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hw.topology import default_system
from ..nn.models import get_model
from ..perf.scenarios import simulate_iteration
from ..perf.workload import make_workload
from .report import render_table

MODEL = "gpt2-4.0b"
RATIOS = (0.01, 0.02, 0.05, 0.10)


@dataclass(frozen=True)
class Fig16Result:
    """Speedup over the baseline per compression ratio."""

    speedups: Dict[float, float]
    uncompressed_speedup: float

    def monotone_nonincreasing(self) -> bool:
        """Smaller ratio never loses to a larger one (within the sweep)."""
        ordered = [self.speedups[r] for r in sorted(self.speedups)]
        return all(earlier >= later - 1e-9
                   for earlier, later in zip(ordered, ordered[1:]))

    def compression_always_helps(self) -> bool:
        return all(value >= self.uncompressed_speedup
                   for value in self.speedups.values())

    def render(self) -> str:
        rows = [("none (SU+O)", f"{self.uncompressed_speedup:.2f}x")]
        rows += [(f"{ratio:.0%}", f"{self.speedups[ratio]:.2f}x")
                 for ratio in sorted(self.speedups)]
        return render_table(
            ("compression ratio", "speedup over BASE"), rows,
            title="Fig 16: sensitivity to Top-K compression ratio "
                  "(10 SSDs)")


def run(num_ssds: int = 10, batch_size: int = 4,
        ratios=RATIOS) -> Fig16Result:
    """Regenerate Fig. 16."""
    workload = make_workload(get_model(MODEL), batch_size=batch_size)
    system = default_system(num_csds=num_ssds)
    base = simulate_iteration(system, workload, "baseline").total
    plain = simulate_iteration(system, workload, "su_o").total
    speedups = {}
    for ratio in ratios:
        smart = simulate_iteration(system, workload, "su_o_c",
                                   compression_ratio=ratio).total
        speedups[ratio] = base / smart
    return Fig16Result(speedups=speedups,
                       uncompressed_speedup=base / plain)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
