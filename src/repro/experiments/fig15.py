"""Fig. 15 — system cost efficiency (GFLOPS/$).

SmartSSDs cost ~6x a plain SSD of the same capacity, so with 1-3 devices
the baseline is more cost-efficient; from ~4 devices the speedup overtakes
the premium and Smart-Infinity's GFLOPS/$ keeps rising through 10 devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..hw.topology import default_system
from ..nn.models import get_model
from ..perf.cost import CostEfficiency, cost_efficiency
from ..perf.scenarios import simulate_iteration
from ..perf.workload import make_workload
from .report import render_table

MODEL = "gpt2-4.0b"


@dataclass(frozen=True)
class Fig15Result:
    """Cost-efficiency series for BASE and Smart-Infinity."""

    series: Dict[str, List[CostEfficiency]]

    def crossover_device_count(self) -> int:
        """First device count where Smart-Infinity's GFLOPS/$ wins."""
        for base, smart in zip(self.series["baseline"], self.series["smart"]):
            if smart.gflops_per_dollar > base.gflops_per_dollar:
                return smart.num_devices
        return -1

    def smart_keeps_rising(self) -> bool:
        """Smart GFLOPS/$ increases monotonically past the crossover."""
        values = [point.gflops_per_dollar
                  for point in self.series["smart"]]
        crossover = self.crossover_device_count()
        if crossover < 0:
            return False
        tail = values[crossover - 1:]
        return all(later >= earlier
                   for earlier, later in zip(tail, tail[1:]))

    def render(self) -> str:
        rows = []
        for base, smart in zip(self.series["baseline"],
                               self.series["smart"]):
            rows.append((
                base.num_devices,
                f"${base.system_cost_usd:,.0f}",
                f"{base.gflops_per_dollar:.3f}",
                f"${smart.system_cost_usd:,.0f}",
                f"{smart.gflops_per_dollar:.3f}",
                "smart" if smart.gflops_per_dollar
                > base.gflops_per_dollar else "base"))
        return render_table(
            ("#devices", "BASE cost", "BASE GFLOPS/$", "Smart cost",
             "Smart GFLOPS/$", "winner"),
            rows, title="Fig 15: cost efficiency (GPT-2 4.0B, A5000)")


def run(max_devices: int = 10, batch_size: int = 4) -> Fig15Result:
    """Regenerate Fig. 15."""
    workload = make_workload(get_model(MODEL), batch_size=batch_size)
    series: Dict[str, List[CostEfficiency]] = {"baseline": [], "smart": []}
    for count in range(1, max_devices + 1):
        system = default_system(num_csds=count)
        base = simulate_iteration(system, workload, "baseline")
        smart = simulate_iteration(system, workload, "su_o_c")
        series["baseline"].append(
            cost_efficiency(system, workload, "baseline", base))
        series["smart"].append(
            cost_efficiency(system, workload, "su_o_c", smart))
    return Fig15Result(series=series)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
