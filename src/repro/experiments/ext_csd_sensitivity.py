"""Extension experiment — sensitivity to the CSD product.

The paper builds on SmartSSD "but is not limited to certain products"
(§IX-A).  This study swaps in representative alternative CSDs from the
extended catalog and asks how the speedup responds to the two dimensions
a vendor controls: internal (flash + switch) bandwidth and accelerator
throughput.  The expected shape: faster internal paths raise the
Smart-Infinity speedup (the baseline is pinned by the *shared* host link
either way), which is the §VIII-C argument that CSDs get *more* valuable
as per-device bandwidth grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hw.catalog import get_csd
from ..hw.topology import default_system
from ..nn.models import get_model
from ..perf.scenarios import simulate_iteration
from ..perf.workload import make_workload
from .report import render_table

PRODUCTS = ("smartssd", "noload", "csd3000", "gen5")


@dataclass(frozen=True)
class CSDSensitivityResult:
    """Speedup and iteration time per CSD product."""

    speedups: Dict[str, float]
    iteration_times: Dict[str, float]
    internal_bandwidth: Dict[str, float]

    def faster_internal_path_helps(self) -> bool:
        """Speedup is monotone in the device's internal read bandwidth."""
        ordered = sorted(self.speedups,
                         key=lambda n: self.internal_bandwidth[n])
        values = [self.speedups[name] for name in ordered]
        return all(later >= earlier - 1e-9
                   for earlier, later in zip(values, values[1:]))

    def render(self) -> str:
        rows = []
        for name in sorted(self.speedups,
                           key=lambda n: self.internal_bandwidth[n]):
            rows.append((
                name,
                f"{self.internal_bandwidth[name] / 1e9:.1f} GB/s",
                f"{self.iteration_times[name]:.2f}s",
                f"{self.speedups[name]:.2f}x"))
        return render_table(
            ("CSD product", "internal read BW", "Smart iter",
             "speedup vs BASE"),
            rows, title="CSD product sensitivity (GPT-2 8.4B, 10 devices)")


def run(model_name: str = "gpt2-8.4b",
        num_csds: int = 10) -> CSDSensitivityResult:
    """Sweep the CSD product under the full Smart-Infinity stack."""
    workload = make_workload(get_model(model_name))
    speedups: Dict[str, float] = {}
    times: Dict[str, float] = {}
    bandwidth: Dict[str, float] = {}
    for name in PRODUCTS:
        csd = get_csd(name)
        system = default_system(num_csds=num_csds, csd=csd)
        base = simulate_iteration(system, workload, "baseline").total
        smart = simulate_iteration(system, workload, "su_o_c").total
        speedups[name] = base / smart
        times[name] = smart
        bandwidth[name] = csd.p2p_read_bandwidth
    return CSDSensitivityResult(speedups=speedups, iteration_times=times,
                                internal_bandwidth=bandwidth)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
