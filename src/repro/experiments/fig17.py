"""Fig. 17 — the congested multi-GPU expansion topology (§VIII-A).

One to three single-slot A4000 GPUs share the PCIe expansion's uplink with
the CSDs.  Tensor parallelism shrinks FW/BW compute, but parameter and
activation traffic now contends with storage traffic on the shared link,
inflating the "BW + Grad Offload" phase.  The paper still measures
1.66x-1.86x speedup with ten CSDs — smaller than the default topology's
~2x, because the performance depends on how the PCIe topology is wired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hw.topology import congested_system
from ..nn.models import get_model
from ..perf.scenarios import PhaseBreakdown, simulate_iteration
from ..perf.workload import make_workload
from .report import render_table

MODEL = "gpt2-1.16b"


@dataclass(frozen=True)
class Fig17Result:
    """Per-GPU-count breakdowns for BASE and Smart-Infinity."""

    breakdowns: Dict[int, Dict[str, PhaseBreakdown]]

    def speedup(self, num_gpus: int) -> float:
        cell = self.breakdowns[num_gpus]
        return cell["baseline"].total / cell["smart"].total

    def all_speedups_positive_but_reduced(
            self, default_topology_speedup: float) -> bool:
        """Congestion keeps speedup > 1 but below the default topology's."""
        return all(1.0 < self.speedup(g) < default_topology_speedup
                   for g in self.breakdowns)

    def render(self) -> str:
        rows = []
        for num_gpus, cell in sorted(self.breakdowns.items()):
            for method, breakdown in cell.items():
                rows.append((num_gpus, method,
                             f"{breakdown.forward:.2f}",
                             f"{breakdown.backward_grad:.2f}",
                             f"{breakdown.update:.2f}",
                             f"{breakdown.total:.2f}",
                             f"{self.speedup(num_gpus):.2f}x"
                             if method == "smart" else ""))
        return render_table(
            ("#GPUs", "method", "FW", "BW+Grad", "Update", "total",
             "speedup"),
            rows, title="Fig 17: congested multi-GPU topology "
                        "(A4000s in the expansion, 10 CSDs)")


def run(num_csds: int = 10, batch_size: int = 4,
        gpu_counts=(1, 2, 3)) -> Fig17Result:
    """Regenerate Fig. 17."""
    workload = make_workload(get_model(MODEL), batch_size=batch_size)
    breakdowns = {}
    for num_gpus in gpu_counts:
        system = congested_system(num_gpus=num_gpus, num_csds=num_csds)
        breakdowns[num_gpus] = {
            "baseline": simulate_iteration(system, workload, "baseline"),
            "smart": simulate_iteration(system, workload, "su_o_c"),
        }
    return Fig17Result(breakdowns=breakdowns)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
