"""Fig. 9 — breakdown and speedup of BASE / SU / SU+O / SU+O+C.

The paper's grid: GPT-2 (1.16B/4.0B/8.4B) and BERT (1.2B/4.0B/8.3B), each
with 6 and 10 SSDs/CSDs, three-phase breakdown per method.  Published
headline numbers: SU gives 1.18-1.24x (6 SSDs) and 1.54-1.60x (10 SSDs);
SU+O reaches 1.60-1.66x at 10; SU+O+C reaches 1.85-1.98x, and the speedup
trend is nearly identical across models because the bottleneck is storage
bandwidth, not model structure.

Each cell is produced through the telemetry attribution layer
(:func:`repro.telemetry.attribute_channels`): the phase breakdown is the
attribution's phase totals, and the cell additionally carries the
bottleneck verdict — the resource the paper would name when narrating
why that method is as fast as it is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..hw.topology import default_system
from ..nn.models import get_model
from ..perf.scenarios import METHODS, PhaseBreakdown, trace_scenario
from ..perf.workload import make_workload
from ..telemetry.attrib import BottleneckVerdict, attribute_channels
from .report import render_table

GRID_MODELS = ("gpt2-1.16b", "gpt2-4.0b", "gpt2-8.4b",
               "bert-1.2b", "bert-4.0b", "bert-8.3b")
SSD_COUNTS = (6, 10)


@dataclass(frozen=True)
class Fig9Result:
    """results[(model, num_ssds)][method] -> PhaseBreakdown."""

    results: Dict[Tuple[str, int], Dict[str, PhaseBreakdown]]
    #: bottlenecks[(model, num_ssds)][method] -> BottleneckVerdict.
    bottlenecks: Dict[Tuple[str, int], Dict[str, BottleneckVerdict]] = \
        field(default_factory=dict)

    def speedup(self, model: str, num_ssds: int, method: str) -> float:
        cell = self.results[(model, num_ssds)]
        return cell["baseline"].total / cell[method].total

    def speedup_range(self, num_ssds: int, method: str
                      ) -> Tuple[float, float]:
        """(min, max) speedup of a method across all models."""
        values = [self.speedup(model, num_ssds, method)
                  for model in self.models()]
        return min(values), max(values)

    def models(self) -> List[str]:
        return sorted({model for model, _n in self.results})

    def bottleneck(self, model: str, num_ssds: int,
                   method: str) -> BottleneckVerdict:
        return self.bottlenecks[(model, num_ssds)][method]

    def render(self) -> str:
        rows = []
        for (model, num_ssds), cell in sorted(self.results.items()):
            base = cell["baseline"]
            verdicts = self.bottlenecks.get((model, num_ssds), {})
            for method in METHODS:
                breakdown = cell[method]
                verdict = verdicts.get(method)
                rows.append((
                    model, num_ssds, method.upper().replace("_", "+"),
                    f"{breakdown.forward:.2f}",
                    f"{breakdown.backward_grad:.2f}",
                    f"{breakdown.update:.2f}",
                    f"{breakdown.total:.2f}",
                    f"{base.total / breakdown.total:.2f}x",
                    (f"{verdict.resource} {verdict.utilization:.0%}"
                     if verdict else "-")))
        return render_table(
            ("model", "#SSD", "method", "FW", "BW+Grad", "Update",
             "total", "speedup", "bottleneck"),
            rows, title="Fig 9: breakdown and speedup over BASE")


def _simulate_cell(system, workload) -> Tuple[
        Dict[str, PhaseBreakdown], Dict[str, BottleneckVerdict]]:
    """All methods on one (model, #SSD) point, via the attribution."""
    breakdowns: Dict[str, PhaseBreakdown] = {}
    verdicts: Dict[str, BottleneckVerdict] = {}
    for method in METHODS:
        trace = trace_scenario(system, workload, method)
        attribution = attribute_channels(
            trace.phase_windows, trace.fabric.all_channels(),
            horizon=trace.breakdown.total)
        totals = attribution.phase_totals()
        breakdowns[method] = PhaseBreakdown(
            forward=totals.get("forward", 0.0),
            backward_grad=totals.get("backward_grad", 0.0),
            update=totals.get("update", 0.0))
        verdicts[method] = attribution.verdict()
    return breakdowns, verdicts


def run(models=GRID_MODELS, ssd_counts=SSD_COUNTS,
        batch_size: int = 4) -> Fig9Result:
    """Regenerate the Fig. 9 grid."""
    results = {}
    bottlenecks = {}
    for model_name in models:
        workload = make_workload(get_model(model_name),
                                 batch_size=batch_size)
        for num_ssds in ssd_counts:
            system = default_system(num_csds=num_ssds)
            cell, verdicts = _simulate_cell(system, workload)
            results[(model_name, num_ssds)] = cell
            bottlenecks[(model_name, num_ssds)] = verdicts
    return Fig9Result(results=results, bottlenecks=bottlenecks)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
