"""Extension experiment — where does each method's time go?

Per-channel attribution behind the paper's narrative: the baseline is
bound by the shared host interconnect (Fig. 3b); SmartUpdate moves the
bottleneck onto the per-device NAND channels, which aggregate with device
count (§IV-A); SmartComp then thins the remaining host traffic until the
NAND/upstream path is all that is left (§VIII-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hw.topology import default_system
from ..nn.models import get_model
from ..perf.analysis import IterationAnalysis, compare_bottlenecks
from ..perf.workload import make_workload


@dataclass(frozen=True)
class BottleneckResult:
    """Per-method channel attribution for one machine."""

    analyses: Dict[str, IterationAnalysis]

    def baseline_bound_by_shared_link(self) -> bool:
        return self.analyses["baseline"].bottleneck.name.startswith(
            "host-link")

    def smart_bound_by_nand(self) -> bool:
        return all(
            self.analyses[m].bottleneck.name.startswith("ssd")
            for m in ("su", "su_o", "su_o_c"))

    def smart_sheds_shared_link(self) -> float:
        """Shared-link bytes of SU+O+C relative to the baseline's."""
        return (self.analyses["su_o_c"].shared_link_bytes()
                / self.analyses["baseline"].shared_link_bytes())

    def render(self) -> str:
        return "\n\n".join(analysis.render()
                           for analysis in self.analyses.values())


def run(model_name: str = "gpt2-8.4b",
        num_csds: int = 10) -> BottleneckResult:
    """Attribute each method's time to fabric channels."""
    workload = make_workload(get_model(model_name))
    system = default_system(num_csds=num_csds)
    return BottleneckResult(
        analyses=compare_bottlenecks(system, workload))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
