"""Fig. 14 — accelerator module throughput vs SSD read/write.

The paper's point: the updater (> 7 GB/s) comfortably outruns the SSD, and
the decompressor slightly exceeds SSD read bandwidth, so neither module
ever throttles the storage pipeline.  We report both the *calibrated
hardware model* numbers (what the DES uses) and the *measured* throughput
of the functional numpy kernels on this machine (for transparency — the
emulator must also be fast enough not to distort functional experiments).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..compression.topk import compress_topk
from ..csd.kernels import DecompressorKernel, UpdaterKernel
from ..hw.csd import smartssd
from ..optim import Adam
from .report import render_table

GB = 1e9


@dataclass(frozen=True)
class Fig14Result:
    """Modelled and measured module throughput (bytes/s)."""

    modelled: Dict[str, float]
    measured: Dict[str, float]
    #: Device-pipeline busy fractions from an attributed SU+O+C
    #: iteration: the utilization consequence of the bandwidth claim
    #: (the FPGA engines stay below the NAND channels).
    pipeline: Dict[str, float] = field(default_factory=dict)
    #: The same occupancy view under the interleaved schedule: the
    #: same device work packs into a shorter step, so every busy
    #: *fraction* rises while the ordering (storage above compute)
    #: and the conclusion — storage gates, the FPGA engines do not —
    #: are unchanged.
    pipeline_interleaved: Dict[str, float] = field(default_factory=dict)

    def updater_exceeds_ssd(self) -> bool:
        return (self.modelled["updater"] > self.modelled["ssd_read"]
                and self.modelled["updater"] > self.modelled["ssd_write"])

    def decompressor_covers_read(self) -> bool:
        return self.modelled["decompressor"] >= self.modelled["ssd_read"]

    def modules_never_gate(self) -> bool:
        """In the attributed run, neither FPGA engine is busier than
        the NAND read channel — storage, not compute, gates the
        pipeline (the figure's conclusion)."""
        if not self.pipeline:
            return True
        nand = self.pipeline.get("ssd0-read", 0.0)
        return (self.pipeline.get("csd0-updater", 0.0) <= nand
                and self.pipeline.get("csd0-decompressor", 0.0) <= nand)

    def render(self) -> str:
        rows = [(name, f"{value / GB:.2f} GB/s")
                for name, value in self.modelled.items()]
        part_a = render_table(("module", "throughput"), rows,
                              title="Fig 14 (hardware model)")
        rows_b = [(name, f"{value / GB:.2f} GB/s")
                  for name, value in self.measured.items()]
        part_b = render_table(
            ("functional kernel", "throughput on this host"), rows_b,
            title="Functional emulator throughput (numpy)")
        parts = [part_a, part_b]
        if self.pipeline:
            rows_c = [(name,
                       f"{value:.1%}",
                       (f"{self.pipeline_interleaved[name]:.1%}"
                        if name in self.pipeline_interleaved else "-"))
                      for name, value in sorted(self.pipeline.items())]
            parts.append(render_table(
                ("device channel/engine", "phased", "interleaved"),
                rows_c,
                title="Attributed SU+O+C pipeline occupancy (device 0, "
                      "busy fraction of step)"))
        return "\n\n".join(parts)


def _measure_updater(num_elements: int = 1 << 21,
                     repeats: int = 3) -> float:
    """Streamed optimizer-state bytes per second of the numpy updater."""
    rng = np.random.default_rng(0)
    kernel = UpdaterKernel(Adam(lr=1e-3))
    params = rng.standard_normal(num_elements).astype(np.float32)
    grads = rng.standard_normal(num_elements).astype(np.float32)
    state = kernel.optimizer.init_state(num_elements)
    kernel.run(params, grads, state, 1)  # warm-up
    start = time.perf_counter()
    for step in range(2, repeats + 2):
        kernel.run(params, grads, state, step)
    elapsed = time.perf_counter() - start
    streamed = 4 * (1 + kernel.optimizer.states_per_param) * num_elements
    return streamed * repeats / elapsed


def _measure_decompressor(num_elements: int = 1 << 21,
                          repeats: int = 3) -> float:
    """Dense output bytes per second of the numpy Top-K scatter."""
    rng = np.random.default_rng(1)
    gradient = rng.standard_normal(num_elements).astype(np.float32)
    compressed = compress_topk(gradient, volume_ratio=0.02)
    kernel = DecompressorKernel()
    output = np.zeros(num_elements, dtype=np.float32)
    kernel.run(compressed, output)  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        kernel.run(compressed, output)
    elapsed = time.perf_counter() - start
    return 4 * num_elements * repeats / elapsed


def _attributed_pipeline(model: str = "gpt2-4.0b",
                         num_csds: int = 10,
                         schedule: str = "phased") -> Dict[str, float]:
    """Busy fraction of device 0's channels in an attributed SU+O+C
    iteration — the occupancy view of the figure's bandwidth claim."""
    from ..hw.topology import default_system
    from ..nn.models import get_model
    from ..perf.scenarios import trace_scenario
    from ..perf.workload import make_workload
    from ..telemetry.attrib import attribute_channels

    workload = make_workload(get_model(model))
    system = default_system(num_csds=num_csds)
    trace = trace_scenario(system, workload, "su_o_c",
                           schedule=schedule)
    attribution = attribute_channels(
        trace.phase_windows, trace.fabric.all_channels(),
        horizon=trace.breakdown.total)
    wanted = ("ssd0-read", "ssd0-write", "csd0-updater",
              "csd0-decompressor")
    return {name: attribution.usage[name].utilization
            for name in wanted if name in attribution.usage}


def run(measure: bool = True) -> Fig14Result:
    """Regenerate Fig. 14's comparison."""
    csd = smartssd()
    modelled = {
        "updater": csd.fpga.updater_bandwidth,
        "decompressor": csd.fpga.decompressor_bandwidth,
        "ssd_read": csd.ssd.read_bandwidth,
        "ssd_write": csd.ssd.write_bandwidth,
    }
    measured = {}
    if measure:
        measured["updater"] = _measure_updater()
        measured["decompressor"] = _measure_decompressor()
    return Fig14Result(
        modelled=modelled, measured=measured,
        pipeline=_attributed_pipeline(),
        pipeline_interleaved=_attributed_pipeline(
            schedule="interleaved"))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
