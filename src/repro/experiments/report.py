"""Plain-text rendering helpers shared by the experiment modules.

Every experiment returns structured data *and* can render itself as the
rows/series the paper reports, so benchmark output is directly comparable
to the published tables and figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table with a separator under the header."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count."""
    units = ["B", "KB", "MB", "GB", "TB"]
    value = float(nbytes)
    for unit in units:
        if abs(value) < 1024 or unit == units[-1]:
            return f"{value:.2f} {unit}"
        value /= 1024.0
    return f"{value:.2f} TB"
