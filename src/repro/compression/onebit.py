"""1-bit sign compression (the 1-bit Adam lineage, related work [115]).

Sign-based compression sends one bit per gradient element plus a
per-chunk magnitude scale — a fixed ~1/32 volume ratio, denser coverage
than Top-K at similar volume but coarser per-element information.  The
paper's related work notes that error compensation does not directly
apply to Adam because of its nonlinearity (Tang et al., 2021 freeze the
variance after a warm-up); we provide the codec and leave the variance-
freezing schedule to the caller.

Wire format: packed sign bits (1 = non-negative) + one float32 scale per
``chunk_size`` elements (the mean absolute value of the chunk).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TrainingError


@dataclass(frozen=True)
class OneBitGradient:
    """Packed sign bits + per-chunk mean-magnitude scales."""

    packed_signs: np.ndarray
    scales: np.ndarray
    chunk_size: int
    original_size: int

    def __post_init__(self) -> None:
        if self.packed_signs.dtype != np.uint8:
            raise TrainingError("packed signs must be uint8")
        expected_scales = -(-self.original_size // self.chunk_size)
        if self.scales.size != expected_scales:
            raise TrainingError(
                f"need {expected_scales} scales, got {self.scales.size}")
        expected_bytes = -(-self.original_size // 8)
        if self.packed_signs.size != expected_bytes:
            raise TrainingError(
                f"need {expected_bytes} sign bytes, got "
                f"{self.packed_signs.size}")

    @property
    def nbytes(self) -> int:
        return self.packed_signs.size + 4 * self.scales.size

    @property
    def volume_ratio(self) -> float:
        return self.nbytes / (4 * self.original_size)


def compress_onebit(gradient: np.ndarray,
                    chunk_size: int = 4096) -> OneBitGradient:
    """Compress to signs + per-chunk mean magnitudes."""
    if chunk_size <= 0:
        raise TrainingError("chunk_size must be positive")
    flat = np.ascontiguousarray(gradient, dtype=np.float32).reshape(-1)
    signs = flat >= 0
    packed = np.packbits(signs)
    num_chunks = -(-flat.size // chunk_size)
    scales = np.empty(num_chunks, dtype=np.float32)
    for chunk in range(num_chunks):
        start = chunk * chunk_size
        stop = min(start + chunk_size, flat.size)
        scales[chunk] = np.abs(flat[start:stop]).mean(dtype=np.float64)
    return OneBitGradient(packed_signs=packed, scales=scales,
                          chunk_size=chunk_size, original_size=flat.size)


def decompress_onebit(compressed: OneBitGradient) -> np.ndarray:
    """Reconstruct ``sign * chunk_mean_magnitude`` per element."""
    signs = np.unpackbits(
        compressed.packed_signs)[:compressed.original_size]
    directions = np.where(signs, np.float32(1.0), np.float32(-1.0))
    output = np.empty(compressed.original_size, dtype=np.float32)
    size = compressed.chunk_size
    for chunk, scale in enumerate(compressed.scales):
        start = chunk * size
        stop = min(start + size, compressed.original_size)
        output[start:stop] = directions[start:stop] * scale
    return output
