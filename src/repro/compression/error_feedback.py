"""Error feedback (residual accumulation) for lossy gradient compression.

Standard practice with Top-K sparsification (Lin et al., 2018; referenced
by the paper's related work): the compression residual is remembered and
added to the next step's gradient before compressing, so every coordinate's
contribution is eventually transmitted.  This is what keeps SmartComp's
accuracy close to exact training at 1-10% volume ratios (Table IV).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import TrainingError
from .topk import CompressedGradient, compress_topk


class ErrorFeedback:
    """Per-buffer residual memory with compensate/absorb hooks."""

    def __init__(self, num_elements: int) -> None:
        if num_elements <= 0:
            raise TrainingError("num_elements must be positive")
        self.residual = np.zeros(num_elements, dtype=np.float32)
        # Persistent staging for the compensated vector and the kept-value
        # gather, so a steady-state compress step allocates nothing.
        self._compensated = np.empty(num_elements, dtype=np.float32)
        self._kept: np.ndarray = np.empty(0, dtype=np.float32)

    def compensate(self, gradient: np.ndarray) -> np.ndarray:
        """Return ``gradient + residual`` (the vector to compress).

        The result lives in a per-instance staging buffer that is reused
        by the next ``compensate`` call — consume it (compress + absorb)
        before compensating again.
        """
        flat = np.asarray(gradient, dtype=np.float32).reshape(-1)
        if flat.size != self.residual.size:
            raise TrainingError(
                f"gradient size {flat.size} != residual size "
                f"{self.residual.size}")
        np.add(flat, self.residual, out=self._compensated)
        return self._compensated

    def absorb(self, compensated: np.ndarray,
               compressed: CompressedGradient) -> None:
        """Store what the compressor dropped from ``compensated``.

        Equivalent to ``residual = compensated - decompress(compressed)``
        element for element — including non-finite inputs, where a kept
        ``inf`` must leave ``inf - inf = nan`` behind — but written as a
        copy plus a k-sized gather/subtract at the kept indices, so no
        dense temporaries are materialized.
        """
        np.copyto(self.residual, compensated)
        if self._kept.size != compressed.num_kept:
            self._kept = np.empty(compressed.num_kept, dtype=np.float32)
        np.take(compensated, compressed.indices, out=self._kept)
        np.subtract(self._kept, compressed.values, out=self._kept)
        self.residual[compressed.indices] = self._kept

    def residual_norm(self) -> float:
        return float(np.linalg.norm(self.residual))


def compress_with_feedback(
        gradient: np.ndarray, feedback: Optional[ErrorFeedback],
        volume_ratio: float,
        compressor: Callable[..., CompressedGradient] = compress_topk,
        **compressor_kwargs,
) -> CompressedGradient:
    """One compression step with optional error feedback.

    Extra keyword arguments (e.g. ``abs_scratch=`` for
    :func:`~repro.compression.topk.compress_topk`) pass through to the
    compressor.
    """
    if feedback is None:
        return compressor(gradient, volume_ratio, **compressor_kwargs)
    compensated = feedback.compensate(gradient)
    compressed = compressor(compensated, volume_ratio, **compressor_kwargs)
    feedback.absorb(compensated, compressed)
    return compressed
