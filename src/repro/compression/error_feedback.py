"""Error feedback (residual accumulation) for lossy gradient compression.

Standard practice with Top-K sparsification (Lin et al., 2018; referenced
by the paper's related work): the compression residual is remembered and
added to the next step's gradient before compressing, so every coordinate's
contribution is eventually transmitted.  This is what keeps SmartComp's
accuracy close to exact training at 1-10% volume ratios (Table IV).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import TrainingError
from .topk import CompressedGradient, compress_topk, decompress_topk


class ErrorFeedback:
    """Per-buffer residual memory with compensate/absorb hooks."""

    def __init__(self, num_elements: int) -> None:
        if num_elements <= 0:
            raise TrainingError("num_elements must be positive")
        self.residual = np.zeros(num_elements, dtype=np.float32)

    def compensate(self, gradient: np.ndarray) -> np.ndarray:
        """Return ``gradient + residual`` (the vector to compress)."""
        flat = np.asarray(gradient, dtype=np.float32).reshape(-1)
        if flat.size != self.residual.size:
            raise TrainingError(
                f"gradient size {flat.size} != residual size "
                f"{self.residual.size}")
        return flat + self.residual

    def absorb(self, compensated: np.ndarray,
               compressed: CompressedGradient) -> None:
        """Store what the compressor dropped from ``compensated``."""
        self.residual = compensated - decompress_topk(compressed)

    def residual_norm(self) -> float:
        return float(np.linalg.norm(self.residual))


def compress_with_feedback(
        gradient: np.ndarray, feedback: Optional[ErrorFeedback],
        volume_ratio: float,
        compressor: Callable[..., CompressedGradient] = compress_topk,
) -> CompressedGradient:
    """One compression step with optional error feedback."""
    if feedback is None:
        return compressor(gradient, volume_ratio)
    compensated = feedback.compensate(gradient)
    compressed = compressor(compensated, volume_ratio)
    feedback.absorb(compensated, compressed)
    return compressed
