"""Gradient compression: Top-K (SmartComp), alternatives, error feedback."""

from .alternatives import (LowRankGradient, compress_lowrank,
                           compress_randomk, decompress_lowrank)
from .error_feedback import ErrorFeedback, compress_with_feedback
from .onebit import OneBitGradient, compress_onebit, decompress_onebit
from .topk import (CompressedGradient, compress_topk, compression_error,
                   decompress_topk, keep_count)

__all__ = [
    "CompressedGradient",
    "ErrorFeedback",
    "LowRankGradient",
    "OneBitGradient",
    "compress_onebit",
    "decompress_onebit",
    "compress_lowrank",
    "compress_randomk",
    "compress_topk",
    "compress_with_feedback",
    "compression_error",
    "decompress_lowrank",
    "decompress_topk",
    "keep_count",
]
