"""Alternative compressors used as baselines/ablations.

The paper settles on magnitude-based Top-K but discusses low-rank
decomposition (PowerSGD-style) as another option (§IV-C), rejecting it for
FPGA-implementation cost.  Random-K and a rank-r factorization are provided
so the accuracy ablations can show *why* magnitude selection is the right
default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TrainingError
from .topk import CompressedGradient, keep_count


def compress_randomk(gradient: np.ndarray, volume_ratio: float,
                     rng: np.random.Generator) -> CompressedGradient:
    """Keep a uniform random subset of elements (same wire format as
    Top-K, strictly worse direction preservation)."""
    flat = np.asarray(gradient, dtype=np.float32).reshape(-1)
    kept = keep_count(flat.size, volume_ratio)
    indices = np.sort(rng.choice(flat.size, size=kept,
                                 replace=False)).astype(np.int32)
    return CompressedGradient(indices=indices, values=flat[indices].copy(),
                              original_size=flat.size)


@dataclass(frozen=True)
class LowRankGradient:
    """Rank-r factorization of a gradient reshaped to a matrix."""

    left: np.ndarray
    right: np.ndarray
    rows: int
    cols: int
    original_size: int

    @property
    def nbytes(self) -> int:
        return 4 * (self.left.size + self.right.size)

    @property
    def volume_ratio(self) -> float:
        return self.nbytes / (4 * self.original_size)


def compress_lowrank(gradient: np.ndarray, rank: int,
                     num_power_iterations: int = 1,
                     rng: np.random.Generator = None) -> LowRankGradient:
    """Power-iteration low-rank approximation (PowerSGD-style).

    The flat gradient is reshaped to the squarest possible matrix, then
    approximated as ``left @ right`` with ``left`` (rows x r) and ``right``
    (r x cols).
    """
    if rank < 1:
        raise TrainingError("rank must be >= 1")
    if num_power_iterations < 1:
        raise TrainingError("need at least one power iteration")
    rng = rng or np.random.default_rng(0)
    flat = np.asarray(gradient, dtype=np.float32).reshape(-1)
    rows = int(np.floor(np.sqrt(flat.size)))
    while flat.size % rows != 0:
        rows -= 1
    cols = flat.size // rows
    matrix = flat.reshape(rows, cols)

    right = rng.standard_normal((cols, rank)).astype(np.float32)
    for _ in range(num_power_iterations):
        left = matrix @ right                       # (rows, r)
        q, _ = np.linalg.qr(left)
        left = q.astype(np.float32)
        right = (matrix.T @ left).astype(np.float32)  # (cols, r)
    return LowRankGradient(left=left, right=right.T, rows=rows, cols=cols,
                           original_size=flat.size)


def decompress_lowrank(compressed: LowRankGradient) -> np.ndarray:
    """Reconstruct the flat gradient from the factorization."""
    matrix = compressed.left @ compressed.right
    return matrix.reshape(-1).astype(np.float32)
