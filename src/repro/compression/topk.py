"""Top-K magnitude gradient compression (the SmartComp algorithm, §IV-C).

The GPU sorts gradients by magnitude and keeps the top ``k``; the CSD FPGA
decompresses by scattering the kept values into a zero vector (§V-B).  The
compressed representation is an (indices, values) pair, so the transferred
volume is ``2 x k x 4`` bytes — which is why the paper calls keeping the
top 1% of elements "2% compression": an index-value *pair* per kept
element, i.e. c% of the original 4-byte-per-element gradient volume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TrainingError


@dataclass(frozen=True)
class CompressedGradient:
    """Sparse gradient: positions and values of the kept elements."""

    indices: np.ndarray
    values: np.ndarray
    original_size: int

    def __post_init__(self) -> None:
        if self.indices.shape != self.values.shape:
            raise TrainingError("indices/values length mismatch")
        if self.indices.ndim != 1:
            raise TrainingError("compressed gradients are flat")
        if self.original_size < self.indices.size:
            raise TrainingError("more kept elements than original size")

    @property
    def num_kept(self) -> int:
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        """Wire size: 4-byte index + 4-byte value per kept element."""
        return 8 * self.num_kept

    @property
    def original_nbytes(self) -> int:
        return 4 * self.original_size

    @property
    def volume_ratio(self) -> float:
        """Transferred bytes / original bytes (the paper's c%)."""
        if self.original_size == 0:
            return 0.0
        return self.nbytes / self.original_nbytes


def keep_count(num_elements: int, volume_ratio: float) -> int:
    """Kept-element count for a target *volume* ratio.

    ``volume_ratio=0.02`` (the paper's default "2%") keeps 1% of elements
    because each costs an index-value pair.
    """
    if not 0 < volume_ratio <= 2.0:
        raise TrainingError(
            f"volume ratio must be in (0, 2], got {volume_ratio}")
    kept = int(num_elements * volume_ratio / 2.0)
    return max(1, min(kept, num_elements))


def compress_topk(gradient: np.ndarray,
                  volume_ratio: float = 0.02,
                  abs_scratch: np.ndarray = None) -> CompressedGradient:
    """GPU-side compression: keep the largest-magnitude elements.

    Selection uses ``argpartition`` (the GPU does a partial sort); kept
    indices are re-sorted ascending (in place) so the FPGA decompressor's
    scatter walks memory sequentially, as the hardware pipeline does.

    The engine hot path hands in contiguous fp32 1-D shard slices, which
    are used as-is — the input is only ever read, and the fancy-indexed
    gather of kept values already produces a fresh array (no aliasing, so
    no defensive copy) — so no normalisation pass runs per shard per
    iteration.  ``abs_scratch``, when given, receives the magnitude pass
    (``|g|``) instead of a fresh temporary; it must be a flat float32
    buffer of at least ``gradient.size`` elements (e.g. an arena block).
    """
    if (isinstance(gradient, np.ndarray) and gradient.ndim == 1
            and gradient.dtype == np.float32
            and gradient.flags.c_contiguous):
        flat = gradient
    else:
        flat = np.ascontiguousarray(gradient, dtype=np.float32).reshape(-1)
    kept = keep_count(flat.size, volume_ratio)
    if kept >= flat.size:
        indices = np.arange(flat.size, dtype=np.int32)
    else:
        if abs_scratch is not None:
            magnitudes = np.abs(flat, out=abs_scratch[:flat.size])
        else:
            magnitudes = np.abs(flat)
        top = np.argpartition(magnitudes, flat.size - kept)[-kept:]
        top.sort()
        indices = top.astype(np.int32)
    return CompressedGradient(indices=indices,
                              values=flat[indices],
                              original_size=flat.size)


def decompress_topk(compressed: CompressedGradient) -> np.ndarray:
    """Reference (host-side) decompression: scatter into zeros.

    The functional FPGA kernel in `repro.csd.kernels` performs the same
    scatter in BRAM-sized chunks; the tests assert both agree exactly.
    """
    output = np.zeros(compressed.original_size, dtype=np.float32)
    output[compressed.indices] = compressed.values
    return output


def compression_error(gradient: np.ndarray,
                      compressed: CompressedGradient) -> np.ndarray:
    """The residual the compression dropped (input to error feedback)."""
    flat = np.asarray(gradient, dtype=np.float32).reshape(-1)
    return flat - decompress_topk(compressed)
