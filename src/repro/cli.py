"""Command-line interface.

Eleven subcommands:

* ``list-models`` — print the analytic model zoo (names, sizes, shapes).
* ``simulate`` — run one DES training-iteration configuration and print
  its phase breakdown and speedup over the baseline.
* ``analyze`` — per-channel bottleneck attribution for every method on
  one machine, optionally with an ASCII occupancy timeline.
* ``top`` — the bottleneck observatory dashboard: per-link utilization
  bars, the phase x resource ownership table, a bottleneck verdict, and
  a health/alerts pane (SLO rules over the attribution), over a fresh
  simulation or a finished trace file (``--trace``); ``--once`` renders
  a single frame, otherwise it refreshes live.  With nothing to
  attribute it degrades to a "no data yet" notice instead of an error.
* ``whatif`` — the critical-path observatory's counterfactual engine:
  reconstruct the per-step dependency DAG of one simulated iteration,
  print the critical path with slack accounting, and rank what-if
  projections (``--scale channel=factor``, ``--add-csds``,
  ``--compression-ratio``) by projected step-time reduction;
  ``--validate`` re-runs the DES with each channel scaling genuinely
  applied and fails (exit 1) if the projection error exceeds
  ``--max-error``; ``--jsonl`` writes the
  ``smart-infinity/critpath/v1`` event log.
* ``health`` — the step-health monitor: run a functional-engine probe
  and report per-step signals (steps/s, loss finiteness, retry/arena
  rates, link utilization) as rolling EWMA windows, the SLO alerts that
  fired, and the flight-recorder / incident-dump state; one-shot by
  default, ``--watch`` refreshes live.
* ``sweep`` — sweep one axis (devices / model / ratio) and tabulate the
  resulting speedups.
* ``experiment`` — regenerate any paper table or figure by id.
* ``trace`` — export a Chrome trace-event JSON (open in Perfetto)
  unifying the sim-time DES timeline with wall-clock telemetry spans
  from a functional-engine proxy run.
* ``bench`` — measure real wall-clock steps/s through the functional
  Smart-Infinity engine, sequential vs thread-pooled multi-CSD, and
  write ``BENCH_parallel.json``; ``--compare`` appends to a history
  file and fails on a throughput regression.  Each run also records a
  health summary (signals, alerts, flight-recorder stats) next to its
  arena stats; ``--no-flight`` disables the recorder to measure its
  overhead.
* ``scenario`` — declarative chaos + workload campaigns
  (``repro.scenarios``): ``list`` the bundled (or given) scenario
  files, ``run`` them with per-phase pass/fail against any engine mode
  and backend, or ``replay`` one and byte-compare its seeded event log
  against a previous run's.  Bare ``scenario run`` runs every bundled
  campaign in ``examples/scenarios/``.

Examples::

    python -m repro list-models
    python -m repro simulate --model gpt2-8.4b --csds 10 --method su_o_c
    python -m repro analyze --model gpt2-8.4b --csds 10 --timeline
    python -m repro top --once --model gpt2-4.0b --csds 10
    python -m repro top --once --trace gpt2-4.0b-su_o_c.trace.json
    python -m repro whatif --model gpt2-4.0b --csds 10
    python -m repro whatif --scale host-link-down=0.5 --validate
    python -m repro health --once --steps 5
    python -m repro health --fault-plan examples/chaos.json --chaos-seed 7
    python -m repro sweep devices --model gpt2-4.0b
    python -m repro experiment fig9
    python -m repro trace --model gpt2-4.0b --csds 6 --method su_o_c
    python -m repro bench --quick --out BENCH_parallel.json
    python -m repro bench --quick --compare
    python -m repro scenario list
    python -m repro scenario run examples/scenarios/dropout_recovery.json
    python -m repro scenario run --backend process --chaos-seed 7
    python -m repro scenario replay examples/scenarios/dropout_recovery.json \\
        --log events.jsonl

``simulate`` and ``analyze`` accept ``--metrics`` to print a
Prometheus-style exposition of per-channel counters and gauges; ``top``
extends it with the attribution series and can also write a structured
JSONL event log (``--jsonl``).  Every engine-backed subcommand
(``top``, ``whatif``, ``health``, ``trace``, ``bench``, ``scenario``)
shares one flag vocabulary — ``--backend``, ``--workers``,
``--fault-plan``, ``--chaos-seed``, ``--slo`` — with identical
semantics everywhere (``top`` and ``whatif`` are simulation-only and
note when they ignore the engine-side flags).  ``python -m repro
--version`` prints the package version.  ``--slo`` takes a JSON rules file (see ``examples/slo.json``);
chaos runs of ``trace`` and ``health`` write automatic
``smart-infinity/flightrec/v1`` dumps on incidents (``--dump-dir``,
default ``flightrec/``).
"""

from __future__ import annotations

import argparse
import glob as _glob
import os
import sys
import tempfile
import time
from typing import List, Optional

from . import telemetry
from .errors import TelemetryError
from .experiments import ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS
from .faults import FaultPlan
from .hw.gpu import a100_40g, a4000, a5000
from .hw.topology import default_system
from .nn.models import ZOO, get_model
from .perf.analysis import compare_bottlenecks
from .perf.scenarios import (EXTENSION_METHODS, METHODS,
                             simulate_iteration, trace_scenario)
from .perf.sweeps import render_sweep, sweep_devices, sweep_models, \
    sweep_ratios
from .perf.workload import make_workload
from .version import __version__

_GPUS = {"a5000": a5000, "a100": a100_40g, "a4000": a4000}

#: Where ``scenario`` looks for campaigns when none are given (relative
#: to the working directory, i.e. a repo checkout).
_BUNDLED_SCENARIO_DIR = os.path.join("examples", "scenarios")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Smart-Infinity (HPCA 2024) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list-models",
                        help="list the analytic model zoo")

    simulate = commands.add_parser(
        "simulate", help="simulate one training iteration")
    simulate.add_argument("--model", default="gpt2-4.0b")
    simulate.add_argument("--csds", type=int, default=10)
    simulate.add_argument("--method", default="su_o_c",
                          choices=METHODS + EXTENSION_METHODS)
    simulate.add_argument("--gpu", default="a5000", choices=sorted(_GPUS))
    simulate.add_argument("--batch-size", type=int, default=4)
    simulate.add_argument("--optimizer", default="adam")
    simulate.add_argument("--ratio", type=float, default=0.02,
                          help="SmartComp volume ratio")
    simulate.add_argument("--schedule", default="phased",
                          choices=("phased", "interleaved"),
                          help="execution pipeline: phased or "
                               "interleaved (per-block updates overlap "
                               "the backward pass)")
    simulate.add_argument("--metrics", action="store_true",
                          help="print a Prometheus-style exposition of "
                               "the simulated channel metrics")

    analyze = commands.add_parser(
        "analyze", help="per-channel bottleneck attribution")
    analyze.add_argument("--model", default="gpt2-4.0b")
    analyze.add_argument("--csds", type=int, default=10)
    analyze.add_argument("--gpu", default="a5000", choices=sorted(_GPUS))
    analyze.add_argument("--timeline", action="store_true",
                         help="render an ASCII occupancy timeline of the "
                              "baseline and SU+O+C runs")
    analyze.add_argument("--metrics", action="store_true",
                         help="print a Prometheus-style exposition of "
                              "per-channel metrics for baseline and "
                              "SU+O+C")

    top = commands.add_parser(
        "top", help="bottleneck observatory: per-link utilization, "
                    "phase x resource ownership, verdict")
    top.add_argument("--trace", default=None, metavar="TRACE_JSON",
                     help="attribute a finished Chrome trace-event file "
                          "instead of running a fresh simulation")
    top.add_argument("--model", default="gpt2-4.0b")
    top.add_argument("--csds", type=int, default=10)
    top.add_argument("--method", default="su_o_c",
                     choices=METHODS + EXTENSION_METHODS)
    top.add_argument("--gpu", default="a5000", choices=sorted(_GPUS))
    top.add_argument("--ratio", type=float, default=0.02,
                     help="SmartComp volume ratio")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (default: refresh "
                          "live every --interval seconds until Ctrl-C)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="live refresh period in seconds (default 2)")
    top.add_argument("--jsonl", default=None, metavar="EVENTS_JSONL",
                     help="also write the attribution as a structured "
                          "JSONL event log")
    top.add_argument("--metrics", action="store_true",
                     help="also print the Prometheus-style exposition "
                          "of the attribution series")
    _add_shared_options(top)

    whatif = commands.add_parser(
        "whatif", help="critical-path what-if engine: dependency DAG, "
                       "slack, and ranked counterfactual projections "
                       "over one simulated iteration")
    whatif.add_argument("--model", default="gpt2-4.0b")
    whatif.add_argument("--csds", type=int, default=10)
    whatif.add_argument("--method", default="su_o_c",
                        choices=METHODS + EXTENSION_METHODS)
    whatif.add_argument("--gpu", default="a5000", choices=sorted(_GPUS))
    whatif.add_argument("--ratio", type=float, default=0.02,
                        help="SmartComp volume ratio")
    whatif.add_argument(
        "--scale", action="append", default=None, metavar="CHANNEL=FACTOR",
        help="project the named channel's transfers taking FACTOR times "
             "as long (0.5 = link twice as fast); repeatable, each "
             "projected independently")
    whatif.add_argument(
        "--add-csds", type=int, default=None, metavar="N",
        help="project N additional CSDs (device-internal work spreads "
             "over the larger fleet; shared host link unchanged)")
    whatif.add_argument(
        "--compression-ratio", type=float, default=None, metavar="R",
        help="project the SmartComp volume ratio changing from --ratio "
             "to R (gradient-offload transfers rescale)")
    whatif.add_argument(
        "--interleave", action="store_true",
        help="project the interleaved schedule from this phased trace "
             "(per-block updates start as gradients land instead of at "
             "the offload barrier); with --validate, re-runs the DES "
             "with schedule=interleaved genuinely applied")
    whatif.add_argument(
        "--top", type=int, default=6, metavar="N",
        help="path resources shown in the critical-path pane "
             "(default 6)")
    whatif.add_argument(
        "--validate", action="store_true",
        help="re-run the DES with each --scale genuinely applied and "
             "report the projection error; exits 1 beyond --max-error")
    whatif.add_argument(
        "--max-error", type=float, default=0.05, metavar="FRACTION",
        help="relative projection error --validate tolerates "
             "(default 0.05 = 5%%)")
    whatif.add_argument(
        "--jsonl", default=None, metavar="EVENTS_JSONL",
        help="write the critical path, projections, and validations as "
             "a smart-infinity/critpath/v1 JSONL event log")
    _add_shared_options(whatif)

    health = commands.add_parser(
        "health", help="step-health monitor: per-step signals, SLO "
                       "alerts, and flight-recorder state from a "
                       "functional engine probe run")
    health.add_argument("--csds", type=int, default=2)
    health.add_argument("--method", default="su_o_c",
                        choices=METHODS + EXTENSION_METHODS)
    health.add_argument("--ratio", type=float, default=0.02,
                        help="SmartComp volume ratio")
    health.add_argument("--steps", type=int, default=5,
                        help="probe training steps per report "
                             "(default 5)")
    health.add_argument("--dump-dir", default="flightrec",
                        help="directory for automatic flight-recorder "
                             "incident dumps (default flightrec/)")
    health.add_argument("--once", action="store_true",
                        help="render one report and exit (the default; "
                             "kept explicit for scripting symmetry with "
                             "top --once)")
    health.add_argument("--watch", action="store_true",
                        help="re-run the probe and redraw every "
                             "--interval seconds until Ctrl-C")
    health.add_argument("--interval", type=float, default=2.0,
                        help="refresh period for --watch (default 2)")
    _add_shared_options(health)

    trace = commands.add_parser(
        "trace", help="export a Chrome trace-event JSON for Perfetto")
    trace.add_argument("--model", default="gpt2-4.0b")
    trace.add_argument("--csds", type=int, default=6)
    trace.add_argument("--method", default="su_o_c",
                       choices=METHODS + EXTENSION_METHODS)
    trace.add_argument("--gpu", default="a5000", choices=sorted(_GPUS))
    trace.add_argument("--ratio", type=float, default=0.02,
                       help="SmartComp volume ratio")
    trace.add_argument("--out", default=None,
                       help="output path (default "
                            "<model>-<method>.trace.json)")
    trace.add_argument("--skip-functional", action="store_true",
                       help="omit the tiny functional-engine proxy run "
                            "(trace will contain only the sim-time "
                            "domain)")
    trace.add_argument("--metrics", action="store_true",
                       help="also print the Prometheus-style metrics "
                            "collected during the trace")
    _add_shared_options(trace)

    sweep = commands.add_parser(
        "sweep", help="sweep one axis and tabulate speedups")
    sweep.add_argument("axis", choices=("devices", "model", "ratio"))
    sweep.add_argument("--model", default="gpt2-4.0b")
    sweep.add_argument("--max-devices", type=int, default=10)
    sweep.add_argument("--method", default="su_o_c",
                       choices=METHODS[1:] + EXTENSION_METHODS)

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table/figure")
    experiment.add_argument(
        "id",
        choices=sorted(ALL_EXPERIMENTS) + sorted(EXTENSION_EXPERIMENTS),
        help="experiment id (e.g. fig9, table1, ext_bottlenecks)")

    bench = commands.add_parser(
        "bench", help="wall-clock steps/s: sequential vs thread-pooled "
                      "multi-CSD execution")
    bench.add_argument("--quick", action="store_true",
                       help="tiny workload (CI smoke): structure over "
                            "statistical weight")
    bench.add_argument("--csds", default="1,2,4",
                       help="comma-separated CSD counts (default 1,2,4)")
    bench.add_argument("--steps", type=int, default=None,
                       help="timed steps per configuration (default: "
                            "workload preset)")
    bench.add_argument("--out", default="BENCH_parallel.json",
                       help="JSON report path (default "
                            "BENCH_parallel.json)")
    bench.add_argument("--compare", action="store_true",
                       help="append this run to the bench history and "
                            "fail (exit 1) if throughput regressed "
                            "beyond the threshold vs the matching "
                            "baseline")
    bench.add_argument("--history",
                       default="benchmarks/results/BENCH_parallel.json",
                       help="bench history file for --compare (default "
                            "benchmarks/results/BENCH_parallel.json)")
    bench.add_argument("--regression-threshold", type=float, default=0.2,
                       metavar="FRACTION",
                       help="relative steps/s drop that fails the gate "
                            "(default 0.2 = 20%%)")
    bench.add_argument("--no-flight", action="store_true",
                       help="disable the flight recorder for this bench "
                            "(to measure its overhead against a default "
                            "run)")
    _add_shared_options(bench)

    scenario = commands.add_parser(
        "scenario", help="declarative chaos + workload campaigns: "
                         "list, run, or replay scenario files "
                         "(repro.scenarios)")
    scenario.add_argument(
        "action", choices=("list", "run", "replay"),
        help="list: tabulate the scenario files; run: execute them "
             "with per-phase pass/fail; replay: re-run one scenario "
             "and byte-compare its event log against --log")
    scenario.add_argument(
        "paths", nargs="*", metavar="SCENARIO_JSON",
        help="scenario files, or directories scanned for *.json "
             f"(default: the bundled {_BUNDLED_SCENARIO_DIR}/)")
    scenario.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="keep per-scenario run artifacts (engine storage, splice "
             "checkpoints, flight dumps, events.jsonl) under DIR "
             "instead of a discarded temp dir")
    scenario.add_argument(
        "--log", default=None, metavar="EVENTS_JSONL",
        help="run (single scenario): write the event log here; "
             "replay: the previous run's log to byte-compare against")
    _add_shared_options(scenario)
    return parser


def _add_shared_options(subparser) -> None:
    """The flag vocabulary shared by every engine-backed subcommand.

    One definition keeps ``--backend``/``--workers``/``--fault-plan``/
    ``--chaos-seed``/``--slo`` byte-identical (names, defaults, help)
    across ``top``, ``health``, ``trace``, ``bench`` and ``scenario``.
    ``--backend`` defaults to None so handlers can tell "explicitly
    thread" from "unset" (``top`` ignores engine-side flags with a
    notice; everything else falls back to thread).
    """
    subparser.add_argument(
        "--backend", default=None,
        choices=("thread", "process", "auto"),
        help="execution backend for the per-CSD fan-out: thread "
             "(shared-address-space pool), process (per-CSD worker "
             "processes with shared-memory shards — scales past the "
             "GIL), or auto (process when >1 usable CPU); training "
             "output is bit-identical either way (default thread)")
    subparser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="workers for the per-CSD fan-out (default: one per "
             "device); bit-identity makes this a pure throughput knob")
    subparser.add_argument(
        "--fault-plan", default=None, metavar="PLAN_JSON",
        help="JSON fault plan (repro.faults.FaultPlan) injected into the "
             "functional engine's storage/CSD fleet")
    subparser.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="re-seed the fault plan (or, without --fault-plan, enable "
             "the default transient-chaos plan) with SEED; for "
             "scenario runs this re-seeds the whole campaign")
    subparser.add_argument(
        "--slo", default=None, metavar="RULES_JSON",
        help="SLO rules file (examples/slo.json shape) replacing the "
             "built-in rule set")
    subparser.add_argument(
        "--schedule", default=None,
        choices=("phased", "interleaved"),
        help="execution pipeline: phased (offload barrier, then "
             "update) or interleaved (per-block offload+update "
             "enqueued as backprop produces gradients); training "
             "output is bit-identical either way (default phased)")
    subparser.add_argument(
        "--activation-offload", default=None,
        choices=("recompute", "spill", "auto"),
        help="boundary-activation policy for checkpointed losses: "
             "recompute (keep in host memory), spill (write to the "
             "SSD-backed spill store, async-prefetch before "
             "backward), or auto (spill when the engine owns "
             "storage); bit-identical either way (default recompute)")


def _resolve_fault_plan(args) -> Optional[FaultPlan]:
    """Combine --fault-plan / --chaos-seed into one plan (or None)."""
    plan = None
    if args.fault_plan is not None:
        plan = FaultPlan.from_json_file(args.fault_plan)
    if args.chaos_seed is not None:
        plan = (plan or FaultPlan.default_chaos()).with_seed(
            args.chaos_seed)
    return plan


def _resolve_slo_rules(args) -> Optional[list]:
    """--slo as a list of rule dicts (TrainingConfig.slo_rules shape)."""
    if args.slo is None:
        return None
    return [rule.to_dict() for rule in telemetry.load_slo_rules(args.slo)]


def _render_fault_stats(stats) -> str:
    injected = sum(stats["injected"].values())
    return (f"faults: {injected} injected "
            f"({', '.join(f'{k}={v}' for k, v in sorted(stats['injected'].items())) or 'none'}), "
            f"{stats['retries']} retries, "
            f"{stats['demotions']} demotion(s), "
            f"{stats['degraded_steps']} degraded step(s)")


def _cmd_list_models(_args) -> int:
    print(f"{'name':<14} {'family':<8} {'params':>10} {'dim':>6} "
          f"{'layers':>7}")
    for name in sorted(ZOO):
        spec = ZOO[name]
        print(f"{name:<14} {spec.family:<8} {spec.billions:>9.2f}B "
              f"{spec.hidden_dim:>6} {spec.num_layers:>7}")
    return 0


def _cmd_simulate(args) -> int:
    workload = make_workload(get_model(args.model),
                             batch_size=args.batch_size,
                             optimizer=args.optimizer)
    system = default_system(num_csds=args.csds, gpu=_GPUS[args.gpu]())
    trace = trace_scenario(system, workload, args.method,
                           compression_ratio=args.ratio,
                           schedule=args.schedule)
    breakdown = trace.breakdown
    base = simulate_iteration(system, workload, "baseline")
    print(f"model {args.model}, {args.csds} device(s), {args.gpu}, "
          f"method {args.method}"
          + ("" if args.schedule == "phased"
             else f", {args.schedule} schedule"))
    print(f"  FW              {breakdown.forward:8.3f} s")
    print(f"  BW + grad       {breakdown.backward_grad:8.3f} s")
    print(f"  update + opt    {breakdown.update:8.3f} s")
    print(f"  iteration       {breakdown.total:8.3f} s")
    if args.method != "baseline":
        print(f"  speedup vs BASE {breakdown.speedup_over(base):8.2f} x")
    if args.metrics:
        registry = telemetry.MetricsRegistry()
        telemetry.record_channel_metrics(
            registry, trace.fabric.all_channels(),
            horizon=breakdown.total, method=args.method)
        print()
        print(registry.render_prometheus(), end="")
    return 0


def _cmd_analyze(args) -> int:
    workload = make_workload(get_model(args.model))
    system = default_system(num_csds=args.csds, gpu=_GPUS[args.gpu]())
    for method, analysis in compare_bottlenecks(system, workload).items():
        print(analysis.render())
        print()
    if args.timeline:
        from .perf.scenarios import run_scenario
        from .sim.trace import render_timeline
        for method in ("baseline", "su_o_c"):
            breakdown, fabric = run_scenario(system, workload, method)
            channels = [fabric.link_up, fabric.link_down, fabric.cpu,
                        fabric.devices[0].nand_read,
                        fabric.devices[0].nand_write,
                        fabric.devices[0].fpga_updater]
            print(f"--- {method} ---")
            print(render_timeline(channels, horizon=breakdown.total))
            print()
    if args.metrics:
        registry = telemetry.MetricsRegistry()
        for method in ("baseline", "su_o_c"):
            trace = trace_scenario(system, workload, method)
            telemetry.record_channel_metrics(
                registry, trace.fabric.all_channels(),
                horizon=trace.breakdown.total, method=method)
        print(registry.render_prometheus(), end="")
    return 0


def _cmd_top(args) -> int:
    # top shares the engine flag vocabulary but renders simulations /
    # finished traces, so the engine-side flags have nothing to act on.
    ignored = [flag for flag, value in (
        ("--backend", args.backend), ("--workers", args.workers),
        ("--fault-plan", args.fault_plan),
        ("--chaos-seed", args.chaos_seed),
        ("--activation-offload", args.activation_offload))
        if value is not None]
    if ignored:
        print(f"[top is simulation-only; ignoring "
              f"{', '.join(ignored)} — use health/trace/bench/scenario "
              "to drive the functional engine]")
    slo_rules = (telemetry.load_slo_rules(args.slo)
                 if args.slo is not None else None)

    def build():
        if args.trace is not None:
            return telemetry.load_chrome_trace(args.trace)
        return telemetry.profile_scenario(
            model=args.model, csds=args.csds, method=args.method,
            gpu=args.gpu, ratio=args.ratio,
            schedule=args.schedule or "phased")

    def build_frame():
        """(report-or-None, rendered text) — never raises on bad input.

        A missing/partial/empty trace is the normal state while a run
        is still warming up, so it renders as "no data yet", not a
        traceback.
        """
        try:
            report = build()
        except (TelemetryError, OSError, ValueError, KeyError) as exc:
            return None, ("bottleneck observatory — no data yet\n"
                          f"  ({exc})\n"
                          "  produce a trace with `python -m repro "
                          "trace`, point --trace at a finished file, or "
                          "drop --trace for sim mode")
        return report, telemetry.render_top(report, slo_rules=slo_rules)

    report, frame = build_frame()
    if args.once:
        print(frame)
    else:
        # Live mode: rebuild (re-reading a --trace file, so a file being
        # rewritten by a concurrent run updates the view) and redraw
        # until interrupted.
        try:
            while True:
                print("\x1b[2J\x1b[H" + frame, flush=True)
                time.sleep(args.interval)
                report, frame = build_frame()
        except KeyboardInterrupt:
            print()
    if report is None:
        # Nothing was attributed; the exports below would have nothing
        # to say either.
        return 0
    if args.jsonl is not None:
        telemetry.write_events_jsonl(args.jsonl, report)
        print(f"[attribution events: {args.jsonl}]")
    if args.metrics:
        registry = telemetry.MetricsRegistry()
        telemetry.record_attribution_metrics(
            registry, report.attribution, source=report.source)
        print()
        print(registry.render_prometheus(), end="")
    return 0


def _cmd_whatif(args) -> int:
    # whatif, like top, shares the engine flag vocabulary but replays a
    # simulated iteration, so every engine-side flag is ignorable.
    ignored = [flag for flag, value in (
        ("--backend", args.backend), ("--workers", args.workers),
        ("--fault-plan", args.fault_plan),
        ("--chaos-seed", args.chaos_seed), ("--slo", args.slo),
        ("--activation-offload", args.activation_offload))
        if value is not None]
    if ignored:
        print(f"[whatif is simulation-only; ignoring "
              f"{', '.join(ignored)} — use health/trace/bench/scenario "
              "to drive the functional engine]")
    schedule = args.schedule or "phased"
    if args.interleave and schedule == "interleaved":
        print("--interleave projects the schedule change from a phased "
              "trace; drop --schedule interleaved (the change is "
              "already applied there)")
        return 2

    scales = []
    for item in args.scale or []:
        channel, sep, factor_text = item.partition("=")
        try:
            factor = float(factor_text) if sep and channel else None
        except ValueError:
            factor = None
        if factor is None or factor <= 0:
            print(f"invalid --scale {item!r}; expected CHANNEL=FACTOR "
                  "with a positive factor")
            return 2
        scales.append((channel, factor))

    workload = make_workload(get_model(args.model))
    system = default_system(num_csds=args.csds, gpu=_GPUS[args.gpu]())
    trace = trace_scenario(system, workload, args.method,
                           compression_ratio=args.ratio,
                           schedule=schedule)
    graph = telemetry.DepGraph.from_channels(trace.fabric.all_channels(),
                                             trace.phase_windows)
    if not graph.nodes:
        print("critical path: no dependency data (the simulated "
              "iteration recorded no transfers)")
        return 0
    known = {channel.name for channel in trace.fabric.all_channels()}
    for channel, _factor in scales:
        if channel not in known:
            print(f"unknown channel {channel!r}; this run has: "
                  f"{', '.join(sorted(known))}")
            return 2

    report = graph.critical_path()
    print(f"what-if observatory — sim:{args.model}/{args.method} "
          f"({args.csds} CSDs, {args.gpu}"
          + ("" if schedule == "phased" else f", {schedule}") + ")")
    print(f"step time {graph.step_seconds:.3f} s")
    print(report.render(top=args.top))

    interventions = [telemetry.scale(channel, factor)
                     for channel, factor in scales]
    if args.add_csds is not None:
        interventions.append(telemetry.add_csds(args.add_csds))
    if args.compression_ratio is not None:
        interventions.append(telemetry.compression_ratio(
            args.compression_ratio, baseline=args.ratio))
    if args.interleave:
        interventions.append(telemetry.interleave())
    if not interventions:
        interventions = telemetry.default_interventions(
            graph, ratio=args.ratio)
    projections = telemetry.rank_interventions(graph, interventions)
    print(telemetry.render_projections(projections))

    validations = []
    exit_code = 0
    if args.validate:
        if args.interleave:
            validation = telemetry.validate_interleave(
                model=args.model, csds=args.csds, method=args.method,
                gpu=args.gpu, ratio=args.ratio)
            validations.append(validation)
            ok = validation.error <= args.max_error
            print(("PASS " if ok else "FAIL ") + validation.render())
            if not ok:
                exit_code = 1
        # Without explicit --scale flags (and not in interleave mode),
        # probe the busiest resource — the one whose projection a
        # reader is most likely to act on.
        targets = scales if (scales or args.interleave) \
            else [(graph.resources()[0], 1.5)]
        for channel, factor in targets:
            validation = telemetry.validate_scale(
                channel, factor, model=args.model, csds=args.csds,
                method=args.method, gpu=args.gpu, ratio=args.ratio)
            validations.append(validation)
            ok = validation.error <= args.max_error
            print(("PASS " if ok else "FAIL ") + validation.render())
            if not ok:
                exit_code = 1
        if exit_code == 0:
            print(f"validation: all projections within "
                  f"{args.max_error:.0%} of the DES re-run")
    if args.jsonl is not None:
        telemetry.write_critpath_jsonl(
            args.jsonl, report, projections=projections,
            validations=validations,
            meta={"source": "sim", "model": args.model,
                  "method": args.method, "csds": args.csds,
                  "gpu": args.gpu, "ratio": args.ratio,
                  "schedule": schedule})
        print(f"[critpath events: {args.jsonl}]")
    return exit_code


def _run_functional_proxy(num_csds: int, method: str, ratio: float,
                          workers: Optional[int] = None,
                          fault_plan: Optional[FaultPlan] = None,
                          steps: int = 1,
                          dump_dir: Optional[str] = None,
                          slo_rules: Optional[list] = None,
                          backend: str = "thread",
                          schedule: str = "phased",
                          activation_offload: str = "recompute") -> dict:
    """Train steps of a tiny model through the functional engine.

    The proxy exists so the exported trace's wall-clock process contains
    real engine / handler / storage spans (worker threads included); the
    model is deliberately tiny because the span *structure*, not the
    duration, is what the timeline view is for.  Per-CSD work defaults
    to one worker per proxy device — regardless of the host's core
    count — so the exported timeline shows the device updates on
    distinct ``csd-worker`` thread lanes.

    With a fault plan, the same run doubles as the chaos smoke: retries,
    backoffs and demotions land in the trace, and the returned dict
    summarizes them (``fault_stats``) alongside the engine's step-health
    view (``health``).  ``dump_dir`` enables automatic flight-recorder
    dumps on incidents; ``slo_rules`` replaces the default SLO rule set.
    """
    import numpy as np

    from .api import create_engine
    from .runtime import TrainingConfig

    rng = np.random.default_rng(0)
    tokens = rng.integers(0, 32, size=(4, 16))
    labels = rng.integers(0, 2, size=4)
    from .nn import SequenceClassifier, bert_config
    model = SequenceClassifier(
        bert_config(vocab_size=32, dim=32, num_layers=2, num_heads=2,
                    max_seq_len=16), num_classes=2, seed=0)
    proxy_csds = min(num_csds, 2)
    config = TrainingConfig(
        optimizer="adam", optimizer_kwargs={"lr": 1e-3},
        subgroup_elements=4096,
        compression_ratio=ratio if method in ("su_o_c", "su_o_c_q")
        else None,
        use_transfer_handler=method != "su",
        parallel_csds=workers if workers else proxy_csds,
        num_csds=proxy_csds,
        parallel_backend=backend,
        schedule=schedule,
        activation_offload=activation_offload,
        fault_plan=fault_plan,
        flight_dump_dir=dump_dir,
        slo_rules=slo_rules)
    with tempfile.TemporaryDirectory() as workdir:
        with create_engine("smart", model, lambda m, t, l: m.loss(t, l),
                           workdir, config=config) as engine:
            for _ in range(steps):
                engine.train_step(tokens, labels)
            return {"fault_stats": engine.fault_stats(),
                    "health": engine.health_summary(),
                    "num_csds": proxy_csds}


def _cmd_trace(args) -> int:
    out = args.out or f"{args.model}-{args.method}.trace.json"
    workload = make_workload(get_model(args.model))
    system = default_system(num_csds=args.csds, gpu=_GPUS[args.gpu]())
    fault_plan = _resolve_fault_plan(args)
    proxy = None
    with telemetry.session() as session:
        with telemetry.trace_span("des.simulate", model=args.model,
                                  method=args.method, csds=args.csds):
            trace = trace_scenario(system, workload, args.method,
                                   compression_ratio=args.ratio,
                                   schedule=args.schedule or "phased")
        if not args.skip_functional:
            with telemetry.trace_span("functional.proxy",
                                      method=args.method,
                                      chaos=fault_plan is not None):
                proxy = _run_functional_proxy(
                    args.csds, args.method, args.ratio,
                    workers=args.workers, fault_plan=fault_plan,
                    steps=3 if fault_plan is not None else 1,
                    dump_dir="flightrec" if fault_plan is not None
                    else None, slo_rules=_resolve_slo_rules(args),
                    backend=args.backend or "thread",
                    schedule=args.schedule or "phased",
                    activation_offload=args.activation_offload
                    or "recompute")
        telemetry.record_channel_metrics(
            session.registry, trace.fabric.all_channels(),
            horizon=trace.breakdown.total, method=args.method)
    telemetry.write_chrome_trace(
        out,
        spans=session.tracer.spans,
        channels=trace.fabric.all_channels(),
        phases=trace.phase_windows,
        metadata={"model": args.model, "method": args.method,
                  "csds": args.csds,
                  "iteration_seconds": trace.breakdown.total})
    print(f"wrote {out}: {len(session.tracer.spans)} wall-clock spans, "
          f"{sum(len(c.records) for c in trace.fabric.all_channels())} "
          f"sim-time transfers, {len(trace.phase_windows)} phase "
          f"window(s)")
    if proxy is not None and fault_plan is not None:
        print(_render_fault_stats(proxy["fault_stats"]))
        for path in proxy["health"].get("dumps", []):
            print(f"[flight dump: {path}]")
    print("open it at https://ui.perfetto.dev or chrome://tracing")
    if args.metrics:
        print()
        print(session.registry.render_prometheus(), end="")
    return 0


def _render_health_report(result: dict) -> str:
    """Render a proxy run's health summary dict for the terminal."""
    health = result["health"]
    signals = health["signals"]
    lines = [f"step-health signals (EWMA over {result['num_csds']}-CSD "
             "proxy run):"]
    if not signals:
        lines.append("  no steps observed")
    else:
        width = max(len(name) for name in signals)
        lines.append(f"  {'signal'.ljust(width)}  {'last':>12}  "
                     f"{'ewma':>12}  samples")
        for name in sorted(signals):
            row = signals[name]
            lines.append(f"  {name.ljust(width)}  {row['last']:>12.4g}  "
                         f"{row['ewma']:>12.4g}  {row['samples']:>7d}")
    lines.append("")
    alerts = health["alerts"]
    if alerts:
        lines.append(f"alerts ({len(alerts)} fired):")
        for alert in alerts:
            step = (f" @step {alert['step']}"
                    if alert.get("step") is not None else "")
            lines.append(f"  [{alert['severity']}] {alert['rule']}{step}: "
                         f"{alert['message']}")
    else:
        lines.append("alerts: none fired")
    flight_stats = health.get("flight")
    if flight_stats:
        lines.append(
            f"flight recorder: {flight_stats['events_retained']} events "
            f"retained of {flight_stats['events_recorded']} recorded "
            f"({flight_stats['events_dropped']} dropped, "
            f"{flight_stats['workers']} worker segment(s))")
    for path in health.get("dumps", []):
        lines.append(f"  [flight dump: {path}]")
    lines.append("")
    lines.append(_render_fault_stats(result["fault_stats"]))
    return "\n".join(lines)


def _cmd_health(args) -> int:
    slo_rules = _resolve_slo_rules(args)
    fault_plan = _resolve_fault_plan(args)

    def probe() -> dict:
        with telemetry.session():
            return _run_functional_proxy(
                args.csds, args.method, args.ratio, workers=args.workers,
                fault_plan=fault_plan, steps=args.steps,
                dump_dir=args.dump_dir, slo_rules=slo_rules,
                backend=args.backend or "thread",
                schedule=args.schedule or "phased",
                activation_offload=args.activation_offload
                or "recompute")

    if args.watch and not args.once:
        try:
            while True:
                print("\x1b[2J\x1b[H" + _render_health_report(probe()),
                      flush=True)
                time.sleep(args.interval)
        except KeyboardInterrupt:
            print()
        return 0
    print(_render_health_report(probe()))
    return 0


def _cmd_experiment(args) -> int:
    registry = {**ALL_EXPERIMENTS, **EXTENSION_EXPERIMENTS}
    print(registry[args.id].run().render())
    return 0


def _cmd_bench(args) -> int:
    from .runtime.bench import render_report, run_parallel_bench

    try:
        csd_counts = tuple(int(part) for part in args.csds.split(",")
                           if part.strip())
    except ValueError:
        print(f"invalid --csds list: {args.csds!r}")
        return 2
    if not csd_counts or any(count < 1 for count in csd_counts):
        print(f"--csds needs positive device counts, got {args.csds!r}")
        return 2
    report = run_parallel_bench(quick=args.quick, out_path=args.out,
                                csd_counts=csd_counts, steps=args.steps,
                                fault_plan=_resolve_fault_plan(args),
                                flight=not args.no_flight,
                                backend=args.backend or "thread",
                                workers=args.workers,
                                slo_rules=_resolve_slo_rules(args),
                                schedule=args.schedule or "phased",
                                activation_offload=args.activation_offload
                                or "recompute")
    print(render_report(report))
    print(f"[saved to {args.out}]")
    if args.compare:
        from .runtime.bench_history import (append_entry,
                                            compare_to_history,
                                            entry_from_report,
                                            load_history, save_history)
        history = load_history(args.history)
        entry = entry_from_report(report)
        # Compare against the history *before* appending, so the run
        # never gates against itself.
        comparison = compare_to_history(
            entry, history, threshold=args.regression_threshold)
        append_entry(history, entry)
        save_history(args.history, history)
        print(comparison.render())
        print(f"[history: {args.history}, "
              f"{len(history['entries'])} entries]")
        if not comparison.ok:
            return 1
    return 0


def _scenario_files(paths: List[str]) -> List[str]:
    """Expand scenario files / directories into a flat sorted list."""
    out: List[str] = []
    for root in (paths or [_BUNDLED_SCENARIO_DIR]):
        if os.path.isdir(root):
            out.extend(sorted(_glob.glob(os.path.join(root, "*.json"))))
        else:
            out.append(root)
    return out


def _render_scenario_report(report) -> str:
    """Per-phase pass/fail for the terminal, failed checks expanded."""
    lines = [f"scenario {report.scenario} (seed {report.seed}): "
             f"{'PASS' if report.passed else 'FAIL'}"]
    for campaign in report.campaigns:
        lines.append(f"  campaign {campaign.label}: "
                     f"{'PASS' if campaign.passed else 'FAIL'}")
        for phase in campaign.phases:
            ok = sum(1 for check in phase.checks if check.ok)
            lines.append(f"    [{'ok' if phase.passed else '!!'}] "
                         f"{phase.name} ({phase.kind}, {phase.steps} "
                         f"step(s), {ok}/{len(phase.checks)} checks)")
            for check in phase.checks:
                if not check.ok:
                    lines.append(f"         failed {check.check}: "
                                 f"expected {check.expected!r}, got "
                                 f"{check.actual!r}")
            if phase.error is not None:
                lines.append(f"         error: {phase.error}")
    if report.log_path is not None:
        lines.append(f"  [event log: {report.log_path} "
                     f"({len(report.events)} events)]")
    return "\n".join(lines)


def _cmd_scenario(args) -> int:
    from .errors import ReproError
    from .scenarios import ScenarioRunner, load_scenario

    files = _scenario_files(args.paths)
    if not files:
        searched = ", ".join(args.paths or [_BUNDLED_SCENARIO_DIR])
        print(f"no scenario files found (searched: {searched}); pass "
              "scenario JSONs or run from a repo checkout")
        return 2
    scenarios = []
    for path in files:
        try:
            scenarios.append((path, load_scenario(path)))
        except (ReproError, OSError) as exc:
            print(f"cannot load scenario {path}: {exc}")
            return 2

    if args.action == "list":
        width = max(len(s.name) for _, s in scenarios)
        print(f"{'name'.ljust(width)}  {'engine':<12} {'seed':>5} "
              f"{'phases':>7} {'campaigns':>9}  description")
        for _, scenario in scenarios:
            print(f"{scenario.name.ljust(width)}  "
                  f"{scenario.engine:<12} {scenario.seed:>5} "
                  f"{len(scenario.phases):>7} "
                  f"{len(scenario.campaign_configs()):>9}  "
                  f"{scenario.description}")
        return 0

    plan = (FaultPlan.from_json_file(args.fault_plan)
            if args.fault_plan is not None else None)

    def build_runner(scenario, workdir=None, log_path=None):
        return ScenarioRunner(
            scenario, workdir=workdir, log_path=log_path,
            backend=args.backend, chaos_seed=args.chaos_seed,
            workers=args.workers, slo_rules=_resolve_slo_rules(args),
            fault_plan=plan, schedule=args.schedule,
            activation_offload=args.activation_offload)

    if args.action == "replay":
        if len(scenarios) != 1 or args.log is None:
            print("replay needs exactly one scenario file and --log "
                  "pointing at a previous run's event log")
            return 2
        try:
            with open(args.log) as handle:
                previous = handle.read()
        except OSError as exc:
            print(f"cannot read --log {args.log}: {exc}")
            return 2
        report = build_runner(scenarios[0][1]).run()
        print(_render_scenario_report(report))
        if report.log_text == previous:
            print(f"replay: event log byte-identical to {args.log} "
                  f"({len(report.events)} events)")
            return 0 if report.passed else 1
        old, new = previous.splitlines(), report.log_text.splitlines()
        for lineno, (a, b) in enumerate(zip(old, new), start=1):
            if a != b:
                print(f"replay: DIVERGED at log line {lineno}:\n"
                      f"  previous: {a}\n  this run: {b}")
                break
        else:
            print(f"replay: DIVERGED — log length differs "
                  f"({len(old)} vs {len(new)} lines)")
        return 1

    # run
    if args.log is not None and len(scenarios) > 1:
        print("--log applies to a single scenario; pass one file or "
              "use --out-dir for per-scenario events.jsonl logs")
        return 2
    failures = 0
    for index, (path, scenario) in enumerate(scenarios):
        if index:
            print()
        workdir = None
        if args.out_dir is not None:
            workdir = os.path.join(args.out_dir, scenario.name)
            os.makedirs(workdir, exist_ok=True)
        report = build_runner(scenario, workdir=workdir,
                              log_path=args.log).run()
        print(_render_scenario_report(report))
        failures += 0 if report.passed else 1
    if len(scenarios) > 1:
        print(f"\n{len(scenarios) - failures}/{len(scenarios)} "
              "scenario(s) passed")
    return 1 if failures else 0


def _cmd_sweep(args) -> int:
    if args.axis == "devices":
        rows = sweep_devices(args.model,
                             counts=range(1, args.max_devices + 1),
                             method=args.method)
        print(render_sweep(rows, "#devices"))
    elif args.axis == "model":
        from .nn.models import models_by_family
        names = [spec.name for spec in models_by_family("gpt2")]
        rows = sweep_models(names, method=args.method)
        print(render_sweep(rows, "model"))
    else:
        rows = sweep_ratios(args.model, ratios=(0.01, 0.02, 0.05, 0.10))
        print(render_sweep(rows, "ratio"))
    return 0


_HANDLERS = {
    "list-models": _cmd_list_models,
    "sweep": _cmd_sweep,
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "top": _cmd_top,
    "whatif": _cmd_whatif,
    "health": _cmd_health,
    "experiment": _cmd_experiment,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "scenario": _cmd_scenario,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
