"""Command-line interface.

Four subcommands::

    python -m repro list-models
    python -m repro simulate --model gpt2-8.4b --csds 10 --method su_o_c
    python -m repro analyze --model gpt2-8.4b --csds 10
    python -m repro experiment fig9

``experiment`` regenerates any paper table/figure by id; ``simulate``
runs a single DES configuration; ``analyze`` prints the per-channel
bottleneck attribution for every method on one machine.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS
from .hw.gpu import a100_40g, a4000, a5000
from .hw.topology import default_system
from .nn.models import ZOO, get_model
from .perf.analysis import compare_bottlenecks
from .perf.scenarios import EXTENSION_METHODS, METHODS, simulate_iteration
from .perf.sweeps import render_sweep, sweep_devices, sweep_models, \
    sweep_ratios
from .perf.workload import make_workload

_GPUS = {"a5000": a5000, "a100": a100_40g, "a4000": a4000}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Smart-Infinity (HPCA 2024) reproduction toolkit")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list-models",
                        help="list the analytic model zoo")

    simulate = commands.add_parser(
        "simulate", help="simulate one training iteration")
    simulate.add_argument("--model", default="gpt2-4.0b")
    simulate.add_argument("--csds", type=int, default=10)
    simulate.add_argument("--method", default="su_o_c",
                          choices=METHODS + EXTENSION_METHODS)
    simulate.add_argument("--gpu", default="a5000", choices=sorted(_GPUS))
    simulate.add_argument("--batch-size", type=int, default=4)
    simulate.add_argument("--optimizer", default="adam")
    simulate.add_argument("--ratio", type=float, default=0.02,
                          help="SmartComp volume ratio")

    analyze = commands.add_parser(
        "analyze", help="per-channel bottleneck attribution")
    analyze.add_argument("--model", default="gpt2-4.0b")
    analyze.add_argument("--csds", type=int, default=10)
    analyze.add_argument("--gpu", default="a5000", choices=sorted(_GPUS))
    analyze.add_argument("--timeline", action="store_true",
                         help="render an ASCII occupancy timeline of the "
                              "baseline and SU+O+C runs")

    sweep = commands.add_parser(
        "sweep", help="sweep one axis and tabulate speedups")
    sweep.add_argument("axis", choices=("devices", "model", "ratio"))
    sweep.add_argument("--model", default="gpt2-4.0b")
    sweep.add_argument("--max-devices", type=int, default=10)
    sweep.add_argument("--method", default="su_o_c",
                       choices=METHODS[1:] + EXTENSION_METHODS)

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table/figure")
    experiment.add_argument(
        "id",
        choices=sorted(ALL_EXPERIMENTS) + sorted(EXTENSION_EXPERIMENTS),
        help="experiment id (e.g. fig9, table1, ext_bottlenecks)")
    return parser


def _cmd_list_models(_args) -> int:
    print(f"{'name':<14} {'family':<8} {'params':>10} {'dim':>6} "
          f"{'layers':>7}")
    for name in sorted(ZOO):
        spec = ZOO[name]
        print(f"{name:<14} {spec.family:<8} {spec.billions:>9.2f}B "
              f"{spec.hidden_dim:>6} {spec.num_layers:>7}")
    return 0


def _cmd_simulate(args) -> int:
    workload = make_workload(get_model(args.model),
                             batch_size=args.batch_size,
                             optimizer=args.optimizer)
    system = default_system(num_csds=args.csds, gpu=_GPUS[args.gpu]())
    breakdown = simulate_iteration(system, workload, args.method,
                                   compression_ratio=args.ratio)
    base = simulate_iteration(system, workload, "baseline")
    print(f"model {args.model}, {args.csds} device(s), {args.gpu}, "
          f"method {args.method}")
    print(f"  FW              {breakdown.forward:8.3f} s")
    print(f"  BW + grad       {breakdown.backward_grad:8.3f} s")
    print(f"  update + opt    {breakdown.update:8.3f} s")
    print(f"  iteration       {breakdown.total:8.3f} s")
    if args.method != "baseline":
        print(f"  speedup vs BASE {breakdown.speedup_over(base):8.2f} x")
    return 0


def _cmd_analyze(args) -> int:
    workload = make_workload(get_model(args.model))
    system = default_system(num_csds=args.csds, gpu=_GPUS[args.gpu]())
    for method, analysis in compare_bottlenecks(system, workload).items():
        print(analysis.render())
        print()
    if args.timeline:
        from .perf.scenarios import run_scenario
        from .sim.trace import render_timeline
        for method in ("baseline", "su_o_c"):
            breakdown, fabric = run_scenario(system, workload, method)
            channels = [fabric.link_up, fabric.link_down, fabric.cpu,
                        fabric.devices[0].nand_read,
                        fabric.devices[0].nand_write,
                        fabric.devices[0].fpga_updater]
            print(f"--- {method} ---")
            print(render_timeline(channels, horizon=breakdown.total))
            print()
    return 0


def _cmd_experiment(args) -> int:
    registry = {**ALL_EXPERIMENTS, **EXTENSION_EXPERIMENTS}
    print(registry[args.id].run().render())
    return 0


def _cmd_sweep(args) -> int:
    if args.axis == "devices":
        rows = sweep_devices(args.model,
                             counts=range(1, args.max_devices + 1),
                             method=args.method)
        print(render_sweep(rows, "#devices"))
    elif args.axis == "model":
        from .nn.models import models_by_family
        names = [spec.name for spec in models_by_family("gpt2")]
        rows = sweep_models(names, method=args.method)
        print(render_sweep(rows, "model"))
    else:
        rows = sweep_ratios(args.model, ratios=(0.01, 0.02, 0.05, 0.10))
        print(render_sweep(rows, "ratio"))
    return 0


_HANDLERS = {
    "list-models": _cmd_list_models,
    "sweep": _cmd_sweep,
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "experiment": _cmd_experiment,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
