"""Flat-array optimizers matching the FPGA updater's element-wise form."""

from .adagrad import AdaGrad
from .adam import Adam, AdamW
from .base import FlatOptimizer, ModuleOptimizer, StateDict
from .schedule import (Schedule, constant_schedule, cosine_warmup_decay,
                       linear_warmup_decay, make_schedule)
from .sgd import SGDMomentum

#: Registry used by the runtime and the CSD kernel templates.
OPTIMIZERS = {
    "adam": Adam,
    "adamw": AdamW,
    "sgd": SGDMomentum,
    "adagrad": AdaGrad,
}


def make_optimizer(name: str, **kwargs) -> FlatOptimizer:
    """Instantiate an optimizer by registry name."""
    try:
        cls = OPTIMIZERS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(OPTIMIZERS))
        raise KeyError(f"unknown optimizer {name!r}; known: {known}")
    return cls(**kwargs)


__all__ = [
    "AdaGrad",
    "Adam",
    "AdamW",
    "FlatOptimizer",
    "ModuleOptimizer",
    "OPTIMIZERS",
    "SGDMomentum",
    "Schedule",
    "StateDict",
    "constant_schedule",
    "cosine_warmup_decay",
    "linear_warmup_decay",
    "make_optimizer",
    "make_schedule",
]
