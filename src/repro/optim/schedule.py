"""Learning-rate schedules for fine-tuning runs.

The Table IV fine-tuning recipes (BERT/GPT-2 on GLUE) use linear warmup
followed by decay; a constant and a cosine variant are included.  A
schedule is a pure function ``step -> learning rate`` (1-based steps), so
it composes with any engine: the trainer assigns ``optimizer.lr`` before
each update, and because every engine applies the same schedule the
bit-identity guarantees are preserved.
"""

from __future__ import annotations

import math
from typing import Callable

from ..errors import TrainingError

Schedule = Callable[[int], float]


def constant_schedule(base_lr: float) -> Schedule:
    """Always ``base_lr``."""
    if base_lr <= 0:
        raise TrainingError("base_lr must be positive")
    return lambda step: base_lr


def linear_warmup_decay(base_lr: float, warmup_steps: int,
                        total_steps: int,
                        final_fraction: float = 0.0) -> Schedule:
    """Linear ramp to ``base_lr`` over ``warmup_steps``, then linear decay
    to ``final_fraction * base_lr`` at ``total_steps``."""
    if base_lr <= 0:
        raise TrainingError("base_lr must be positive")
    if warmup_steps < 0 or total_steps <= warmup_steps:
        raise TrainingError(
            "need 0 <= warmup_steps < total_steps, got "
            f"{warmup_steps}/{total_steps}")
    if not 0.0 <= final_fraction <= 1.0:
        raise TrainingError("final_fraction must be in [0, 1]")

    def schedule(step: int) -> float:
        if step <= warmup_steps:
            return base_lr * step / max(warmup_steps, 1)
        progress = (step - warmup_steps) / (total_steps - warmup_steps)
        progress = min(progress, 1.0)
        return base_lr * (1.0 - (1.0 - final_fraction) * progress)

    return schedule


def cosine_warmup_decay(base_lr: float, warmup_steps: int,
                        total_steps: int,
                        final_fraction: float = 0.0) -> Schedule:
    """Linear warmup, then cosine decay to ``final_fraction * base_lr``."""
    if base_lr <= 0:
        raise TrainingError("base_lr must be positive")
    if warmup_steps < 0 or total_steps <= warmup_steps:
        raise TrainingError(
            "need 0 <= warmup_steps < total_steps, got "
            f"{warmup_steps}/{total_steps}")

    def schedule(step: int) -> float:
        if step <= warmup_steps:
            return base_lr * step / max(warmup_steps, 1)
        progress = (step - warmup_steps) / (total_steps - warmup_steps)
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return base_lr * (final_fraction
                          + (1.0 - final_fraction) * cosine)

    return schedule


_SCHEDULES = {
    "constant": constant_schedule,
    "linear": linear_warmup_decay,
    "cosine": cosine_warmup_decay,
}


def make_schedule(kind: str, base_lr: float, **kwargs) -> Schedule:
    """Build a schedule by name (``constant`` / ``linear`` / ``cosine``)."""
    try:
        factory = _SCHEDULES[kind.lower()]
    except KeyError:
        known = ", ".join(sorted(_SCHEDULES))
        raise KeyError(f"unknown schedule {kind!r}; known: {known}")
    return factory(base_lr, **kwargs)
