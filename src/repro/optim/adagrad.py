"""AdaGrad (Duchi et al., 2011) — the other §VII-F optimizer (4M state)."""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError
from .base import FlatOptimizer, StateDict


class AdaGrad(FlatOptimizer):
    """Accumulated squared-gradient scaling: ``G += g^2; p -= lr*g/sqrt(G)``."""

    state_names = ("accumulator",)

    def __init__(self, lr: float = 1e-2, eps: float = 1e-10) -> None:
        super().__init__(lr)
        if eps <= 0:
            raise TrainingError("eps must be positive")
        self.eps = np.float32(eps)

    def step(self, params: np.ndarray, grads: np.ndarray, state: StateDict,
             step_num: int) -> None:
        self.check(params, grads, state)
        accumulator = state["accumulator"]
        accumulator += grads * grads
        params -= np.float32(self.lr) * grads / (
            np.sqrt(accumulator) + self.eps)
