"""AdaGrad (Duchi et al., 2011) — the other §VII-F optimizer (4M state)."""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError
from .base import FlatOptimizer, StateDict, scratch_buffers


class AdaGrad(FlatOptimizer):
    """Accumulated squared-gradient scaling: ``G += g^2; p -= lr*g/sqrt(G)``.

    Fused in place against two arena scratch vectors, preserving the
    original left-to-right evaluation order (``lr * g`` first, then the
    divide) so results stay bit-identical.
    """

    state_names = ("accumulator",)

    def __init__(self, lr: float = 1e-2, eps: float = 1e-10) -> None:
        super().__init__(lr)
        if eps <= 0:
            raise TrainingError("eps must be positive")
        self.eps = np.float32(eps)

    def step(self, params: np.ndarray, grads: np.ndarray, state: StateDict,
             step_num: int) -> None:
        self.check(params, grads, state)
        accumulator = state["accumulator"]
        with scratch_buffers(params.size, 2) as (t1, t2):
            np.multiply(grads, grads, out=t1)
            accumulator += t1
            np.sqrt(accumulator, out=t2)
            t2 += self.eps
            np.multiply(grads, np.float32(self.lr), out=t1)
            t1 /= t2
            params -= t1
