"""Optimizer interface over flat float32 arrays.

Storage-offloaded training flattens the whole model into one parameter
address space (§IV-D of the paper) and updates it subgroup by subgroup, so
optimizers here operate on **flat float32 arrays in place** rather than on
module trees.  The same step function is executed by three different
engines in this reproduction — the host-CPU baseline, the functional CSD
FPGA kernel, and plain in-memory training — which is what lets the tests
assert the paper's claim that SmartUpdate is *algorithmically identical* to
the baseline (bit-identical results).

All state arrays are float32, matching mixed-precision practice (the FP32
master parameters are part of the optimizer state; the FP16 working copy is
derived from them after each step).
"""

from __future__ import annotations

import abc
import contextlib
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..errors import TrainingError
from ..memory import thread_arena

StateDict = Dict[str, np.ndarray]


@contextlib.contextmanager
def scratch_buffers(num_elements: int,
                    count: int) -> Iterator[List[np.ndarray]]:
    """Check out ``count`` float32 scratch vectors from the per-thread
    arena.

    The fused in-place optimizer kernels stage their temporaries here
    instead of allocating fresh ndarrays per ``step()`` call, so at
    steady state an update pass performs zero allocations — each engine
    worker thread reuses the same size-classed blocks every subgroup.
    Contents are undefined on entry (like ``np.empty``).
    """
    arena = thread_arena()
    buffers = [arena.acquire(num_elements) for _ in range(count)]
    try:
        yield buffers
    finally:
        for buffer in buffers:
            arena.release(buffer)


class FlatOptimizer(abc.ABC):
    """Base class: an element-wise update rule over flat arrays."""

    #: Names of the auxiliary state arrays (besides the master parameters).
    state_names: Tuple[str, ...] = ()

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    @property
    def states_per_param(self) -> int:
        """FP32 words stored per parameter: master copy + moments.

        Adam stores 3 (the paper's 6M = 3 x 4 bytes x params relative to
        the 2-byte FP16 copy M); SGD-momentum and AdaGrad store 2 (4M).
        """
        return 1 + len(self.state_names)

    def init_state(self, num_params: int) -> StateDict:
        """Freshly zeroed auxiliary state for ``num_params`` parameters."""
        if num_params <= 0:
            raise TrainingError("num_params must be positive")
        return {name: np.zeros(num_params, dtype=np.float32)
                for name in self.state_names}

    def check(self, params: np.ndarray, grads: np.ndarray,
              state: StateDict) -> None:
        """Validate shapes/dtypes before an update."""
        if params.dtype != np.float32 or grads.dtype != np.float32:
            raise TrainingError("params and grads must be float32")
        if params.shape != grads.shape or params.ndim != 1:
            raise TrainingError(
                f"flat shapes must match: {params.shape} vs {grads.shape}")
        for name in self.state_names:
            if name not in state:
                raise TrainingError(f"missing optimizer state {name!r}")
            if state[name].shape != params.shape:
                raise TrainingError(
                    f"state {name!r} shape {state[name].shape} != "
                    f"{params.shape}")

    @abc.abstractmethod
    def step(self, params: np.ndarray, grads: np.ndarray, state: StateDict,
             step_num: int) -> None:
        """Apply one update in place.  ``step_num`` starts at 1."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lr={self.lr})"


class ModuleOptimizer:
    """Adapter applying a :class:`FlatOptimizer` to a module's parameters.

    Used for plain (non-offloaded) training in tests and examples; each
    parameter keeps its own flat state slice.
    """

    def __init__(self, module, optimizer: FlatOptimizer) -> None:
        self.module = module
        self.optimizer = optimizer
        self._step = 0
        self._state = {
            name: optimizer.init_state(param.size)
            for name, param in module.named_parameters()
        }

    @property
    def step_count(self) -> int:
        return self._step

    def step(self) -> None:
        """Update every parameter from its accumulated gradient."""
        self._step += 1
        for name, param in self.module.named_parameters():
            if param.grad is None:
                continue
            flat = param.data.reshape(-1).astype(np.float32)
            grad = param.grad.reshape(-1).astype(np.float32)
            self.optimizer.step(flat, grad, self._state[name], self._step)
            param.data = flat.reshape(param.data.shape)

    def zero_grad(self) -> None:
        self.module.zero_grad()
