"""Adam and AdamW update rules (the paper's primary optimizer).

The update is written as a fixed sequence of element-wise vector operations
— the exact shape the FPGA updater's SIMD AXPBY units execute (§V-A).  The
CSD kernel implementation in `repro.csd.kernels` replays this same sequence
chunk by chunk, so results are bit-identical by construction, and the test
suite asserts it.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError
from .base import FlatOptimizer, StateDict


class Adam(FlatOptimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    state_names = ("momentum", "variance")

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__(lr)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise TrainingError("betas must be in [0, 1)")
        if eps <= 0:
            raise TrainingError("eps must be positive")
        self.beta1 = np.float32(beta1)
        self.beta2 = np.float32(beta2)
        self.eps = np.float32(eps)

    def step(self, params: np.ndarray, grads: np.ndarray, state: StateDict,
             step_num: int) -> None:
        self.check(params, grads, state)
        momentum = state["momentum"]
        variance = state["variance"]
        one = np.float32(1.0)

        # AXPBY: m = beta1 * m + (1 - beta1) * g
        momentum *= self.beta1
        momentum += (one - self.beta1) * grads
        # AXPBY: v = beta2 * v + (1 - beta2) * g^2
        variance *= self.beta2
        variance += (one - self.beta2) * (grads * grads)

        correction1 = one - self.beta1 ** np.float32(step_num)
        correction2 = one - self.beta2 ** np.float32(step_num)
        m_hat = momentum / correction1
        v_hat = variance / correction2
        params -= np.float32(self.lr) * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.01) -> None:
        super().__init__(lr=lr, beta1=beta1, beta2=beta2, eps=eps)
        if weight_decay < 0:
            raise TrainingError("weight decay must be non-negative")
        self.weight_decay = np.float32(weight_decay)

    def step(self, params: np.ndarray, grads: np.ndarray, state: StateDict,
             step_num: int) -> None:
        # Decoupled decay applies directly to the parameters, before the
        # Adam moment update.
        params -= np.float32(self.lr) * self.weight_decay * params
        super().step(params, grads, state, step_num)
