"""Adam and AdamW update rules (the paper's primary optimizer).

The update is written as a fixed sequence of element-wise vector operations
— the exact shape the FPGA updater's SIMD AXPBY units execute (§V-A).  The
CSD kernel implementation in `repro.csd.kernels` replays this same sequence
chunk by chunk, so results are bit-identical by construction, and the test
suite asserts it.

Every operation runs **in place** (``out=``) against two arena-owned
scratch vectors, so a steady-state step allocates nothing: the fused
sequence is the same arithmetic in the same order as the textbook form —
the only difference is where the intermediates live — which keeps results
bit-identical to the original expression-per-line implementation (scalar
multiplication is commutative bit-for-bit, and the operation order is
preserved exactly; asserted by the zero-copy property tests).
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError
from .base import FlatOptimizer, StateDict, scratch_buffers


class Adam(FlatOptimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    state_names = ("momentum", "variance")

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__(lr)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise TrainingError("betas must be in [0, 1)")
        if eps <= 0:
            raise TrainingError("eps must be positive")
        self.beta1 = np.float32(beta1)
        self.beta2 = np.float32(beta2)
        self.eps = np.float32(eps)

    def step(self, params: np.ndarray, grads: np.ndarray, state: StateDict,
             step_num: int) -> None:
        self.check(params, grads, state)
        momentum = state["momentum"]
        variance = state["variance"]
        one = np.float32(1.0)

        with scratch_buffers(params.size, 2) as (t1, t2):
            # AXPBY: m = beta1 * m + (1 - beta1) * g
            momentum *= self.beta1
            np.multiply(grads, one - self.beta1, out=t1)
            momentum += t1
            # AXPBY: v = beta2 * v + (1 - beta2) * g^2
            variance *= self.beta2
            np.multiply(grads, grads, out=t1)
            t1 *= one - self.beta2
            variance += t1

            correction1 = one - self.beta1 ** np.float32(step_num)
            correction2 = one - self.beta2 ** np.float32(step_num)
            # t1 = m_hat = m / correction1; t2 = sqrt(v_hat) + eps
            np.divide(momentum, correction1, out=t1)
            np.divide(variance, correction2, out=t2)
            np.sqrt(t2, out=t2)
            t2 += self.eps
            # p -= (lr * m_hat) / (sqrt(v_hat) + eps), in original order
            t1 *= np.float32(self.lr)
            t1 /= t2
            params -= t1


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.01) -> None:
        super().__init__(lr=lr, beta1=beta1, beta2=beta2, eps=eps)
        if weight_decay < 0:
            raise TrainingError("weight decay must be non-negative")
        self.weight_decay = np.float32(weight_decay)

    def step(self, params: np.ndarray, grads: np.ndarray, state: StateDict,
             step_num: int) -> None:
        # Decoupled decay applies directly to the parameters, before the
        # Adam moment update (scalar product lr * wd folded first, as the
        # original left-to-right expression evaluated it).
        with scratch_buffers(params.size, 1) as (t1,):
            np.multiply(params, np.float32(self.lr) * self.weight_decay,
                        out=t1)
            params -= t1
        super().step(params, grads, state, step_num)
