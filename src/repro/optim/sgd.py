"""SGD with momentum (§VII-F: a 4M-state optimizer, 3/4 of Adam's volume)."""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError
from .base import FlatOptimizer, StateDict, scratch_buffers


class SGDMomentum(FlatOptimizer):
    """Heavy-ball SGD: ``m = mu * m + g; p -= lr * m``.

    Fused in place against one arena scratch vector; ``lr * m`` is a
    scalar-array product, so staging it with ``out=`` is bit-identical to
    the expression form.
    """

    state_names = ("momentum",)

    def __init__(self, lr: float = 1e-2, momentum: float = 0.9) -> None:
        super().__init__(lr)
        if not 0 <= momentum < 1:
            raise TrainingError("momentum must be in [0, 1)")
        self.momentum = np.float32(momentum)

    def step(self, params: np.ndarray, grads: np.ndarray, state: StateDict,
             step_num: int) -> None:
        self.check(params, grads, state)
        buf = state["momentum"]
        # AXPBY: m = mu * m + 1.0 * g
        buf *= self.momentum
        buf += grads
        with scratch_buffers(params.size, 1) as (t1,):
            np.multiply(buf, np.float32(self.lr), out=t1)
            params -= t1
