"""Quickstart: train a tiny transformer with Smart-Infinity.

Runs the same model through the ZeRO-Infinity-style baseline engine and
the Smart-Infinity engine (SmartUpdate on functional CSDs), then shows the
paper's two headline functional properties:

* the loss trajectories are bit-identical (SmartUpdate is algorithmically
  identical to the baseline), and
* host-interconnect traffic drops 4x (8M -> 2M in each direction).

Usage::

    python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro import TrainingConfig, create_engine
from repro.nn import SequenceClassifier, bert_config, \
    make_classification_dataset


def loss_fn(model, tokens, labels):
    return model.loss(tokens, labels)


def make_model():
    config = bert_config(vocab_size=64, dim=48, num_layers=2, num_heads=4,
                         max_seq_len=32)
    return SequenceClassifier(config, num_classes=3, seed=42)


def train(engine, dataset, epochs=3, batch_size=8):
    losses = []
    for epoch in range(epochs):
        rng = np.random.default_rng(epoch)
        for tokens, labels in dataset.batches(batch_size, rng):
            result = engine.train_step(tokens, labels)
            losses.append(result.loss)
    return losses


def main():
    dataset = make_classification_dataset(num_train=128, num_dev=64,
                                          seq_len=32, vocab_size=64,
                                          seed=0)
    config = TrainingConfig(optimizer="adam",
                            optimizer_kwargs={"lr": 5e-3},
                            subgroup_elements=8192,
                            raid_members=2, num_csds=4)

    with tempfile.TemporaryDirectory() as workdir:
        baseline = create_engine("baseline", make_model(), loss_fn,
                                 f"{workdir}/base", config=config)
        base_losses = train(baseline, dataset)
        base_traffic = baseline.meter.iterations[-1]
        baseline.close()

        smart = create_engine("smart", make_model(), loss_fn,
                              f"{workdir}/smart", config=config)
        smart_losses = train(smart, dataset)
        smart_traffic = smart.meter.iterations[-1]
        smart.close()

    print(f"model parameters:        {baseline.num_params:,}")
    print(f"baseline loss:           {base_losses[0]:.4f} -> "
          f"{base_losses[-1]:.4f}")
    print(f"smart-infinity loss:     {smart_losses[0]:.4f} -> "
          f"{smart_losses[-1]:.4f}")
    print(f"bit-identical training:  {base_losses == smart_losses}")
    print(f"baseline host traffic:   {base_traffic.host_total:,} B/iter")
    print(f"smart host traffic:      {smart_traffic.host_total:,} B/iter "
          f"({base_traffic.host_total / smart_traffic.host_total:.1f}x "
          "less)")
    print(f"moved to CSD-internal:   {smart_traffic.internal_total:,} "
          "B/iter")
    assert base_losses == smart_losses


if __name__ == "__main__":
    main()
