"""Extending Smart-Infinity with a custom optimizer kernel (Fig. 8 flow).

The paper ships HLS templates so users can deploy their own updater logic
on the CSD FPGA.  This example walks the same flow in the functional
framework with the Lion optimizer (Chen et al., 2023 — sign-momentum, a
single state word per parameter):

1. implement the update rule as a :class:`FlatOptimizer`;
2. run the template's **sanity checker** (chunked kernel must match the
   flat host reference bitwise);
3. compose an accelerator **design** and check it fits the KU15P;
4. train through the Smart-Infinity engine using the custom kernel.

Usage::

    python examples/custom_optimizer_kernel.py
"""

import tempfile

import numpy as np

from repro import TrainingConfig, create_engine
from repro.csd import sanity_check_updater, updater_design
from repro.csd.hls import (AXPBY_LANE, KernelDesign, PE_BUFFERS, SHELL,
                           UPDATER_CONTROL)
from repro.hw import ku15p
from repro.nn import SequenceClassifier, bert_config, \
    make_classification_dataset
from repro.optim import OPTIMIZERS
from repro.optim.base import FlatOptimizer


class Lion(FlatOptimizer):
    """Lion: sign of an interpolated momentum, one state word (2M)."""

    state_names = ("momentum",)

    def __init__(self, lr=1e-3, beta1=0.9, beta2=0.99):
        super().__init__(lr)
        self.beta1 = np.float32(beta1)
        self.beta2 = np.float32(beta2)

    def step(self, params, grads, state, step_num):
        self.check(params, grads, state)
        momentum = state["momentum"]
        one = np.float32(1.0)
        # Update direction: sign(beta1 * m + (1 - beta1) * g).
        direction = np.sign(self.beta1 * momentum
                            + (one - self.beta1) * grads)
        params -= np.float32(self.lr) * direction
        # AXPBY: m = beta2 * m + (1 - beta2) * g.
        momentum *= self.beta2
        momentum += (one - self.beta2) * grads


def lion_design() -> KernelDesign:
    """Lion needs two AXPBY lanes plus a sign unit per PE."""
    modules = {"shell": SHELL, "control": UPDATER_CONTROL}
    pe = PE_BUFFERS + AXPBY_LANE + AXPBY_LANE
    total = pe
    for _ in range(15):
        total = total + pe
    modules["updater[lion x16PE]"] = total
    return KernelDesign(name="lion-updater", modules=modules)


def loss_fn(model, tokens, labels):
    return model.loss(tokens, labels)


def main():
    # 1. Register the optimizer so engines can instantiate it by name.
    OPTIMIZERS.setdefault("lion", Lion)

    # 2. Sanity-check: chunked FPGA execution == flat host reference.
    sanity_check_updater(Lion(lr=1e-3), num_elements=4096, num_steps=3,
                         chunk_elements=128)
    print("sanity check: chunked Lion kernel is bit-identical to host")

    # 3. Resource estimation against the SmartSSD's KU15P.
    design = lion_design()
    fpga = ku15p()
    utilization = design.utilization(fpga)
    print(f"design {design.name!r} fits KU15P: {design.fits(fpga)}")
    for resource, percent in utilization.items():
        print(f"  {resource:<5} {percent:6.2f}%")
    adam = updater_design("adam")
    print(f"(Adam for comparison: "
          f"LUT {adam.utilization(fpga)['LUT']:.2f}%)")

    # 4. Train through the Smart-Infinity engine with the custom kernel.
    dataset = make_classification_dataset(num_train=128, num_dev=64,
                                          seq_len=32, vocab_size=64,
                                          seed=2)
    model = SequenceClassifier(
        bert_config(vocab_size=64, dim=48, num_layers=2, num_heads=4,
                    max_seq_len=32), num_classes=3, seed=3)
    config = TrainingConfig(optimizer="lion",
                            optimizer_kwargs={"lr": 3e-4},
                            subgroup_elements=8192, num_csds=3)
    with tempfile.TemporaryDirectory() as workdir:
        engine = create_engine("smart", model, loss_fn, workdir,
                               config=config)
        losses = []
        for epoch in range(4):
            rng = np.random.default_rng(epoch)
            for tokens, labels in dataset.batches(8, rng):
                losses.append(engine.train_step(tokens, labels).loss)
        engine.close()
    print(f"Lion training loss: {losses[0]:.4f} -> {losses[-1]:.4f}")
    print(f"Lion stores {Lion().states_per_param} fp32 words/param "
          f"(Adam stores 3) -> even less CSD-internal traffic")


if __name__ == "__main__":
    main()
