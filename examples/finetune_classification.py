"""Fine-tuning with SmartComp: accuracy vs compression ratio (Table IV).

Fine-tunes a small transformer classifier on a synthetic GLUE-style task
through the functional Smart-Infinity engine, sweeping the Top-K gradient
compression ratio.  SmartUpdate without compression matches the baseline
accuracy exactly; compressed runs trade a little accuracy for less
gradient traffic — the paper's Table IV result in miniature.

Usage::

    python examples/finetune_classification.py
"""

import tempfile

import numpy as np

from repro import TrainingConfig, create_engine
from repro.nn import functional as F
from repro.nn import SequenceClassifier, bert_config, \
    make_classification_dataset

RATIOS = (None, 0.10, 0.05, 0.02)
EPOCHS = 4


def loss_fn(model, tokens, labels):
    return model.loss(tokens, labels)


def make_model():
    config = bert_config(vocab_size=64, dim=48, num_layers=2, num_heads=4,
                         max_seq_len=32)
    return SequenceClassifier(config, num_classes=3, seed=11)


def dev_accuracy(model, dataset):
    model.eval()
    accuracy = F.accuracy(model(dataset.dev_tokens), dataset.dev_labels)
    model.train()
    return accuracy


def finetune(dataset, method, ratio=None):
    config = TrainingConfig(optimizer="adam",
                            optimizer_kwargs={"lr": 5e-3},
                            subgroup_elements=8192,
                            compression_ratio=ratio,
                            raid_members=2, num_csds=3)
    model = make_model()
    with tempfile.TemporaryDirectory() as workdir:
        mode = "baseline" if method == "baseline" else "smart"
        engine = create_engine(mode, model, loss_fn, workdir,
                               config=config)
        grad_bytes = 0
        for epoch in range(EPOCHS):
            rng = np.random.default_rng(100 + epoch)
            for tokens, labels in dataset.batches(8, rng):
                result = engine.train_step(tokens, labels)
                grad_bytes = result.traffic.host_writes
        accuracy = dev_accuracy(model, dataset)
        engine.close()
    return accuracy, grad_bytes


def main():
    dataset = make_classification_dataset(
        name="synth-sst2", num_train=256, num_dev=128, seq_len=32,
        vocab_size=64, num_classes=3, noise=0.03, seed=5)

    print(f"{'method':<18} {'dev accuracy':>12} {'grad offload/iter':>18}")
    print("-" * 50)
    base_acc, base_bytes = finetune(dataset, "baseline")
    print(f"{'baseline':<18} {base_acc:>11.1%} {base_bytes:>17,} B")
    for ratio in RATIOS:
        label = "SU+O" if ratio is None else f"SU+O+C ({ratio:.0%})"
        accuracy, grad_bytes = finetune(dataset, "smart", ratio)
        marker = "  (== baseline)" if accuracy == base_acc and \
            ratio is None else ""
        print(f"{label:<18} {accuracy:>11.1%} {grad_bytes:>17,} B"
              f"{marker}")


if __name__ == "__main__":
    main()
