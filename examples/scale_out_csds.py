"""Scale-out study: how speedup grows with the number of CSDs (Fig. 11).

Uses the discrete-event performance model to sweep 1-10 devices for a
paper-scale GPT-2 and prints the baseline-vs-Smart-Infinity scaling table
plus a per-phase breakdown at ten devices — the shape of the paper's
Fig. 11: the baseline saturates at the shared PCIe interconnect while
Smart-Infinity rides the aggregate CSD-internal bandwidth.

Usage::

    python examples/scale_out_csds.py [model-name]
"""

import sys

from repro.hw import default_system
from repro.nn import get_model
from repro.perf import make_workload, simulate_iteration


def main():
    model_name = sys.argv[1] if len(sys.argv) > 1 else "gpt2-4.0b"
    workload = make_workload(get_model(model_name), batch_size=4)
    print(f"model: {model_name} "
          f"({workload.num_params / 1e9:.2f}B parameters)")
    print(f"per-iteration optimizer-state traffic: "
          f"{workload.optimizer_state_bytes / 1e9:.1f} GB")
    print()

    print(f"{'#CSDs':>5} {'BASE iter':>10} {'Smart iter':>11} "
          f"{'speedup':>8}")
    reference = None
    for count in range(1, 11):
        system = default_system(num_csds=count)
        base = simulate_iteration(system, workload, "baseline")
        smart = simulate_iteration(system, workload, "su_o_c")
        reference = reference or base.total
        print(f"{count:>5} {base.total:>9.2f}s {smart.total:>10.2f}s "
              f"{base.total / smart.total:>7.2f}x")

    print()
    system = default_system(num_csds=10)
    print("phase breakdown at 10 devices (seconds):")
    print(f"{'method':<10} {'FW':>6} {'BW+Grad':>8} {'Update':>7} "
          f"{'total':>7}")
    for method in ("baseline", "su", "su_o", "su_o_c"):
        breakdown = simulate_iteration(system, workload, method)
        print(f"{method:<10} {breakdown.forward:>6.2f} "
              f"{breakdown.backward_grad:>8.2f} "
              f"{breakdown.update:>7.2f} {breakdown.total:>7.2f}")


if __name__ == "__main__":
    main()
