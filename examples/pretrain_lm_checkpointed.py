"""LM pre-training with the full Smart-Infinity feature set.

The scenario the paper's introduction motivates: next-token training of a
GPT-style decoder when the optimizer states do not fit above the storage
tier.  This example stacks every feature of the reproduction:

* block-wise **activation checkpointing** (Fig. 1's dataflow) via a
  one-line loss_fn swap;
* **gradient accumulation** over micro-batches;
* **linear warmup + decay** learning-rate schedule;
* **SmartComp** Top-K gradient compression with error feedback;
* a **checkpoint** at the end that could resume under any engine.

Usage::

    python examples/pretrain_lm_checkpointed.py
"""

import os
import tempfile

import numpy as np

from repro import TrainingConfig, create_engine
from repro.nn import (LanguageModel, checkpointed_lm_loss, gpt2_config,
                      make_lm_dataset)
from repro.optim import linear_warmup_decay
from repro.runtime import save_checkpoint

MICRO_BATCH = 4
ACCUMULATION = 2
STEPS = 30


def loss_fn(model, tokens):
    # Full-graph equivalent would be: model.loss(tokens).
    return checkpointed_lm_loss(model, tokens)


def main():
    config = gpt2_config(vocab_size=64, max_seq_len=32, dim=48,
                         num_layers=4, num_heads=4)
    model = LanguageModel(config, seed=0)
    data = make_lm_dataset(num_sequences=MICRO_BATCH * ACCUMULATION
                           * STEPS, seq_len=33, vocab_size=64, seed=1)

    with tempfile.TemporaryDirectory() as workdir:
        engine = create_engine(
            "smart", model, loss_fn, workdir,
            config=TrainingConfig(optimizer="adamw",
                                  optimizer_kwargs={"lr": 3e-3,
                                                    "weight_decay": 0.01},
                                  subgroup_elements=8192,
                                  compression_ratio=0.10,
                                  num_csds=4))
        engine.set_lr_schedule(linear_warmup_decay(
            base_lr=3e-3, warmup_steps=5, total_steps=STEPS))

        cursor = 0
        for step in range(STEPS):
            micro_batches = []
            for _micro in range(ACCUMULATION):
                micro_batches.append(
                    (data[cursor:cursor + MICRO_BATCH],))
                cursor += MICRO_BATCH
            result = engine.train_step_accumulated(micro_batches)
            if step % 5 == 0 or step == STEPS - 1:
                print(f"step {result.step:>3}  loss {result.loss:.4f}  "
                      f"lr {engine.optimizer.lr:.2e}  "
                      f"grad-offload {result.traffic.host_writes:,} B")

        ckpt = os.path.join(workdir, "pretrain.npz")
        save_checkpoint(engine, ckpt)
        print(f"checkpoint written: {os.path.getsize(ckpt):,} bytes "
              f"(masters + moments + scaler, resumable on any engine)")
        first, last = engine.loss_history[0], engine.loss_history[-1]
        engine.close()

    print(f"loss {first:.4f} -> {last:.4f} over {STEPS} steps with "
          f"{ACCUMULATION}x accumulation, checkpointed blocks, and 10% "
          "Top-K gradient compression")
    assert last < first


if __name__ == "__main__":
    main()
