"""Unit tests for the telemetry layer: spans, metrics, exporters."""

import json
import threading

import pytest

from repro import telemetry
from repro.errors import TelemetryError
from repro.sim import Channel, Simulator
from repro.telemetry import (Histogram, MetricsRegistry, SpanTracer,
                             chrome_trace, record_channel_metrics,
                             write_chrome_trace)
from repro.telemetry.export import SIM_PID, WALL_PID


class FakeClock:
    """Deterministic injectable clock."""

    def __init__(self):
        self.now = 0.0

    def advance(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
def test_span_nesting_and_depth():
    clock = FakeClock()
    tracer = SpanTracer(clock=clock)
    with tracer.span("outer"):
        clock.advance(1.0)
        with tracer.span("inner"):
            clock.advance(0.5)
        clock.advance(0.25)
    outer = tracer.by_name("outer")[0]
    inner = tracer.by_name("inner")[0]
    assert outer.depth == 0 and inner.depth == 1
    assert outer.start <= inner.start
    assert inner.end <= outer.end
    assert inner.duration == pytest.approx(0.5)
    assert outer.duration == pytest.approx(1.75)
    assert tracer.open_depth() == 0


def test_span_attrs_settable_while_open():
    tracer = SpanTracer(clock=FakeClock())
    with tracer.span("step", engine="smart") as span:
        span.set(loss=1.25)
    recorded = tracer.spans[0]
    assert recorded.attrs == {"engine": "smart", "loss": 1.25}


def test_explicit_begin_end_tokens():
    clock = FakeClock()
    tracer = SpanTracer(clock=clock)
    token = tracer.begin("work", item=3)
    clock.advance(2.0)
    span = tracer.end(token, result="ok")
    assert span.duration == pytest.approx(2.0)
    assert span.attrs == {"item": 3, "result": "ok"}
    with pytest.raises(TelemetryError):
        tracer.end(token)


def test_spans_record_thread_identity():
    tracer = SpanTracer()

    def work():
        with tracer.span("threaded"):
            pass

    thread = threading.Thread(target=work, name="worker-7")
    thread.start()
    thread.join()
    with tracer.span("main"):
        pass
    threaded = tracer.by_name("threaded")[0]
    main = tracer.by_name("main")[0]
    assert threaded.thread_name == "worker-7"
    assert threaded.thread_id != main.thread_id
    assert tracer.thread_names()[threaded.thread_id] == "worker-7"


def test_abandoned_inner_span_does_not_corrupt_depth():
    tracer = SpanTracer(clock=FakeClock())
    outer = tracer.begin("outer")
    tracer.begin("abandoned")  # never ended explicitly
    tracer.end(outer)          # pops through the abandoned token
    with tracer.span("next"):
        pass
    assert tracer.by_name("next")[0].depth == 0


def test_span_exiting_via_exception_is_marked():
    with telemetry.session() as session:
        with pytest.raises(ValueError, match="boom"):
            with telemetry.trace_span("doomed", device=3):
                raise ValueError("boom")
        with telemetry.trace_span("fine"):
            pass
    doomed = session.tracer.by_name("doomed")[0]
    # The span still closes (duration recorded) and carries the error.
    assert doomed.attrs["status"] == "error"
    assert doomed.attrs["error"] == "ValueError: boom"
    assert doomed.attrs["device"] == 3
    fine = session.tracer.by_name("fine")[0]
    assert "status" not in fine.attrs and "error" not in fine.attrs
    assert session.tracer.open_depth() == 0


def test_span_exception_flows_to_flight_recorder():
    from repro.telemetry import flight
    recorder = flight.FlightRecorder(capacity_per_worker=16)
    previous = flight.install(recorder)
    try:
        with telemetry.session():
            with pytest.raises(RuntimeError):
                with telemetry.trace_span("crashing"):
                    raise RuntimeError("dead")
    finally:
        flight.replace(recorder, previous)
    (event,) = [e for e in recorder.events() if e["name"] == "crashing"]
    assert event["kind"] == "span"
    assert event["attrs"]["status"] == "error"
    assert event["attrs"]["error"] == "RuntimeError: dead"


def test_total_time_sums_all_instances():
    clock = FakeClock()
    tracer = SpanTracer(clock=clock)
    for _ in range(3):
        with tracer.span("repeat"):
            clock.advance(1.0)
    assert tracer.total_time("repeat") == pytest.approx(3.0)


# ----------------------------------------------------------------------
# global session gating
# ----------------------------------------------------------------------
def test_telemetry_disabled_by_default():
    assert not telemetry.enabled()
    # All helpers are no-ops and never raise when disabled.
    with telemetry.trace_span("nothing") as span:
        span.set(ignored=True)
    assert telemetry.span_begin("nothing") is None
    telemetry.span_end(None)
    telemetry.counter("nothing")
    telemetry.gauge("nothing", 1.0)
    telemetry.histogram("nothing", 1.0)


def test_session_scoping_restores_previous_state():
    assert not telemetry.enabled()
    with telemetry.session() as outer_session:
        assert telemetry.enabled()
        with telemetry.trace_span("visible"):
            pass
        with telemetry.session() as inner_session:
            assert telemetry.active() is inner_session
        assert telemetry.active() is outer_session
    assert not telemetry.enabled()
    assert len(outer_session.tracer.by_name("visible")) == 1


def test_module_helpers_feed_active_session():
    with telemetry.session() as session:
        telemetry.counter("events_total", 2, kind="x")
        telemetry.gauge("depth", 5)
        telemetry.histogram("lat_us", 120.0)
        with telemetry.trace_span("op"):
            pass
    snap = session.registry.snapshot()
    assert snap['events_total{kind="x"}']["value"] == 2
    assert snap["depth"]["value"] == 5
    assert snap["lat_us"]["count"] == 1
    assert session.tracer.by_name("op")


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    with pytest.raises(TelemetryError):
        registry.counter("c").inc(-1)


def test_gauge_tracks_peak():
    registry = MetricsRegistry()
    gauge = registry.gauge("queue_depth")
    gauge.set(3)
    gauge.set(7)
    gauge.set(2)
    assert gauge.value == 2
    assert gauge.peak == 7


def test_histogram_buckets_sum_count():
    hist = Histogram((1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == pytest.approx(555.5)
    assert hist.bucket_counts == [1, 1, 1, 1]
    assert hist.cumulative() == [1, 2, 3, 4]
    assert hist.mean() == pytest.approx(555.5 / 4)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(TelemetryError):
        Histogram(())
    with pytest.raises(TelemetryError):
        Histogram((5.0, 1.0))


def test_registry_get_or_create_and_kind_clash():
    registry = MetricsRegistry()
    assert registry.counter("m", device=0) is registry.counter("m",
                                                               device=0)
    assert registry.counter("m", device=1) is not registry.counter(
        "m", device=0)
    with pytest.raises(TelemetryError):
        registry.gauge("m")


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter("reads_total", device="ssd0").inc(3)
    registry.gauge("depth").set(2)
    registry.histogram("lat_us", buckets=(10.0, 100.0)).observe(42.0)
    text = registry.render_prometheus()
    assert '# TYPE reads_total counter' in text
    assert 'reads_total{device="ssd0"} 3' in text
    assert "# TYPE depth gauge" in text
    assert 'lat_us_bucket{le="10"} 0' in text
    assert 'lat_us_bucket{le="100"} 1' in text
    assert 'lat_us_bucket{le="+Inf"} 1' in text
    assert "lat_us_sum 42" in text
    assert "lat_us_count 1" in text
    # One TYPE line per metric, even with several label sets.
    registry.counter("reads_total", device="ssd1").inc(1)
    text = registry.render_prometheus()
    assert text.count("# TYPE reads_total counter") == 1


def test_exposition_escapes_label_values():
    # Prometheus exposition format: backslash, double-quote and newline
    # must be escaped inside quoted label values.
    registry = MetricsRegistry()
    registry.counter("ops_total", path='dir\\file "v1"\nnext').inc(1)
    text = registry.render_prometheus()
    assert r'path="dir\\file \"v1\"\nnext"' in text
    assert '\nnext' not in text.split("ops_total", 1)[1].split("\n", 1)[0]


def test_exposition_emits_help_lines():
    registry = MetricsRegistry()
    registry.describe("reads_total", 'Reads issued ("guarded")\nper device.')
    registry.counter("reads_total", device="ssd0").inc(1)
    registry.gauge("depth").set(2)
    text = registry.render_prometheus()
    # Described metric: the given text, with newlines escaped, on one line.
    assert ('# HELP reads_total Reads issued ("guarded")\\nper device.'
            in text)
    # Undescribed metric: a placeholder HELP line, never a missing one.
    assert "# HELP depth" in text
    for line in text.splitlines():
        if line.startswith("# TYPE"):
            name = line.split()[2]
            assert f"# HELP {name} " in text
    # HELP precedes TYPE for each family.
    assert text.index("# HELP reads_total") < text.index(
        "# TYPE reads_total")


def test_describe_latest_text_wins():
    registry = MetricsRegistry()
    registry.describe("x_total", "first")
    registry.describe("x_total", "second")
    registry.counter("x_total").inc(1)
    text = registry.render_prometheus()
    assert "# HELP x_total second" in text
    assert "first" not in text


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def make_des_activity():
    sim = Simulator()
    channel = Channel(sim, "link", bandwidth=100.0)
    channel.transfer(50.0, tag="grads")
    channel.transfer(100.0, tag="masters")
    sim.run()
    return channel


def test_chrome_trace_has_both_time_domains():
    clock = FakeClock()
    tracer = SpanTracer(clock=clock)
    with tracer.span("outer"):
        clock.advance(1.0)
        with tracer.span("inner"):
            clock.advance(0.5)
    channel = make_des_activity()
    doc = chrome_trace(spans=tracer.spans, channels=[channel],
                       phases=[("update", 0.0, 1.5)],
                       metadata={"note": "test"})
    events = doc["traceEvents"]
    assert {e["pid"] for e in events} == {WALL_PID, SIM_PID}
    process_names = {e["args"]["name"] for e in events
                     if e.get("name") == "process_name"}
    assert process_names == {"wall-clock", "sim-time"}
    assert doc["otherData"] == {"note": "test"}

    # Wall spans nest by interval containment on the same lane.
    walls = {e["name"]: e for e in events
             if e["ph"] == "X" and e["pid"] == WALL_PID}
    inner, outer = walls["inner"], walls["outer"]
    assert inner["tid"] == outer["tid"]
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    # Sim records carry bytes and land on a named channel lane.
    sims = [e for e in events if e["ph"] == "X" and e["pid"] == SIM_PID
            and e["args"].get("channel") == "link"]
    assert {e["name"] for e in sims} == {"grads", "masters"}
    assert sum(e["args"]["nbytes"] for e in sims) == pytest.approx(150.0)
    phases = [e for e in events if e.get("cat") == "sim-phase"]
    assert phases[0]["name"] == "update"
    assert phases[0]["dur"] == pytest.approx(1.5e6)


def test_write_chrome_trace_round_trips(tmp_path):
    channel = make_des_activity()
    path = str(tmp_path / "out.trace.json")
    assert write_chrome_trace(path, channels=[channel]) == path
    with open(path) as handle:
        doc = json.load(handle)
    assert isinstance(doc["traceEvents"], list)
    assert doc["displayTimeUnit"] == "ms"


def test_record_channel_metrics_bridge():
    channel = make_des_activity()
    registry = MetricsRegistry()
    record_channel_metrics(registry, [channel], horizon=1.5,
                           method="su_o_c")
    snap = registry.snapshot()
    key = 'des_channel_bytes_total{channel="link",method="su_o_c"}'
    assert snap[key]["value"] == pytest.approx(150.0)
    util = snap['des_channel_utilization{channel="link",method="su_o_c"}']
    assert util["value"] == pytest.approx(1.0)
