"""Tests for the flat-array optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrainingError
from repro.optim import (AdaGrad, Adam, AdamW, OPTIMIZERS, SGDMomentum,
                         make_optimizer)
from repro.optim.base import ModuleOptimizer


def flat(*values):
    return np.array(values, dtype=np.float32)


# ----------------------------------------------------------------------
# Adam
# ----------------------------------------------------------------------
def test_adam_first_step_matches_closed_form():
    """With bias correction, the very first Adam step moves by ~lr in the
    gradient's sign direction (for eps -> 0)."""
    opt = Adam(lr=0.1, eps=1e-12)
    params = flat(1.0)
    state = opt.init_state(1)
    opt.step(params, flat(0.5), state, step_num=1)
    assert params[0] == pytest.approx(1.0 - 0.1, rel=1e-4)


def test_adam_momentum_and_variance_updates():
    opt = Adam(lr=0.1, beta1=0.9, beta2=0.99)
    state = opt.init_state(1)
    opt.step(flat(0.0), flat(2.0), state, step_num=1)
    assert state["momentum"][0] == pytest.approx(0.2, rel=1e-5)
    assert state["variance"][0] == pytest.approx(0.04, rel=1e-5)


def test_adam_converges_on_quadratic():
    opt = Adam(lr=0.1)
    params = flat(5.0)
    state = opt.init_state(1)
    for step in range(1, 300):
        grads = 2.0 * params.copy()  # d/dx x^2
        opt.step(params, grads.astype(np.float32), state, step)
    assert abs(params[0]) < 1e-2


def test_adam_states_per_param_is_three():
    assert Adam().states_per_param == 3
    assert Adam().state_names == ("momentum", "variance")


def test_adam_rejects_bad_hyperparameters():
    with pytest.raises(TrainingError):
        Adam(lr=0.0)
    with pytest.raises(TrainingError):
        Adam(beta1=1.0)
    with pytest.raises(TrainingError):
        Adam(eps=0.0)


def test_adamw_decays_weights_decoupled():
    plain = Adam(lr=0.1)
    decayed = AdamW(lr=0.1, weight_decay=0.1)
    p1, p2 = flat(1.0), flat(1.0)
    s1, s2 = plain.init_state(1), decayed.init_state(1)
    zero_grad = flat(0.0)
    plain.step(p1, zero_grad.copy(), s1, 1)
    decayed.step(p2, zero_grad.copy(), s2, 1)
    assert p1[0] == pytest.approx(1.0)
    assert p2[0] == pytest.approx(1.0 - 0.1 * 0.1, rel=1e-5)


def test_adamw_rejects_negative_decay():
    with pytest.raises(TrainingError):
        AdamW(weight_decay=-0.1)


# ----------------------------------------------------------------------
# SGD momentum / AdaGrad
# ----------------------------------------------------------------------
def test_sgd_momentum_accumulates():
    opt = SGDMomentum(lr=1.0, momentum=0.5)
    params = flat(0.0)
    state = opt.init_state(1)
    opt.step(params, flat(1.0), state, 1)
    assert params[0] == pytest.approx(-1.0)
    opt.step(params, flat(1.0), state, 2)
    # Momentum buffer: 0.5*1 + 1 = 1.5 -> total -2.5.
    assert params[0] == pytest.approx(-2.5)


def test_sgd_states_per_param_is_two():
    assert SGDMomentum().states_per_param == 2


def test_adagrad_shrinks_effective_lr():
    opt = AdaGrad(lr=1.0)
    params = flat(0.0)
    state = opt.init_state(1)
    opt.step(params, flat(1.0), state, 1)
    first_move = abs(params[0])
    before = params[0]
    opt.step(params, flat(1.0), state, 2)
    second_move = abs(params[0] - before)
    assert second_move < first_move


def test_adagrad_accumulator_monotone():
    opt = AdaGrad(lr=0.1)
    state = opt.init_state(3)
    params = np.zeros(3, dtype=np.float32)
    previous = state["accumulator"].copy()
    for step in range(1, 5):
        grads = np.full(3, 0.5, dtype=np.float32)
        opt.step(params, grads, state, step)
        assert (state["accumulator"] >= previous).all()
        previous = state["accumulator"].copy()


# ----------------------------------------------------------------------
# interface
# ----------------------------------------------------------------------
def test_registry_contains_all_four():
    assert set(OPTIMIZERS) == {"adam", "adamw", "sgd", "adagrad"}
    assert isinstance(make_optimizer("ADAM", lr=0.1), Adam)


def test_registry_rejects_unknown():
    with pytest.raises(KeyError):
        make_optimizer("lion")


def test_step_validates_shapes_and_dtypes():
    opt = Adam()
    params = np.zeros(4, dtype=np.float32)
    state = opt.init_state(4)
    with pytest.raises(TrainingError):
        opt.step(params, np.zeros(3, dtype=np.float32), state, 1)
    with pytest.raises(TrainingError):
        opt.step(params.astype(np.float64),
                 np.zeros(4, dtype=np.float64), state, 1)
    with pytest.raises(TrainingError):
        opt.step(params, np.zeros(4, dtype=np.float32), {}, 1)


def test_init_state_rejects_nonpositive():
    with pytest.raises(TrainingError):
        Adam().init_state(0)


def test_module_optimizer_trains_linear_regression():
    from repro.nn.modules import Linear
    from repro.nn.tensor import Tensor

    rng = np.random.default_rng(0)
    target_w = rng.standard_normal((3, 1)).astype(np.float32)
    x = rng.standard_normal((64, 3)).astype(np.float32)
    y = x @ target_w

    model = Linear(3, 1, rng)
    optimizer = ModuleOptimizer(model, Adam(lr=5e-2))
    for _step in range(200):
        optimizer.zero_grad()
        prediction = model(Tensor(x))
        loss = ((prediction - Tensor(y)) ** 2).mean()
        loss.backward()
        optimizer.step()
    np.testing.assert_allclose(model.weight.data, target_w, atol=0.05)
    assert optimizer.step_count == 200


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000),
       name=st.sampled_from(["adam", "adamw", "sgd", "adagrad"]))
def test_step_is_bounded_property(seed, name):
    """No optimizer moves a parameter by more than a few lr per step
    (Adam's per-step displacement is bounded by ~lr/(1-beta1))."""
    rng = np.random.default_rng(seed)
    lr = 0.01
    opt = make_optimizer(name, lr=lr)
    params = rng.standard_normal(32).astype(np.float32)
    reference = params.copy()
    state = opt.init_state(32)
    grads = (rng.standard_normal(32) * 10).astype(np.float32)
    opt.step(params, grads, state, 1)
    moved = np.abs(params - reference)
    if name in ("adam", "adamw"):
        assert moved.max() <= 3 * lr + 0.02  # + decay term for adamw
    # SGD/AdaGrad move proportionally to gradient magnitude; just check
    # finiteness and that something moved.
    assert np.isfinite(params).all()
    assert moved.max() > 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_adam_deterministic_across_runs(seed):
    rng = np.random.default_rng(seed)
    grads = rng.standard_normal(16).astype(np.float32)
    results = []
    for _run in range(2):
        opt = Adam(lr=1e-3)
        params = np.ones(16, dtype=np.float32)
        state = opt.init_state(16)
        for step in range(1, 4):
            opt.step(params, grads.copy(), state, step)
        results.append(params.copy())
    np.testing.assert_array_equal(results[0], results[1])
