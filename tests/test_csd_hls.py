"""Tests for the HLS template layer: designs, resources, sanity checks."""

import numpy as np
import pytest

from repro.csd import (get_design, register_design, registered_designs,
                       sanity_check_updater, updater_design)
from repro.csd.hls import KernelDesign, SHELL
from repro.errors import KernelError
from repro.hw import FPGAResources, ku15p
from repro.optim import Adam
from repro.optim.base import FlatOptimizer


def test_adam_design_reproduces_table3():
    util = updater_design("adam").utilization(ku15p())
    assert util["LUT"] == pytest.approx(33.66, abs=0.05)
    assert util["BRAM"] == pytest.approx(27.13, abs=0.05)
    assert util["URAM"] == pytest.approx(34.38, abs=0.05)
    assert util["DSP"] == pytest.approx(11.03, abs=0.05)


def test_adam_topk_design_reproduces_table3():
    util = updater_design("adam",
                          with_decompressor=True).utilization(ku15p())
    assert util["LUT"] == pytest.approx(34.12, abs=0.05)
    assert util["BRAM"] == pytest.approx(27.13, abs=0.05)
    assert util["URAM"] == pytest.approx(35.94, abs=0.05)
    assert util["DSP"] == pytest.approx(11.03, abs=0.05)


def test_decompressor_adds_no_dsps():
    """Table III: the Top-K decompressor is routing only — zero DSP cost."""
    plain = updater_design("adam").total
    with_topk = updater_design("adam", with_decompressor=True).total
    assert with_topk.dsps == plain.dsps
    assert with_topk.brams == plain.brams
    assert with_topk.luts > plain.luts


def test_sgd_design_smaller_than_adam():
    adam = updater_design("adam").total
    sgd = updater_design("sgd").total
    assert sgd.luts < adam.luts
    assert sgd.dsps < adam.dsps
    assert sgd.urams < adam.urams


def test_all_registered_designs_fit_ku15p():
    fpga = ku15p()
    for name in registered_designs():
        assert get_design(name).fits(fpga), name


def test_design_registry_contents():
    names = registered_designs()
    assert "adam-updater" in names
    assert "adam-updater+topk" in names
    assert "sgd-updater" in names


def test_register_rejects_duplicates_and_unknown_lookup():
    with pytest.raises(KernelError):
        register_design("adam-updater", lambda: None)
    with pytest.raises(KernelError):
        get_design("no-such-design")


def test_custom_design_registration():
    register_design(
        "test-custom",
        lambda: KernelDesign(name="custom", modules={"shell": SHELL}))
    assert get_design("test-custom").total.luts == SHELL.luts


def test_updater_design_validates_inputs():
    with pytest.raises(KernelError):
        updater_design("unknown-optimizer")
    with pytest.raises(KernelError):
        updater_design("adam", num_pes=0)


def test_oversized_design_does_not_fit():
    huge = KernelDesign(name="huge", modules={
        "pe": FPGAResources(luts=10_000_000, brams=0, urams=0, dsps=0)})
    assert not huge.fits(ku15p())


def test_sanity_checker_passes_correct_kernels():
    sanity_check_updater(Adam(lr=1e-3), num_elements=512, num_steps=2)


def test_sanity_checker_catches_broken_updater():
    class BrokenAdam(Adam):
        """An updater whose chunked execution diverges: it uses the chunk's
        local mean, so results depend on chunk boundaries."""

        def step(self, params, grads, state, step_num):
            params -= np.float32(self.lr) * (grads - grads.mean())

    with pytest.raises(KernelError, match="diverged"):
        sanity_check_updater(BrokenAdam(lr=0.1), num_elements=512,
                             num_steps=1, chunk_elements=100)


def test_sanity_checker_catches_state_divergence():
    class StatefulBug(FlatOptimizer):
        state_names = ("momentum",)

        def __init__(self):
            super().__init__(lr=0.1)

        def step(self, params, grads, state, step_num):
            # Writes a chunk-size-dependent value into the state.
            state["momentum"][:] = float(len(grads))

    with pytest.raises(KernelError, match="state"):
        sanity_check_updater(StatefulBug(), num_elements=512,
                             num_steps=1, chunk_elements=100)
