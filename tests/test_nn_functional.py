"""Gradient and property checks for the neural-network ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from .conftest import check_gradient


def test_relu_values_and_grad(rng):
    values = rng.standard_normal(20)
    values[np.abs(values) < 0.1] = 0.5
    out = F.relu(Tensor(values.astype(np.float32)))
    np.testing.assert_allclose(out.data, np.maximum(values, 0), rtol=1e-6)
    check_gradient(lambda t: F.relu(t).sum(), values)


def test_gelu_matches_reference_shape(rng):
    x = Tensor(np.array([-2.0, 0.0, 2.0], dtype=np.float32))
    out = F.gelu(x).data
    assert out[1] == pytest.approx(0.0)
    assert out[2] == pytest.approx(1.954, abs=1e-2)
    assert out[0] == pytest.approx(-0.0454, abs=1e-2)


def test_gelu_grad(rng):
    check_gradient(lambda t: F.gelu(t).sum(), rng.standard_normal(10))


def test_sigmoid_values_and_grad(rng):
    out = F.sigmoid(Tensor(np.zeros(3, dtype=np.float32)))
    np.testing.assert_allclose(out.data, 0.5)
    check_gradient(lambda t: F.sigmoid(t).sum(), rng.standard_normal(8))


def test_softmax_rows_sum_to_one(rng):
    x = Tensor(rng.standard_normal((4, 7)).astype(np.float32))
    out = F.softmax(x).data
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-5)
    assert (out >= 0).all()


def test_softmax_is_shift_invariant(rng):
    x = rng.standard_normal((2, 5)).astype(np.float32)
    a = F.softmax(Tensor(x)).data
    b = F.softmax(Tensor(x + 100.0)).data
    np.testing.assert_allclose(a, b, rtol=1e-4)


def test_softmax_grad(rng):
    weights = Tensor(rng.standard_normal((3, 5)).astype(np.float32))
    check_gradient(lambda t: (F.softmax(t) * weights).sum(),
                   rng.standard_normal((3, 5)))


def test_log_softmax_consistent_with_softmax(rng):
    x = Tensor(rng.standard_normal((3, 6)).astype(np.float32))
    np.testing.assert_allclose(F.log_softmax(x).data,
                               np.log(F.softmax(x).data), rtol=1e-4,
                               atol=1e-5)


def test_log_softmax_grad(rng):
    weights = Tensor(rng.standard_normal((2, 4)).astype(np.float32))
    check_gradient(lambda t: (F.log_softmax(t) * weights).sum(),
                   rng.standard_normal((2, 4)))


def test_layer_norm_output_statistics(rng):
    dim = 16
    x = Tensor(rng.standard_normal((5, dim)).astype(np.float32))
    weight = Tensor(np.ones(dim, dtype=np.float32))
    bias = Tensor(np.zeros(dim, dtype=np.float32))
    out = F.layer_norm(x, weight, bias).data
    np.testing.assert_allclose(out.mean(axis=-1), np.zeros(5), atol=1e-5)
    np.testing.assert_allclose(out.std(axis=-1), np.ones(5), atol=1e-2)


def test_layer_norm_grads_all_inputs(rng):
    dim = 6
    w = rng.standard_normal(dim).astype(np.float32)
    b = rng.standard_normal(dim).astype(np.float32)
    check_gradient(
        lambda t: (F.layer_norm(t, Tensor(w), Tensor(b)) ** 2).sum(),
        rng.standard_normal((3, dim)))
    x_data = rng.standard_normal((3, dim)).astype(np.float32)
    check_gradient(
        lambda t: (F.layer_norm(Tensor(x_data), t, Tensor(b)) ** 2).sum(),
        w)
    check_gradient(
        lambda t: (F.layer_norm(Tensor(x_data), Tensor(w), t) ** 2).sum(),
        b)


def test_embedding_lookup_and_scatter_grad(rng):
    table = Tensor(rng.standard_normal((10, 4)).astype(np.float32),
                   requires_grad=True)
    indices = np.array([[1, 1], [3, 9]])
    out = F.embedding(indices, table)
    assert out.shape == (2, 2, 4)
    out.sum().backward()
    # Row 1 was used twice -> gradient 2, rows 3 and 9 once, others zero.
    assert table.grad[1].sum() == pytest.approx(8.0)
    assert table.grad[3].sum() == pytest.approx(4.0)
    assert table.grad[0].sum() == pytest.approx(0.0)


def test_dropout_identity_when_eval_or_zero(rng):
    x = Tensor(rng.standard_normal(100).astype(np.float32))
    assert F.dropout(x, 0.5, rng, training=False) is x
    assert F.dropout(x, 0.0, rng, training=True) is x


def test_dropout_preserves_expectation(rng):
    x = Tensor(np.ones(20_000, dtype=np.float32), requires_grad=True)
    out = F.dropout(x, 0.25, rng, training=True)
    assert out.data.mean() == pytest.approx(1.0, abs=0.02)
    zeros = (out.data == 0).mean()
    assert zeros == pytest.approx(0.25, abs=0.02)


def test_dropout_rejects_bad_rate(rng):
    with pytest.raises(ValueError):
        F.dropout(Tensor([1.0]), 1.0, rng)


def test_causal_mask_blocks_future():
    mask = F.causal_mask(4)
    assert mask[0, 3] < -1e8
    assert mask[3, 0] == 0.0
    assert mask[2, 2] == 0.0


def test_cross_entropy_matches_manual(rng):
    logits = rng.standard_normal((5, 7)).astype(np.float32)
    targets = rng.integers(0, 7, size=5)
    loss = F.cross_entropy(Tensor(logits), targets)
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    expected = -log_probs[np.arange(5), targets].mean()
    assert loss.item() == pytest.approx(expected, rel=1e-5)


def test_cross_entropy_grad(rng):
    targets = rng.integers(0, 4, size=6)
    check_gradient(lambda t: F.cross_entropy(t, targets),
                   rng.standard_normal((6, 4)))


def test_cross_entropy_ignore_index(rng):
    logits = rng.standard_normal((4, 3)).astype(np.float32)
    targets = np.array([0, 1, -1, -1])
    loss = F.cross_entropy(Tensor(logits), targets, ignore_index=-1)
    reference = F.cross_entropy(Tensor(logits[:2]), targets[:2])
    assert loss.item() == pytest.approx(reference.item(), rel=1e-5)


def test_cross_entropy_perfect_prediction_low_loss():
    logits = np.full((2, 3), -20.0, dtype=np.float32)
    logits[0, 1] = 20.0
    logits[1, 2] = 20.0
    loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
    assert loss.item() < 1e-4


def test_accuracy():
    logits = Tensor(np.array([[0.1, 0.9], [0.8, 0.2]], dtype=np.float32))
    assert F.accuracy(logits, np.array([1, 0])) == 1.0
    assert F.accuracy(logits, np.array([0, 0])) == 0.5


@settings(max_examples=20, deadline=None)
@given(rows=st.integers(1, 4), vocab=st.integers(2, 8),
       seed=st.integers(0, 500))
def test_cross_entropy_nonnegative_and_bounded(rows, vocab, seed):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.standard_normal((rows, vocab)).astype(np.float32))
    targets = rng.integers(0, vocab, size=rows)
    loss = F.cross_entropy(logits, targets).item()
    assert loss >= 0.0
    # Uniform-logits loss is log(vocab); random logits stay in a sane band.
    assert loss < np.log(vocab) + 10.0
