"""Tests for the sweep helpers and their CLI subcommand."""

import pytest

from repro.cli import main
from repro.errors import HardwareConfigError
from repro.perf.sweeps import (render_sweep, run_sweep, sweep_devices,
                               sweep_models, sweep_ratios)


def test_sweep_devices_rows_and_speedups():
    rows = sweep_devices("gpt2-1.16b", counts=(2, 6))
    assert [row.value for row in rows] == [2, 6]
    assert all(row.baseline_time > 0 and row.smart_time > 0
               for row in rows)
    # More devices help Smart-Infinity more.
    assert rows[1].speedup > rows[0].speedup


def test_sweep_models_axis():
    rows = sweep_models(("gpt2-1.16b", "gpt2-4.0b"), num_devices=6)
    assert rows[0].value == "gpt2-1.16b"
    assert rows[1].baseline_time > rows[0].baseline_time


def test_sweep_ratios_shares_baseline():
    rows = sweep_ratios("gpt2-1.16b", ratios=(0.01, 0.10), num_devices=6)
    assert rows[0].baseline_time == rows[1].baseline_time
    assert rows[0].smart_time <= rows[1].smart_time


def test_run_sweep_dispatch():
    rows = run_sweep("devices", model_name="gpt2-1.16b", counts=(2,))
    assert len(rows) == 1
    with pytest.raises(HardwareConfigError):
        run_sweep("frequency")


def test_render_sweep_formats_rows():
    rows = sweep_devices("gpt2-1.16b", counts=(2,))
    text = render_sweep(rows, "#devices")
    assert "#devices" in text
    assert "x" in text


def test_cli_sweep_devices(capsys):
    assert main(["sweep", "devices", "--model", "gpt2-1.16b",
                 "--max-devices", "3"]) == 0
    out = capsys.readouterr().out
    assert "#devices" in out
    assert out.count("x") >= 3


def test_cli_sweep_ratio(capsys):
    assert main(["sweep", "ratio", "--model", "gpt2-1.16b"]) == 0
    assert "ratio" in capsys.readouterr().out
