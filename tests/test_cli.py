"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_models(capsys):
    assert main(["list-models"]) == 0
    out = capsys.readouterr().out
    assert "gpt2-8.4b" in out
    assert "bloom-7.1b" in out


def test_simulate_reports_speedup(capsys):
    assert main(["simulate", "--model", "gpt2-4.0b", "--csds", "6",
                 "--method", "su_o_c"]) == 0
    out = capsys.readouterr().out
    assert "speedup vs BASE" in out
    assert "update + opt" in out


def test_simulate_baseline_has_no_speedup_row(capsys):
    assert main(["simulate", "--method", "baseline", "--csds", "2"]) == 0
    out = capsys.readouterr().out
    assert "speedup" not in out


def test_simulate_extension_method(capsys):
    assert main(["simulate", "--method", "su_o_c_q", "--csds", "4",
                 "--model", "gpt2-1.16b"]) == 0
    assert "su_o_c_q" in capsys.readouterr().out


def test_simulate_other_optimizer_and_gpu(capsys):
    assert main(["simulate", "--optimizer", "sgd", "--gpu", "a100",
                 "--csds", "4", "--model", "gpt2-1.16b"]) == 0
    assert "a100" in capsys.readouterr().out


def test_analyze_prints_bottlenecks(capsys):
    assert main(["analyze", "--model", "gpt2-1.16b", "--csds", "3"]) == 0
    out = capsys.readouterr().out
    assert "bottleneck" in out
    assert "method baseline" in out


def test_experiment_runs_table3(capsys):
    assert main(["experiment", "table3"]) == 0
    assert "Table III" in capsys.readouterr().out


def test_experiment_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_analyze_timeline_renders_gantt(capsys):
    assert main(["analyze", "--model", "gpt2-1.16b", "--csds", "2",
                 "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "timeline over" in out
    assert "ssd0-read" in out
    assert "#" in out


def test_docstring_lists_every_subcommand():
    import repro.cli
    from repro.cli import _build_parser

    subparsers = next(
        action for action in _build_parser()._actions
        if getattr(action, "choices", None)
        and "simulate" in action.choices)
    for command in subparsers.choices:
        assert command in repro.cli.__doc__, (
            f"cli docstring does not mention subcommand {command!r}")


def test_trace_writes_chrome_trace_json(tmp_path, capsys):
    out = str(tmp_path / "t.trace.json")
    assert main(["trace", "--model", "gpt2-1.16b", "--csds", "2",
                 "--skip-functional", "--out", out]) == 0
    printed = capsys.readouterr().out
    assert "perfetto" in printed
    import json
    with open(out) as handle:
        document = json.load(handle)
    assert document["otherData"]["model"] == "gpt2-1.16b"
    assert any(event["ph"] == "X"
               for event in document["traceEvents"])


def test_trace_default_output_name(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["trace", "--model", "gpt2-1.16b", "--csds", "2",
                 "--method", "su", "--skip-functional"]) == 0
    assert (tmp_path / "gpt2-1.16b-su.trace.json").exists()


def test_bench_quick_writes_report(tmp_path, capsys):
    out = str(tmp_path / "bench.json")
    assert main(["bench", "--quick", "--csds", "1,2", "--steps", "1",
                 "--out", out]) == 0
    printed = capsys.readouterr().out
    assert "wall-clock parallel bench" in printed
    assert "SmartComp stream cache" in printed
    import json
    with open(out) as handle:
        report = json.load(handle)
    assert report["schema"].startswith("smart-infinity/bench-parallel")
    assert report["environment"]["usable_cpus"] >= 1
    configs = {(run["num_csds"], run["workers"])
               for run in report["runs"]}
    assert configs == {(1, 1), (2, 1), (2, 2)}
    # Parallel must have reproduced sequential bit-for-bit.
    checksums = {run["param_checksum"] for run in report["runs"]
                 if run["num_csds"] == 2}
    assert len(checksums) == 1
    assert report["smartcomp_cache"]["reduction_factor"] >= 1.0


def test_bench_rejects_bad_csds_list(tmp_path, capsys):
    assert main(["bench", "--quick", "--csds", "two",
                 "--out", str(tmp_path / "x.json")]) == 2
    assert "invalid --csds" in capsys.readouterr().out


def test_trace_workers_flag_runs_functional_proxy(tmp_path, capsys):
    out = str(tmp_path / "w.trace.json")
    assert main(["trace", "--model", "gpt2-1.16b", "--csds", "2",
                 "--workers", "2", "--out", out]) == 0
    import json
    with open(out) as handle:
        document = json.load(handle)
    update_threads = {
        event["tid"] for event in document["traceEvents"]
        if event.get("name") == "device_update"}
    assert len(update_threads) == 2


def test_simulate_metrics_prints_exposition(capsys):
    assert main(["simulate", "--model", "gpt2-1.16b", "--csds", "2",
                 "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE des_channel_bytes_total counter" in out
    assert "des_channel_utilization" in out


def test_top_once_sim_mode_prints_verdict(capsys):
    assert main(["top", "--once", "--model", "gpt2-1.16b", "--csds", "2",
                 "--method", "su"]) == 0
    out = capsys.readouterr().out
    assert "bottleneck observatory" in out
    assert "bottleneck:" in out
    assert "occupied" in out
    assert "phase x resource ownership" in out
    # The sim trace's phases all appear in the ownership table.
    for phase in ("forward", "backward_grad", "update"):
        assert phase in out


def test_top_once_trace_mode_attributes_finished_trace(tmp_path, capsys):
    trace_path = str(tmp_path / "t.trace.json")
    assert main(["trace", "--model", "gpt2-1.16b", "--csds", "2",
                 "--skip-functional", "--out", trace_path]) == 0
    capsys.readouterr()
    assert main(["top", "--once", "--trace", trace_path]) == 0
    out = capsys.readouterr().out
    assert "trace:" in out
    assert "bottleneck:" in out
    assert "host-link-down" in out


def test_top_once_jsonl_and_metrics(tmp_path, capsys):
    import json
    events_path = str(tmp_path / "events.jsonl")
    assert main(["top", "--once", "--model", "gpt2-1.16b", "--csds", "2",
                 "--jsonl", events_path, "--metrics"]) == 0
    out = capsys.readouterr().out
    assert f"[attribution events: {events_path}]" in out
    assert "# TYPE attrib_step_seconds gauge" in out
    assert "# HELP attrib_resource_utilization" in out
    assert 'source="sim"' in out
    with open(events_path) as handle:
        first = json.loads(handle.readline())
    assert first["schema"] == "smart-infinity/attrib/v1"
