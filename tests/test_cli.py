"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_models(capsys):
    assert main(["list-models"]) == 0
    out = capsys.readouterr().out
    assert "gpt2-8.4b" in out
    assert "bloom-7.1b" in out


def test_simulate_reports_speedup(capsys):
    assert main(["simulate", "--model", "gpt2-4.0b", "--csds", "6",
                 "--method", "su_o_c"]) == 0
    out = capsys.readouterr().out
    assert "speedup vs BASE" in out
    assert "update + opt" in out


def test_simulate_baseline_has_no_speedup_row(capsys):
    assert main(["simulate", "--method", "baseline", "--csds", "2"]) == 0
    out = capsys.readouterr().out
    assert "speedup" not in out


def test_simulate_extension_method(capsys):
    assert main(["simulate", "--method", "su_o_c_q", "--csds", "4",
                 "--model", "gpt2-1.16b"]) == 0
    assert "su_o_c_q" in capsys.readouterr().out


def test_simulate_other_optimizer_and_gpu(capsys):
    assert main(["simulate", "--optimizer", "sgd", "--gpu", "a100",
                 "--csds", "4", "--model", "gpt2-1.16b"]) == 0
    assert "a100" in capsys.readouterr().out


def test_analyze_prints_bottlenecks(capsys):
    assert main(["analyze", "--model", "gpt2-1.16b", "--csds", "3"]) == 0
    out = capsys.readouterr().out
    assert "bottleneck" in out
    assert "method baseline" in out


def test_experiment_runs_table3(capsys):
    assert main(["experiment", "table3"]) == 0
    assert "Table III" in capsys.readouterr().out


def test_experiment_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_analyze_timeline_renders_gantt(capsys):
    assert main(["analyze", "--model", "gpt2-1.16b", "--csds", "2",
                 "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "timeline over" in out
    assert "ssd0-read" in out
    assert "#" in out


def test_docstring_lists_every_subcommand():
    import repro.cli
    from repro.cli import _build_parser

    subparsers = next(
        action for action in _build_parser()._actions
        if getattr(action, "choices", None)
        and "simulate" in action.choices)
    for command in subparsers.choices:
        assert command in repro.cli.__doc__, (
            f"cli docstring does not mention subcommand {command!r}")


def test_trace_writes_chrome_trace_json(tmp_path, capsys):
    out = str(tmp_path / "t.trace.json")
    assert main(["trace", "--model", "gpt2-1.16b", "--csds", "2",
                 "--skip-functional", "--out", out]) == 0
    printed = capsys.readouterr().out
    assert "perfetto" in printed
    import json
    with open(out) as handle:
        document = json.load(handle)
    assert document["otherData"]["model"] == "gpt2-1.16b"
    assert any(event["ph"] == "X"
               for event in document["traceEvents"])


def test_trace_default_output_name(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["trace", "--model", "gpt2-1.16b", "--csds", "2",
                 "--method", "su", "--skip-functional"]) == 0
    assert (tmp_path / "gpt2-1.16b-su.trace.json").exists()


def test_bench_quick_writes_report(tmp_path, capsys):
    out = str(tmp_path / "bench.json")
    assert main(["bench", "--quick", "--csds", "1,2", "--steps", "1",
                 "--out", out]) == 0
    printed = capsys.readouterr().out
    assert "wall-clock parallel bench" in printed
    assert "SmartComp stream cache" in printed
    import json
    with open(out) as handle:
        report = json.load(handle)
    assert report["schema"].startswith("smart-infinity/bench-parallel")
    assert report["environment"]["usable_cpus"] >= 1
    configs = {(run["num_csds"], run["workers"])
               for run in report["runs"]}
    assert configs == {(1, 1), (2, 1), (2, 2)}
    # Parallel must have reproduced sequential bit-for-bit.
    checksums = {run["param_checksum"] for run in report["runs"]
                 if run["num_csds"] == 2}
    assert len(checksums) == 1
    assert report["smartcomp_cache"]["reduction_factor"] >= 1.0


def test_bench_rejects_bad_csds_list(tmp_path, capsys):
    assert main(["bench", "--quick", "--csds", "two",
                 "--out", str(tmp_path / "x.json")]) == 2
    assert "invalid --csds" in capsys.readouterr().out


def test_trace_workers_flag_runs_functional_proxy(tmp_path, capsys):
    out = str(tmp_path / "w.trace.json")
    assert main(["trace", "--model", "gpt2-1.16b", "--csds", "2",
                 "--workers", "2", "--out", out]) == 0
    import json
    with open(out) as handle:
        document = json.load(handle)
    update_threads = {
        event["tid"] for event in document["traceEvents"]
        if event.get("name") == "device_update"}
    assert len(update_threads) == 2


def test_simulate_metrics_prints_exposition(capsys):
    assert main(["simulate", "--model", "gpt2-1.16b", "--csds", "2",
                 "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE des_channel_bytes_total counter" in out
    assert "des_channel_utilization" in out


def test_top_once_sim_mode_prints_verdict(capsys):
    assert main(["top", "--once", "--model", "gpt2-1.16b", "--csds", "2",
                 "--method", "su"]) == 0
    out = capsys.readouterr().out
    assert "bottleneck observatory" in out
    assert "bottleneck:" in out
    assert "occupied" in out
    assert "phase x resource ownership" in out
    # The sim trace's phases all appear in the ownership table.
    for phase in ("forward", "backward_grad", "update"):
        assert phase in out


def test_top_once_trace_mode_attributes_finished_trace(tmp_path, capsys):
    trace_path = str(tmp_path / "t.trace.json")
    assert main(["trace", "--model", "gpt2-1.16b", "--csds", "2",
                 "--skip-functional", "--out", trace_path]) == 0
    capsys.readouterr()
    assert main(["top", "--once", "--trace", trace_path]) == 0
    out = capsys.readouterr().out
    assert "trace:" in out
    assert "bottleneck:" in out
    assert "host-link-down" in out


def test_top_once_jsonl_and_metrics(tmp_path, capsys):
    import json
    events_path = str(tmp_path / "events.jsonl")
    assert main(["top", "--once", "--model", "gpt2-1.16b", "--csds", "2",
                 "--jsonl", events_path, "--metrics"]) == 0
    out = capsys.readouterr().out
    assert f"[attribution events: {events_path}]" in out
    assert "# TYPE attrib_step_seconds gauge" in out
    assert "# HELP attrib_resource_utilization" in out
    assert 'source="sim"' in out
    with open(events_path) as handle:
        first = json.loads(handle.readline())
    assert first["schema"] == "smart-infinity/attrib/v1"


def test_top_degrades_to_no_data_on_missing_trace(tmp_path, capsys):
    missing = str(tmp_path / "not-written-yet.trace.json")
    assert main(["top", "--once", "--trace", missing]) == 0
    out = capsys.readouterr().out
    assert "no data yet" in out
    assert "python -m repro trace" in out
    assert "Traceback" not in out


def test_top_degrades_to_no_data_on_empty_trace(tmp_path, capsys):
    import json
    empty = tmp_path / "empty.trace.json"
    empty.write_text(json.dumps({"traceEvents": []}))
    assert main(["top", "--once", "--trace", str(empty)]) == 0
    out = capsys.readouterr().out
    assert "no data yet" in out
    assert "nothing to attribute" in out


def test_top_renders_health_pane_and_accepts_slo_file(capsys):
    assert main(["top", "--once", "--model", "gpt2-1.16b", "--csds", "2",
                 "--slo", "examples/slo.json"]) == 0
    out = capsys.readouterr().out
    assert "health/alerts" in out


def test_health_once_reports_signals_and_recorder(tmp_path, capsys,
                                                  monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["health", "--once", "--steps", "2"]) == 0
    out = capsys.readouterr().out
    assert "step-health signals" in out
    assert "steps_per_s" in out
    assert "loss_finite" in out
    assert "flight recorder:" in out
    assert "alerts: none fired" in out


def test_health_chaos_dropout_fires_alert_and_dump(tmp_path, capsys,
                                                   monkeypatch):
    import json
    monkeypatch.chdir(tmp_path)
    plan = {"seed": 7, "rules": [
        {"kind": "device_dropout", "device": 1, "at_op": 40}]}
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(plan))
    assert main(["health", "--once", "--steps", "3",
                 "--fault-plan", str(plan_path)]) == 0
    out = capsys.readouterr().out
    assert "[critical] device_dropout" in out
    assert "[flight dump:" in out
    dumps = sorted((tmp_path / "flightrec").iterdir())
    assert dumps, "automatic flight dump missing"
    records = [json.loads(line) for line in open(dumps[0])]
    assert records[0]["schema"] == "smart-infinity/flightrec/v1"
    # The acceptance check: the tail of the dump holds the triggering
    # fault event and the alert that fired for it.
    events = records[1:]
    # Workers still running when the snapshot is taken may append a few
    # trailing events, so "tail" is a window, not the literal last slot.
    alert_at = max(i for i, r in enumerate(events)
                   if r["kind"] == "alert")
    assert len(events) - alert_at <= 25, \
        "alert not in the dump's tail"
    fault_at = max(i for i, r in enumerate(events)
                   if r["kind"] == "fault" and
                   r["name"] == "faults_dropouts_total")
    assert len(events) - fault_at <= 60, \
        "dropout fault event not in the dump's tail"


def test_health_accepts_custom_slo_rules(tmp_path, capsys, monkeypatch):
    import json
    monkeypatch.chdir(tmp_path)
    rules = {"rules": [
        {"name": "always", "kind": "threshold", "signal": "loss_finite",
         "direction": "above", "value": 0.5, "severity": "info",
         "message": "fires every healthy run"}]}
    slo_path = tmp_path / "slo.json"
    slo_path.write_text(json.dumps(rules))
    assert main(["health", "--once", "--steps", "2",
                 "--slo", str(slo_path)]) == 0
    out = capsys.readouterr().out
    assert "[info] always" in out


def test_bench_report_embeds_health_and_no_flight_flag(tmp_path, capsys):
    import json
    out_path = str(tmp_path / "bench.json")
    assert main(["bench", "--quick", "--csds", "1", "--steps", "1",
                 "--out", out_path]) == 0
    printed = capsys.readouterr().out
    assert "health:" in printed
    assert "flight recorder on" in printed
    with open(out_path) as handle:
        report = json.load(handle)
    assert report["flight_recorder"] is True
    (run,) = report["runs"]
    assert run["health"]["alerts"] == 0
    assert "steps_per_s" in run["health"]["signals"]
    assert run["health"]["flight"]["events_recorded"] > 0

    assert main(["bench", "--quick", "--csds", "1", "--steps", "1",
                 "--no-flight", "--out", out_path]) == 0
    assert "flight recorder off" in capsys.readouterr().out
    with open(out_path) as handle:
        report = json.load(handle)
    assert report["flight_recorder"] is False
    assert report["runs"][0]["health"]["flight"] is None


# ----------------------------------------------------------------------
# shared flag vocabulary + the scenario subcommand
# ----------------------------------------------------------------------
ENGINE_SUBCOMMANDS = ("top", "health", "trace", "bench", "scenario",
                      "whatif")
SHARED_FLAGS = ("--backend", "--workers", "--fault-plan",
                "--chaos-seed", "--slo")


def test_engine_subcommands_share_identical_flags():
    from repro.cli import _build_parser

    subparsers = next(
        action for action in _build_parser()._actions
        if getattr(action, "choices", None)
        and "simulate" in action.choices)
    reference = {}
    for command in ENGINE_SUBCOMMANDS:
        options = {}
        for action in subparsers.choices[command]._actions:
            for flag in action.option_strings:
                options[flag] = (action.help, action.default)
        for flag in SHARED_FLAGS:
            assert flag in options, f"{command} is missing {flag}"
            reference.setdefault(flag, options[flag])
            assert options[flag] == reference[flag], (
                f"{command} {flag} diverges from the shared definition")
        # --backend default None so handlers can tell set from unset.
        assert options["--backend"][1] is None


def test_top_notes_ignored_engine_flags(capsys):
    assert main(["top", "--once", "--model", "gpt2-1.16b", "--csds", "2",
                 "--backend", "process", "--chaos-seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "simulation-only" in out
    assert "--backend" in out and "--chaos-seed" in out


# ----------------------------------------------------------------------
# the what-if observatory subcommand
# ----------------------------------------------------------------------

def test_version_flag_prints_package_version(capsys):
    from repro.version import __version__
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro {__version__}" in capsys.readouterr().out


def test_whatif_prints_path_and_ranked_projections(capsys):
    assert main(["whatif", "--model", "gpt2-1.16b", "--csds", "2",
                 "--method", "su"]) == 0
    out = capsys.readouterr().out
    assert "what-if observatory" in out
    assert "critical path" in out
    assert "what-if projections (ranked by step-time reduction)" in out
    assert "add_csds(" in out


def test_whatif_explicit_interventions_and_jsonl(tmp_path, capsys):
    import json
    jsonl = str(tmp_path / "critpath.jsonl")
    assert main(["whatif", "--model", "gpt2-1.16b", "--csds", "2",
                 "--method", "su_o_c", "--scale", "ssd0-write=1.5",
                 "--add-csds", "2", "--compression-ratio", "0.01",
                 "--jsonl", jsonl]) == 0
    out = capsys.readouterr().out
    assert "scale(ssd0-write, 1.5)" in out
    assert f"[critpath events: {jsonl}]" in out
    with open(jsonl) as handle:
        lines = [json.loads(line) for line in handle]
    assert lines[0]["schema"] == "smart-infinity/critpath/v1"
    assert lines[0]["model"] == "gpt2-1.16b"
    kinds = {line["type"] for line in lines}
    assert {"meta", "path_step", "path_resource",
            "projection"} <= kinds


def test_whatif_validate_gates_projection_error(capsys):
    assert main(["whatif", "--model", "gpt2-1.16b", "--csds", "2",
                 "--method", "su_o_c", "--scale", "ssd0-write=1.5",
                 "--validate", "--max-error", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "validate scale(ssd0-write, 1.5)" in out
    assert "PASS" in out
    assert "within 5% of the DES re-run" in out


def test_whatif_rejects_bad_scale_syntax(capsys):
    assert main(["whatif", "--scale", "nonsense"]) == 2
    assert "invalid --scale" in capsys.readouterr().out


def test_whatif_rejects_unknown_channel(capsys):
    assert main(["whatif", "--csds", "2",
                 "--scale", "warp-core=0.5"]) == 2
    out = capsys.readouterr().out
    assert "unknown channel" in out
    assert "host-link-down" in out


def test_whatif_notes_ignored_engine_flags(capsys):
    assert main(["whatif", "--model", "gpt2-1.16b", "--csds", "2",
                 "--method", "su", "--backend", "process"]) == 0
    out = capsys.readouterr().out
    assert "simulation-only" in out
    assert "--backend" in out


def _tiny_scenario_doc(name="tiny", **extra):
    doc = {
        "schema": "smart-infinity/scenario/v1",
        "name": name,
        "config": {"optimizer": "adam",
                   "optimizer_kwargs": {"lr": 0.01},
                   "subgroup_elements": 4096, "num_csds": 2},
        "workload": {"dim": 16, "num_layers": 1, "vocab_size": 32,
                     "seq_len": 8, "batch": 2, "num_heads": 2},
        "phases": [{"name": "p", "steps": 1,
                    "expect": {"loss_finite": True}}],
    }
    doc.update(extra)
    return doc


def _write_scenario(tmp_path, doc):
    import json
    path = tmp_path / f"{doc['name']}.json"
    path.write_text(json.dumps(doc))
    return str(path)


def test_scenario_list_tabulates_files(tmp_path, capsys):
    path = _write_scenario(tmp_path, _tiny_scenario_doc(
        description="one tiny phase"))
    assert main(["scenario", "list", path]) == 0
    out = capsys.readouterr().out
    assert "tiny" in out
    assert "one tiny phase" in out


def test_scenario_run_reports_phases_and_writes_log(tmp_path, capsys):
    path = _write_scenario(tmp_path, _tiny_scenario_doc())
    log = str(tmp_path / "events.jsonl")
    assert main(["scenario", "run", path, "--log", log]) == 0
    out = capsys.readouterr().out
    assert "scenario tiny" in out and "PASS" in out
    assert "[ok] p" in out
    import json
    with open(log) as handle:
        events = [json.loads(line) for line in handle]
    assert events[0]["event"] == "scenario_begin"
    assert events[0]["schema"] == "smart-infinity/scenario/v1"


def test_scenario_run_failure_exits_nonzero(tmp_path, capsys):
    doc = _tiny_scenario_doc(name="failing")
    doc["phases"][0]["expect"] = {"min_injected": 99}
    path = _write_scenario(tmp_path, doc)
    assert main(["scenario", "run", path]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "failed min_injected" in out


def test_scenario_replay_detects_identity_and_divergence(tmp_path,
                                                         capsys):
    path = _write_scenario(tmp_path, _tiny_scenario_doc())
    log = str(tmp_path / "events.jsonl")
    assert main(["scenario", "run", path, "--log", log]) == 0
    capsys.readouterr()
    assert main(["scenario", "replay", path, "--log", log]) == 0
    assert "byte-identical" in capsys.readouterr().out
    # A different seed must diverge.
    assert main(["scenario", "replay", path, "--log", log,
                 "--chaos-seed", "5"]) == 1
    assert "DIVERGED" in capsys.readouterr().out


def test_scenario_rejects_malformed_input(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["scenario", "run", str(bad)]) == 2
    assert "cannot load scenario" in capsys.readouterr().out
    assert main(["scenario", "replay", str(bad)]) == 2
    capsys.readouterr()
    assert main(["scenario", "run", str(tmp_path / "missing-dir")]) == 2
