"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_models(capsys):
    assert main(["list-models"]) == 0
    out = capsys.readouterr().out
    assert "gpt2-8.4b" in out
    assert "bloom-7.1b" in out


def test_simulate_reports_speedup(capsys):
    assert main(["simulate", "--model", "gpt2-4.0b", "--csds", "6",
                 "--method", "su_o_c"]) == 0
    out = capsys.readouterr().out
    assert "speedup vs BASE" in out
    assert "update + opt" in out


def test_simulate_baseline_has_no_speedup_row(capsys):
    assert main(["simulate", "--method", "baseline", "--csds", "2"]) == 0
    out = capsys.readouterr().out
    assert "speedup" not in out


def test_simulate_extension_method(capsys):
    assert main(["simulate", "--method", "su_o_c_q", "--csds", "4",
                 "--model", "gpt2-1.16b"]) == 0
    assert "su_o_c_q" in capsys.readouterr().out


def test_simulate_other_optimizer_and_gpu(capsys):
    assert main(["simulate", "--optimizer", "sgd", "--gpu", "a100",
                 "--csds", "4", "--model", "gpt2-1.16b"]) == 0
    assert "a100" in capsys.readouterr().out


def test_analyze_prints_bottlenecks(capsys):
    assert main(["analyze", "--model", "gpt2-1.16b", "--csds", "3"]) == 0
    out = capsys.readouterr().out
    assert "bottleneck" in out
    assert "method baseline" in out


def test_experiment_runs_table3(capsys):
    assert main(["experiment", "table3"]) == 0
    assert "Table III" in capsys.readouterr().out


def test_experiment_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_analyze_timeline_renders_gantt(capsys):
    assert main(["analyze", "--model", "gpt2-1.16b", "--csds", "2",
                 "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "timeline over" in out
    assert "ssd0-read" in out
    assert "#" in out
