"""Telemetry integration: non-perturbation, engine metrics, CLI trace.

The acceptance invariants of the telemetry layer:

* enabling telemetry never changes what the engines compute — training
  outputs are bit-identical with tracing on vs. off (property-tested);
* one functional training step populates the handler queue-depth gauge
  and the storage latency histograms;
* ``python -m repro trace`` writes a valid Chrome trace-event JSON with
  correctly nested wall-clock spans and both time domains present.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.cli import main
from repro.nn import SequenceClassifier, bert_config
from repro.runtime import SmartInfinityEngine, TrainingConfig
from repro.telemetry.export import SIM_PID, WALL_PID


def loss_fn(model, tokens, labels):
    return model.loss(tokens, labels)


def make_model(seed=0, dim=32):
    return SequenceClassifier(
        bert_config(vocab_size=16, dim=dim, num_layers=1, num_heads=2,
                    max_seq_len=8),
        num_classes=2, seed=seed)


def train_once(workdir, config, tokens, labels, enable_telemetry):
    from dataclasses import replace
    engine = SmartInfinityEngine(make_model(), loss_fn, str(workdir),
                                 config=replace(config, num_csds=2))
    try:
        if enable_telemetry:
            with telemetry.session() as session:
                result = engine.train_step(tokens, labels)
        else:
            session = None
            result = engine.train_step(tokens, labels)
        return result, engine.space.gather_params(), session
    finally:
        engine.close()


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(optimizer=st.sampled_from(["adam", "sgd"]),
       subgroup=st.sampled_from([512, 4096]),
       seed=st.integers(0, 50))
def test_engine_output_bit_identical_with_telemetry(tmp_path_factory,
                                                    optimizer, subgroup,
                                                    seed):
    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, 16, size=(4, 8))
    labels = rng.integers(0, 2, size=4)
    config = TrainingConfig(optimizer=optimizer,
                            optimizer_kwargs={"lr": 1e-2},
                            subgroup_elements=subgroup)
    workdir = tmp_path_factory.mktemp("tel")

    result_off, params_off, _ = train_once(
        workdir / "off", config, tokens, labels, enable_telemetry=False)
    result_on, params_on, session = train_once(
        workdir / "on", config, tokens, labels, enable_telemetry=True)

    np.testing.assert_array_equal(params_off, params_on)
    assert result_off.loss == result_on.loss
    assert result_off.traffic.host_total == result_on.traffic.host_total
    # And telemetry actually observed the traced run.
    assert session.tracer.by_name("iteration")
    assert not telemetry.enabled()


def test_functional_engine_populates_metrics(tmp_path):
    rng = np.random.default_rng(0)
    tokens = rng.integers(0, 16, size=(4, 8))
    labels = rng.integers(0, 2, size=4)
    config = TrainingConfig(optimizer="adam",
                            optimizer_kwargs={"lr": 1e-2},
                            subgroup_elements=1024, num_csds=2)
    with telemetry.session() as session:
        with SmartInfinityEngine(make_model(), loss_fn,
                                 str(tmp_path / "csd"),
                                 config=config) as engine:
            engine.train_step(tokens, labels)
    snapshot = session.registry.snapshot()

    # Handler queue depth gauge, per device.
    depth_keys = [key for key in snapshot
                  if key.startswith("handler_lazy_queue_depth")]
    assert depth_keys, snapshot.keys()
    assert any(snapshot[key]["peak"] >= 1 for key in depth_keys)

    # Storage latency histograms saw real pread/pwrite calls.
    for metric in ("storage_pread_latency_us",
                   "storage_pwrite_latency_us"):
        keys = [key for key in snapshot if key.startswith(metric)]
        assert keys, f"no {metric} series recorded"
        assert sum(snapshot[key]["count"] for key in keys) > 0

    # Handler write-back latency histograms from both paths (urgent on
    # the caller thread, lazy on the worker thread).
    assert any(key.startswith("handler_urgent_writeback_latency_us")
               for key in snapshot)
    assert any(key.startswith("handler_lazy_writeback_latency_us")
               for key in snapshot)

    # Spans from the worker thread carry a different thread id than the
    # engine's iteration span.
    iteration = session.tracer.by_name("iteration")[0]
    lazy = session.tracer.by_name("handler.lazy_writeback")
    assert lazy
    assert any(span.thread_id != iteration.thread_id for span in lazy)


def _events_by_pid(events, pid):
    return [event for event in events
            if event["ph"] == "X" and event["pid"] == pid]


def _assert_wall_spans_nest(events):
    """Depth-d+1 spans must lie inside a depth-d span on the same lane."""
    walls = _events_by_pid(events, WALL_PID)
    assert walls
    checked = 0
    for event in walls:
        depth = event["args"].get("depth", 0)
        if depth == 0:
            continue
        parents = [
            parent for parent in walls
            if parent["tid"] == event["tid"]
            and parent["args"].get("depth") == depth - 1
            and parent["ts"] <= event["ts"] + 1e-6
            and event["ts"] + event["dur"]
            <= parent["ts"] + parent["dur"] + 1e-6
        ]
        assert parents, f"span {event['name']} has no enclosing parent"
        checked += 1
    assert checked > 0, "trace contains no nested wall-clock spans"


def test_cli_trace_emits_valid_two_domain_chrome_trace(tmp_path, capsys):
    out = str(tmp_path / "acceptance.trace.json")
    assert main(["trace", "--model", "gpt2-4.0b", "--csds", "6",
                 "--method", "su_o_c", "--out", out]) == 0
    assert "wrote" in capsys.readouterr().out
    with open(out) as handle:
        document = json.load(handle)
    events = document["traceEvents"]

    # Both time domains present, named.
    assert {e["pid"] for e in events if e["ph"] == "X"} == {WALL_PID,
                                                           SIM_PID}
    process_names = {e["args"]["name"] for e in events
                     if e.get("name") == "process_name"}
    assert process_names == {"wall-clock", "sim-time"}

    # Wall-clock spans nest correctly.
    _assert_wall_spans_nest(events)

    # The sim-time side has the DES phase lane and per-channel transfers.
    sim_events = _events_by_pid(events, SIM_PID)
    phase_names = {e["name"] for e in sim_events
                   if e.get("cat") == "sim-phase"}
    assert phase_names == {"forward", "backward_grad", "update"}
    channels = {e["args"]["channel"] for e in sim_events
                if "channel" in e["args"]}
    assert "host-link-up" in channels
    assert any(name.startswith("ssd") for name in channels)

    # The wall-clock side contains the functional proxy's engine and
    # handler spans, including worker-thread lazy write-backs.
    wall_names = {e["name"] for e in _events_by_pid(events, WALL_PID)}
    assert {"functional.proxy", "iteration", "handler.subgroup",
            "handler.lazy_writeback"} <= wall_names


def test_cli_trace_skip_functional_is_sim_only(tmp_path):
    out = str(tmp_path / "sim-only.trace.json")
    assert main(["trace", "--model", "gpt2-1.16b", "--csds", "2",
                 "--skip-functional", "--out", out]) == 0
    with open(out) as handle:
        events = json.load(handle)["traceEvents"]
    wall = _events_by_pid(events, WALL_PID)
    # Only the des.simulate bracketing span lives on the wall side.
    assert {e["name"] for e in wall} == {"des.simulate"}
    assert _events_by_pid(events, SIM_PID)


def test_cli_trace_metrics_flag_prints_exposition(tmp_path, capsys):
    out = str(tmp_path / "m.trace.json")
    assert main(["trace", "--model", "gpt2-1.16b", "--csds", "2",
                 "--metrics", "--out", out]) == 0
    printed = capsys.readouterr().out
    assert "# TYPE des_channel_bytes_total counter" in printed
    assert "storage_pread_latency_us" in printed


def test_cli_simulate_and_analyze_metrics_flags(capsys):
    assert main(["simulate", "--model", "gpt2-1.16b", "--csds", "2",
                 "--metrics"]) == 0
    out = capsys.readouterr().out
    assert 'des_channel_utilization{channel="host-link-up"' in out
    assert main(["analyze", "--model", "gpt2-1.16b", "--csds", "2",
                 "--metrics"]) == 0
    out = capsys.readouterr().out
    assert 'method="baseline"' in out
    assert 'method="su_o_c"' in out


def test_export_scenario_trace_helper(tmp_path):
    from repro.experiments.export import export_scenario_trace
    from repro.hw.topology import default_system
    from repro.nn.models import get_model
    from repro.perf.workload import make_workload

    path = str(tmp_path / "scenario.trace.json")
    result = export_scenario_trace(
        path, default_system(num_csds=2), make_workload(
            get_model("gpt2-1.16b")), "su_o")
    assert result == path
    with open(path) as handle:
        document = json.load(handle)
    assert document["otherData"]["method"] == "su_o"
    assert document["otherData"]["iteration_seconds"] > 0
    assert _events_by_pid(document["traceEvents"], SIM_PID)


def test_fault_counters_land_in_telemetry_exposition():
    """Chaos accounting shares the exposition with everything else:
    a deterministic transient fault shows up as described counter
    families (injections, retries, backoff seconds)."""
    from repro.faults import FaultInjector, FaultPlan, FaultRule

    plan = FaultPlan(rules=(
        FaultRule(kind="io_error", op="read", at_op=1, count=2),
        FaultRule(kind="latency", op="write", at_op=1, count=1,
                  latency_s=0.001),
    ))
    injector = FaultInjector(plan, sleep=lambda _s: None)
    with telemetry.session() as session:
        injector.guard(0, "read")   # fires twice, retried twice
        injector.guard(0, "write")  # latency spike, no retry
    snapshot = session.registry.snapshot()

    def total(name):
        return sum(series["value"] for key, series in snapshot.items()
                   if key.split("{", 1)[0] == name)

    assert total("faults_injected_total") == 3
    assert total("faults_retries_total") == 2
    assert total("faults_backoff_seconds_total") > 0.0
    assert total("faults_latency_seconds_total") == pytest.approx(0.001)

    text = session.registry.render_prometheus()
    assert "# TYPE faults_injected_total counter" in text
    assert "# HELP faults_injected_total Faults injected" in text
    assert 'faults_injected_total{device="0",kind="io_error",op="read"}' \
        in text
    assert "# HELP faults_retries_total" in text


def test_fault_dropout_counter_increments():
    from repro.faults import FaultInjector, FaultPlan

    injector = FaultInjector(FaultPlan(), sleep=lambda _s: None)
    with telemetry.session() as session:
        injector.fail_device(1, reason="test")
    snapshot = session.registry.snapshot()
    assert snapshot['faults_dropouts_total{device="1"}']["value"] == 1


def test_fault_counters_noop_without_session():
    from repro.faults import FaultInjector, FaultPlan, FaultRule

    plan = FaultPlan(rules=(
        FaultRule(kind="io_error", op="read", at_op=1, count=1),))
    injector = FaultInjector(plan, sleep=lambda _s: None)
    assert not telemetry.enabled()
    injector.guard(0, "read")  # must not raise with telemetry off
    assert injector.stats.snapshot()["injected"] == {"io_error": 1}
