"""Tests for timeline/bottleneck analysis over channels."""

import pytest

from repro.sim import (Channel, Simulator, bottleneck, busy_in_window,
                       phase_channel_matrix, render_timeline,
                       summarize_channels, traffic_by_tag)


def make_activity():
    sim = Simulator()
    fast = Channel(sim, "fast", bandwidth=100.0)
    slow = Channel(sim, "slow", bandwidth=10.0)
    fast.transfer(100.0, tag="a")   # busy [0, 1]
    slow.transfer(100.0, tag="b")   # busy [0, 10]
    slow.transfer(50.0, tag="a")    # busy [10, 15]
    sim.run()
    return sim, fast, slow


def test_summaries_sorted_by_busy_time():
    _sim, fast, slow = make_activity()
    summaries = summarize_channels([fast, slow])
    assert summaries[0].name == "slow"
    assert summaries[0].busy_time == pytest.approx(15.0)
    assert summaries[1].busy_time == pytest.approx(1.0)


def test_bottleneck_is_busiest_channel():
    _sim, fast, slow = make_activity()
    assert bottleneck([fast, slow]).name == "slow"


def test_bottleneck_requires_channels():
    with pytest.raises(ValueError):
        bottleneck([])


def test_summary_achieved_bandwidth():
    _sim, fast, _slow = make_activity()
    summary = summarize_channels([fast])[0]
    assert summary.achieved_bandwidth == pytest.approx(100.0)
    assert summary.utilization == pytest.approx(1.0 / 15.0)


def test_busy_in_window_partial_overlap():
    _sim, _fast, slow = make_activity()
    # slow busy over [0, 15]; window [5, 12] fully covered.
    assert busy_in_window(slow.records, 5.0, 12.0) == pytest.approx(7.0)
    # Window entirely after activity.
    assert busy_in_window(slow.records, 20.0, 25.0) == 0.0
    # Degenerate window.
    assert busy_in_window(slow.records, 5.0, 5.0) == 0.0


def test_traffic_by_tag_aggregates_across_channels():
    _sim, fast, slow = make_activity()
    totals = traffic_by_tag([fast, slow])
    assert totals["a"] == pytest.approx(150.0)
    assert totals["b"] == pytest.approx(100.0)


def test_render_timeline_shows_busy_buckets():
    _sim, fast, slow = make_activity()
    art = render_timeline([fast, slow], horizon=15.0, width=15)
    lines = art.splitlines()
    assert len(lines) == 3
    fast_row = lines[1]
    slow_row = lines[2]
    # fast is busy only in the first bucket; slow in every bucket.
    assert fast_row.count("#") == 1
    assert slow_row.count("#") == 15


def test_render_timeline_rejects_bad_horizon():
    _sim, fast, _slow = make_activity()
    with pytest.raises(ValueError):
        render_timeline([fast], horizon=0.0)


def test_render_timeline_rejects_nonpositive_width():
    _sim, fast, _slow = make_activity()
    with pytest.raises(ValueError, match="width"):
        render_timeline([fast], horizon=15.0, width=0)
    with pytest.raises(ValueError, match="width"):
        render_timeline([fast], horizon=15.0, width=-3)


def test_busy_in_window_empty_records():
    assert busy_in_window([], 0.0, 10.0) == 0.0


def test_busy_in_window_inverted_window():
    _sim, _fast, slow = make_activity()
    assert busy_in_window(slow.records, 12.0, 5.0) == 0.0


def test_busy_in_window_clips_at_both_edges():
    _sim, fast, _slow = make_activity()
    # fast busy over [0, 1]; window [0.25, 0.75] is interior.
    assert busy_in_window(fast.records, 0.25, 0.75) == pytest.approx(0.5)
    # Window straddles the end of the transfer.
    assert busy_in_window(fast.records, 0.5, 2.0) == pytest.approx(0.5)


def test_phase_channel_matrix():
    _sim, fast, slow = make_activity()
    matrix = phase_channel_matrix(
        [fast, slow], {"early": (0.0, 1.0), "late": (10.0, 15.0)})
    assert matrix["early"]["fast"] == pytest.approx(1.0)
    assert matrix["early"]["slow"] == pytest.approx(1.0)
    assert matrix["late"]["fast"] == 0.0
    assert matrix["late"]["slow"] == pytest.approx(5.0)


def test_phase_channel_matrix_degenerate_phases():
    _sim, fast, slow = make_activity()
    matrix = phase_channel_matrix(
        [fast, slow],
        {"empty": (3.0, 3.0), "inverted": (9.0, 2.0),
         "partial": (0.5, 2.0)})
    assert matrix["empty"] == {"fast": 0.0, "slow": 0.0}
    assert matrix["inverted"] == {"fast": 0.0, "slow": 0.0}
    assert matrix["partial"]["fast"] == pytest.approx(0.5)
    assert matrix["partial"]["slow"] == pytest.approx(1.5)


def test_phase_channel_matrix_no_channels_or_phases():
    _sim, fast, _slow = make_activity()
    assert phase_channel_matrix([], {"p": (0.0, 1.0)}) == {"p": {}}
    assert phase_channel_matrix([fast], {}) == {}
