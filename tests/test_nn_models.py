"""Tests for the analytic model zoo."""

import pytest

from repro.nn.models import ZOO, get_model, models_by_family


@pytest.mark.parametrize("name", sorted(ZOO))
def test_zoo_names_match_parameter_counts(name):
    """Each entry's billions must match the size embedded in its name."""
    spec = get_model(name)
    claimed = float(name.split("-")[-1].rstrip("b"))
    assert spec.billions == pytest.approx(claimed, rel=0.06)


def test_fig9_gpt2_sizes_present():
    for name in ("gpt2-1.16b", "gpt2-4.0b", "gpt2-8.4b"):
        assert name in ZOO


def test_fig10_large_sizes_present():
    for name in ("gpt2-16.6b", "gpt2-24.6b", "gpt2-33.0b"):
        assert name in ZOO


def test_unknown_model_raises_with_candidates():
    with pytest.raises(KeyError, match="gpt2-4.0b"):
        get_model("nope")


def test_models_by_family_sorted():
    gpts = models_by_family("gpt2")
    sizes = [spec.num_parameters for spec in gpts]
    assert sizes == sorted(sizes)
    assert all(spec.family == "gpt2" for spec in gpts)


def test_byte_accounting_follows_paper_m_units():
    spec = get_model("gpt2-4.0b")
    m = spec.fp16_bytes()
    assert m == 2 * spec.num_parameters
    # Adam: 6M optimizer state (three fp32 words per parameter = 12 bytes
    # = 6 x the 2-byte fp16 copy); gradients: 2M (one fp32 word).
    assert spec.optimizer_state_bytes(3) == 6 * m
    assert spec.gradient_bytes() == 2 * m


def test_flops_scale_with_batch_and_size():
    spec = get_model("gpt2-4.0b")
    assert spec.forward_flops(8) == pytest.approx(2 * spec.forward_flops(4))
    assert spec.backward_flops(4) == pytest.approx(
        2 * spec.forward_flops(4))
    bigger = get_model("gpt2-8.4b")
    assert bigger.forward_flops(4) > spec.forward_flops(4)


def test_forward_flops_dominated_by_dense_term():
    spec = get_model("gpt2-4.0b")
    tokens = 4 * spec.seq_len
    dense = 2.0 * spec.num_parameters * tokens
    assert spec.forward_flops(4) == pytest.approx(dense, rel=0.05)


def test_iteration_flops_is_fw_plus_bw():
    spec = get_model("gpt2-1.16b")
    assert spec.iteration_flops(4) == pytest.approx(
        spec.forward_flops(4) + spec.backward_flops(4))
