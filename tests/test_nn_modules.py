"""Tests for the module system."""

import numpy as np
import pytest

from repro.nn import (Dropout, Embedding, LayerNorm, Linear, Module,
                      Parameter, Sequential)
from repro.nn.tensor import Tensor


def make_rng():
    return np.random.default_rng(0)


def test_linear_shapes_and_bias():
    layer = Linear(4, 3, make_rng())
    out = layer(Tensor(np.ones((2, 4), dtype=np.float32)))
    assert out.shape == (2, 3)
    no_bias = Linear(4, 3, make_rng(), bias=False)
    assert no_bias.bias is None
    assert len(no_bias.parameters()) == 1


def test_linear_is_affine():
    layer = Linear(3, 2, make_rng())
    x = np.ones((1, 3), dtype=np.float32)
    expected = x @ layer.weight.data + layer.bias.data
    np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-6)


def test_embedding_lookup_shape():
    table = Embedding(10, 6, make_rng())
    out = table(np.array([[0, 1], [2, 3]]))
    assert out.shape == (2, 2, 6)


def test_layernorm_parameters():
    norm = LayerNorm(8)
    names = [name for name, _p in norm.named_parameters()]
    assert names == ["weight", "bias"]


def test_named_parameters_deterministic_and_dotted():
    class Net(Module):
        def __init__(self):
            super().__init__()
            self.fc1 = Linear(2, 2, make_rng())
            self.fc2 = Linear(2, 2, make_rng())

        def forward(self, x):
            return self.fc2(self.fc1(x))

    net = Net()
    names = [name for name, _p in net.named_parameters()]
    assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]
    # Repeated traversal yields the identical order.
    assert names == [name for name, _p in net.named_parameters()]


def test_num_parameters_counts_elements():
    layer = Linear(4, 3, make_rng())
    assert layer.num_parameters() == 4 * 3 + 3


def test_zero_grad_clears_all():
    layer = Linear(2, 2, make_rng())
    out = layer(Tensor(np.ones((1, 2), dtype=np.float32)))
    out.sum().backward()
    assert layer.weight.grad is not None
    layer.zero_grad()
    assert layer.weight.grad is None
    assert layer.bias.grad is None


def test_state_dict_roundtrip():
    layer = Linear(3, 3, make_rng())
    state = layer.state_dict()
    layer.weight.data[:] = 0.0
    layer.load_state_dict(state)
    np.testing.assert_array_equal(layer.weight.data, state["weight"])


def test_load_state_dict_rejects_mismatches():
    layer = Linear(3, 3, make_rng())
    with pytest.raises(KeyError):
        layer.load_state_dict({"weight": np.zeros((3, 3))})
    state = layer.state_dict()
    state["weight"] = np.zeros((2, 2))
    with pytest.raises(ValueError):
        layer.load_state_dict(state)


def test_train_eval_propagates():
    seq = Sequential(Linear(2, 2, make_rng()), Dropout(0.5))
    seq.eval()
    assert not seq.training
    for module in seq:
        assert not module.training
    seq.train()
    assert seq.training


def test_sequential_applies_in_order():
    double = Linear(1, 1, make_rng(), bias=False)
    double.weight.data[:] = 2.0
    add_one = Linear(1, 1, make_rng())
    add_one.weight.data[:] = 1.0
    add_one.bias.data[:] = 1.0
    seq = Sequential(double, add_one)
    out = seq(Tensor(np.array([[3.0]], dtype=np.float32)))
    assert out.data[0, 0] == pytest.approx(7.0)
    assert len(seq) == 2


def test_parameter_is_float32_and_requires_grad():
    param = Parameter(np.arange(3, dtype=np.float64))
    assert param.dtype == np.float32
    assert param.requires_grad


def test_dropout_module_eval_is_identity():
    drop = Dropout(0.9)
    drop.eval()
    x = Tensor(np.ones(50, dtype=np.float32))
    np.testing.assert_array_equal(drop(x).data, x.data)
